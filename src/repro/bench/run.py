"""Bench CLI: ``python -m repro.bench`` — one command, one artifact.

Runs a subset of the paper's artifacts (fig7/fig8/table7/table8) at
the requested mesh sizes, under the :mod:`repro.obs` tracer, and
emits a single JSON document (``repro.bench/v1``) that embeds the
``repro.obs/v1`` trace/metrics report.  The same artifact serves:

* humans — phase-breakdown and latency tables are printed;
* CI — ``--baseline PATH --max-regression 0.25`` compares the fig7
  per-edit hot-reload latency against a checked-in baseline JSON and
  exits non-zero on a regression.

Wall-clock latencies are machine-dependent, so each run also times a
fixed pure-Python calibration loop.  When the current host is slower
than the baseline's host, the allowance is scaled up by the
calibration ratio (never down — a faster host must still fit the
baseline budget).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence

from .. import obs
from .figures import (
    fig7_crossover_kilocycles,
    fig7_series,
    fig8_bars,
    verify_pool_scaling,
)
from .reporting import format_phase_breakdown, format_table
from .tables import erd_phase_rows, table7, table8, table8_shape_checks
from .workloads import (
    collect_sizes,
    opt_speedup,
    sanitizer_overhead,
    trace_overhead,
)

BENCH_SCHEMA_ID = "repro.bench/v1"
DEFAULT_TARGETS = ("fig7", "table7")
KNOWN_TARGETS = (
    "fig6", "fig7", "fig8", "table7", "table8", "sanitize", "trace", "opt",
)
MAX_CALIBRATION_SCALE = 4.0


def calibrate(loops: int = 2_000_000) -> float:
    """Seconds for a fixed pure-Python workload (host-speed probe)."""
    started = time.perf_counter()
    total = 0
    for i in range(loops):
        total += i & 0xFF
    elapsed = time.perf_counter() - started
    assert total >= 0
    return elapsed


def run_bench(
    sizes: Sequence[int],
    targets: Sequence[str],
    sim_cycles: int = 60,
    baseline_budget_s: float = 30.0,
) -> Dict:
    """Collect the requested artifacts into a ``repro.bench/v1`` dict."""
    obs.enable()
    obs.reset()
    payload: Dict = {
        "schema": BENCH_SCHEMA_ID,
        "generated_unix_s": time.time(),
        "python": sys.version.split()[0],
        "calibration_s": calibrate(),
        "sizes": list(sizes),
        "targets": list(targets),
    }

    results = []
    if any(t in targets for t in ("fig7", "fig8", "table8")):
        results = collect_sizes(
            sizes=sizes,
            sim_cycles=sim_cycles,
            baseline_budget_s=baseline_budget_s,
            measure_baseline_speed=False,
            hot_reload_repeats=5,
        )

    if "fig7" in targets:
        per_edit = {
            str(r.n): r.livesim_hot_reload_s
            for r in results
            if r.livesim_hot_reload_s is not None
        }
        rows = table7(sizes=list(sizes), trace_cycles=5)
        series = fig7_series(results, table7_rows=rows)
        n0 = sizes[0]
        live = next(
            s for s in series
            if s.label == f"LiveSim {n0}x{n0} (full simulation)"
        )
        veri = next(
            s for s in series if s.label == f"Verilator {n0}x{n0}"
        )
        payload["fig7"] = {
            "per_edit_latency_s": per_edit,
            "full_compile_s": {
                str(r.n): r.livesim_full_compile_s for r in results
            },
            "baseline_compile_s": {
                str(r.n): r.baseline_compile_s for r in results
            },
            "crossover_kilocycles": fig7_crossover_kilocycles(live, veri),
        }

    if "fig6" in targets:
        # Report-only (no regression gate): parallel verification wall
        # time vs workers on the persistent pool, cold and warm.
        scaling = verify_pool_scaling(
            n=sizes[0], run_cycles=320, interval=40, worker_counts=(2, 4)
        )
        payload["fig6"] = asdict(scaling)

    if "fig8" in targets:
        payload["fig8"] = [asdict(bar) for bar in fig8_bars(results)]

    if "table7" in targets:
        rows = table7(sizes=list(sizes), trace_cycles=5)
        payload["table7"] = [
            {
                "n": row.n,
                "livesim": row.livesim.row(),
                "verilator": row.verilator.row() if row.verilator else None,
            }
            for row in rows
        ]

    if "sanitize" in targets:
        # Report-only (no regression gate): ``san report`` slowdown vs
        # clean codegen on the same mesh — elided (default) and
        # unelided — plus site counts and the per-check hit counters
        # (nonzero findings on the clean corpus = real bug; elided and
        # unelided counters differing = elision suppressed a check).
        overhead = sanitizer_overhead(n=sizes[0], sim_cycles=sim_cycles)
        entry = asdict(overhead)
        entry["slowdown"] = overhead.slowdown
        entry["unelided_slowdown"] = overhead.unelided_slowdown
        entry["elision_delta"] = overhead.elision_delta
        payload["sanitize"] = entry

    if "trace" in targets:
        # Report-only (no regression gate): per-cycle ring-buffer
        # capture slowdown with the mesh-wide outputs watched vs the
        # same run untraced.  Keyed "trace_overhead" — plain "trace"
        # is the obs report below.
        capture = trace_overhead(n=sizes[0], sim_cycles=sim_cycles)
        entry = asdict(capture)
        entry["slowdown"] = capture.slowdown
        payload["trace_overhead"] = entry

    if "opt" in targets:
        # Report-only (no regression gate): raw_sim_speed with the full
        # pass pipeline (constprop + dead logic + sensitivity guards)
        # vs the plain build on the same mesh.  Correctness is covered
        # elsewhere — the differential fuzzers assert bit-exactness.
        speed = opt_speedup(n=sizes[0], sim_cycles=sim_cycles)
        entry = asdict(speed)
        entry["speedup"] = speed.speedup
        payload["opt"] = entry

    if "table8" in targets:
        rows8 = table8(results)
        payload["table8"] = [asdict(row) for row in rows8]
        payload["table8_checks"] = table8_shape_checks(rows8)

    erd = [
        (f"{r.n}x{r.n}", r.erd_report)
        for r in results
        if r.erd_report is not None
    ]
    if erd:
        columns, rows_, labels = erd_phase_rows(erd)
        payload["erd_phases_ms"] = {
            label: dict(zip(columns, row))
            for label, row in zip(labels, rows_)
        }

    payload["trace"] = obs.report(meta={"tool": "python -m repro.bench"})
    return payload


# -- regression gate ---------------------------------------------------------


def compare_to_baseline(
    current: Dict, baseline: Dict, max_regression: float
) -> List[str]:
    """Fig7 per-edit latency gate; returns failure messages (empty = ok)."""
    failures: List[str] = []
    base_fig7 = (baseline.get("fig7") or {}).get("per_edit_latency_s") or {}
    cur_fig7 = (current.get("fig7") or {}).get("per_edit_latency_s") or {}
    if not base_fig7:
        return ["baseline JSON has no fig7.per_edit_latency_s data"]

    scale = 1.0
    base_cal = baseline.get("calibration_s")
    cur_cal = current.get("calibration_s")
    if base_cal and cur_cal:
        scale = max(1.0, min(cur_cal / base_cal, MAX_CALIBRATION_SCALE))

    for size, base_latency in sorted(base_fig7.items()):
        latency = cur_fig7.get(size)
        if latency is None:
            failures.append(f"fig7: size {size} missing from current run")
            continue
        allowed = base_latency * (1.0 + max_regression) * scale
        if latency > allowed:
            failures.append(
                f"fig7: per-edit latency regressed at {size}x{size}: "
                f"{latency * 1e3:.1f} ms > allowed {allowed * 1e3:.1f} ms "
                f"(baseline {base_latency * 1e3:.1f} ms, "
                f"host-speed scale {scale:.2f})"
            )
    return failures


# -- CLI ---------------------------------------------------------------------


def _print_summary(payload: Dict, out) -> None:
    fig6 = payload.get("fig6")
    if fig6:
        rows = [["serial", round(fig6["serial_wall_s"], 3), "", ""]]
        for workers in sorted(fig6["warm_wall_s"]):
            warm = fig6["warm_wall_s"][workers]
            rows.append([
                workers,
                round(fig6["cold_wall_s"][workers], 3),
                round(warm, 3),
                round(fig6["serial_wall_s"] / warm, 2) if warm else "",
            ])
        print(format_table(
            "Fig. 6 — consistency verification vs workers "
            f"({fig6['segments']} segments, persistent pool)",
            ["cold s", "warm s", "warm speedup"],
            [row[1:] for row in rows],
            row_labels=[str(row[0]) for row in rows],
        ), file=out)
        print(file=out)
    fig7 = payload.get("fig7")
    if fig7:
        sizes = sorted(fig7["per_edit_latency_s"], key=int)
        print(format_table(
            "Fig. 7 — per-edit hot-reload latency (the <2 s loop)",
            ["per-edit ms", "full compile ms"],
            [
                [
                    fig7["per_edit_latency_s"][s] * 1e3,
                    fig7["full_compile_s"][s] * 1e3,
                ]
                for s in sizes
            ],
            row_labels=[f"{s}x{s}" for s in sizes],
        ), file=out)
        print(file=out)
    sanitize = payload.get("sanitize")
    if sanitize:
        slowdown = sanitize.get("slowdown")
        unelided = sanitize.get("unelided_slowdown")
        rows = [
            ["clean", round(sanitize["clean_sim_hz"], 1),
             round(sanitize["clean_compile_s"] * 1e3, 1), "-"],
            ["report (elided)", round(sanitize["sanitized_sim_hz"], 1),
             round(sanitize["sanitized_compile_s"] * 1e3, 1),
             f"{slowdown:.2f}x" if slowdown else "-"],
        ]
        if sanitize.get("unelided_sim_hz"):
            rows.append(
                ["report (unelided)",
                 round(sanitize["unelided_sim_hz"], 1),
                 round(sanitize["unelided_compile_s"] * 1e3, 1),
                 f"{unelided:.2f}x" if unelided else "-"]
            )
        delta = sanitize.get("elision_delta")
        title = (
            f"Sanitizer overhead ({sanitize['n']}x{sanitize['n']} mesh, "
            f"{sanitize['san_elided']}/{sanitize['san_sites']} sites "
            "elided"
            + (f", delta {delta:+.2f}x" if delta is not None else "")
            + f", {sanitize['findings']} findings)"
        )
        print(format_table(
            title,
            ["sim Hz", "compile ms", "slowdown"],
            [row[1:] for row in rows],
            row_labels=[str(row[0]) for row in rows],
        ), file=out)
        print(file=out)
    opt = payload.get("opt")
    if opt:
        speedup = opt.get("speedup")
        rows = [
            ["opt=none", round(opt["plain_sim_hz"], 1),
             round(opt["plain_compile_s"] * 1e3, 1)],
            ["opt=full", round(opt["opt_sim_hz"], 1),
             round(opt["opt_compile_s"] * 1e3, 1)],
        ]
        print(format_table(
            f"Optimization speedup ({opt['n']}x{opt['n']} mesh, "
            f"speedup {speedup:.2f}x, "
            f"{opt['guarded_blocks']} guarded blocks)"
            if speedup else
            f"Optimization speedup ({opt['n']}x{opt['n']} mesh)",
            ["sim Hz", "compile ms"],
            [row[1:] for row in rows],
            row_labels=[str(row[0]) for row in rows],
        ), file=out)
        print(file=out)
    capture = payload.get("trace_overhead")
    if capture:
        slowdown = capture.get("slowdown")
        title = (
            f"Trace capture overhead ({capture['n']}x{capture['n']} mesh, "
            f"{capture['probes']} probes"
        )
        title += f", slowdown {slowdown:.2f}x)" if slowdown else ")"
        rows = [
            ["untraced", round(capture["plain_sim_hz"], 1), ""],
            ["traced", round(capture["traced_sim_hz"], 1),
             capture["cycles_dropped"]],
        ]
        print(format_table(
            title,
            ["sim Hz", "cycles dropped"],
            [row[1:] for row in rows],
            row_labels=[str(row[0]) for row in rows],
        ), file=out)
        print(file=out)
    phases = obs.aggregate_phases(payload["trace"])
    if phases:
        print(format_phase_breakdown(
            "Live-loop phase breakdown (traced)", phases
        ), file=out)
        print(file=out)
    counters = payload["trace"]["metrics"]["counters"]
    if counters:
        print(format_table(
            "Counters",
            ["value"],
            [[counters[name]] for name in sorted(counters)],
            row_labels=sorted(counters),
        ), file=out)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="LiveSim bench runner: JSON artifact + CI gate",
    )
    parser.add_argument("targets", nargs="*", default=None,
                        help=f"artifacts to run {KNOWN_TARGETS} "
                             f"(default: {' '.join(DEFAULT_TARGETS)}); "
                             "or the 'loadtest' subcommand — see "
                             "python -m repro.bench loadtest --help")
    parser.add_argument("--sizes", default="1,2",
                        help="comma-separated mesh sizes (default: 1,2)")
    parser.add_argument("--sim-cycles", type=int, default=60,
                        help="cycles simulated before the edit")
    parser.add_argument("--baseline-budget", type=float, default=30.0,
                        help="baseline-compiler budget in seconds")
    parser.add_argument("--json", metavar="PATH",
                        help="write the repro.bench/v1 artifact to PATH")
    parser.add_argument("--baseline", metavar="PATH",
                        help="compare against this repro.bench/v1 JSON")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional fig7 latency regression "
                             "vs --baseline (default: 0.25)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the human-readable summary")
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "loadtest":
        # Server load test: its own flags, artifact schema and p99
        # gate — see repro.bench.loadtest.
        from .loadtest import main as loadtest_main

        return loadtest_main(argv[1:], out=out)
    args = _build_parser().parse_args(argv)
    targets = tuple(args.targets) or DEFAULT_TARGETS
    unknown = [t for t in targets if t not in KNOWN_TARGETS]
    if unknown:
        print(f"error: unknown targets {unknown} "
              f"(know {list(KNOWN_TARGETS)})", file=sys.stderr)
        return 2
    try:
        sizes = tuple(int(x) for x in args.sizes.split(",") if x.strip())
    except ValueError:
        print(f"error: bad --sizes {args.sizes!r}", file=sys.stderr)
        return 2
    if not sizes:
        print("error: --sizes selected nothing", file=sys.stderr)
        return 2

    payload = run_bench(
        sizes,
        targets,
        sim_cycles=args.sim_cycles,
        baseline_budget_s=args.baseline_budget,
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"bench artifact written to {args.json}", file=sys.stderr)
    if not args.quiet:
        _print_summary(payload, out)

    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        failures = compare_to_baseline(
            payload, baseline, args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print(
            "regression gate passed "
            f"(max allowed +{args.max_regression * 100:.0f}%)",
            file=sys.stderr,
        )
    return 0
