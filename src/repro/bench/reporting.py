"""Plain-text table/series formatting for bench output."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    row_labels: Optional[Sequence[str]] = None,
) -> str:
    """Fixed-width table; NA/None cells render as 'NA' (the paper's
    couldn't-compile marker)."""

    def cell(value: object) -> str:
        if value is None:
            return "NA"
        if isinstance(value, float):
            if value >= 1000:
                return f"{value:,.0f}"
            return f"{value:.2f}"
        return str(value)

    header = list(columns)
    body: List[List[str]] = []
    for i, row in enumerate(rows):
        rendered = [cell(v) for v in row]
        if row_labels is not None:
            rendered.insert(0, str(row_labels[i]))
        body.append(rendered)
    if row_labels is not None:
        header = [""] + header

    widths = [len(h) for h in header]
    for row in body:
        for j, text in enumerate(row):
            widths[j] = max(widths[j], len(text))

    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.rjust(widths[j]) for j, h in enumerate(header)))
    lines.append("  ".join("-" * widths[j] for j in range(len(header))))
    for row in body:
        lines.append("  ".join(t.rjust(widths[j]) for j, t in enumerate(row)))
    return "\n".join(lines)


def format_phase_breakdown(
    title: str,
    phases: Mapping[str, Mapping[str, float]],
    total_seconds: Optional[float] = None,
) -> str:
    """Render per-phase totals (:func:`repro.obs.aggregate_phases`
    output) as a table: phase, call count, seconds, share of total.

    ``total_seconds`` defaults to the sum over phases; pass the root
    span's duration to show shares of the true wall-clock instead.
    """
    names = sorted(phases, key=lambda n: -float(phases[n]["total_s"]))
    budget = total_seconds
    if budget is None:
        budget = sum(float(phases[n]["total_s"]) for n in names)
    rows = []
    for name in names:
        seconds = float(phases[name]["total_s"])
        share = (100.0 * seconds / budget) if budget > 0 else None
        rows.append([
            int(phases[name]["count"]),
            seconds * 1e3,
            None if share is None else share,
        ])
    return format_table(
        title,
        ["calls", "ms", "% of total"],
        rows,
        row_labels=names,
    )


def format_series(
    title: str,
    series: Mapping[str, Sequence[tuple]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series as aligned columns (a text 'figure')."""
    lines = [title, "=" * len(title)]
    for name, points in series.items():
        lines.append(f"-- {name}  ({x_label} -> {y_label})")
        for x, y in points:
            y_text = "NA" if y is None else (
                f"{y:.3f}" if isinstance(y, float) else str(y)
            )
            lines.append(f"    {x:>14}  {y_text}")
    return "\n".join(lines)
