"""The PGAS workbench: one object per mesh size with everything the
figure/table generators need — LiveSim session, baseline compiles,
measured simulation speeds, cost models."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..baseline import BaselineCompiler, BaselineResult
from ..codegen.cost import DesignCost, design_cost
from ..hdl.elaborate import elaborate
from ..hdl.parser import parse
from ..live.session import ERDReport, LiveSession
from ..riscv import programs
from ..riscv.patches import get_patch
from ..riscv.pgas import build_pgas_source, mesh_top_name
from ..sim.pipeline import Pipe

PAPER_SIZES = (1, 2, 4, 8, 16)
DEFAULT_SIZES = (1, 2, 4)


@dataclass
class SizeResult:
    """Everything measured for one mesh size."""

    n: int
    cores: int
    livesim_full_compile_s: float = 0.0
    livesim_hot_reload_s: Optional[float] = None
    baseline_compile_s: Optional[float] = None  # None => NA (budget)
    baseline_instances: int = 0
    livesim_sim_hz: Optional[float] = None  # measured cycles/second
    baseline_sim_hz: Optional[float] = None
    livesim_cost: Optional[DesignCost] = None
    baseline_cost: Optional[DesignCost] = None
    erd_report: Optional[ERDReport] = None


class PGASWorkbench:
    """Builds and drives the paper's PGAS benchmark at one size."""

    def __init__(
        self,
        n: int,
        checkpoint_interval: int = 50,
        baseline_budget_s: Optional[float] = 20.0,
        program: str = "counter",
        sanitize: str = "off",
        opt: str = "none",
        san_elide: bool = True,
    ):
        self.n = n
        self.cores = n * n
        self.top = mesh_top_name(n)
        self.source = build_pgas_source(n)
        self.checkpoint_interval = checkpoint_interval
        self.baseline_budget_s = baseline_budget_s
        self._program = program
        self._sanitize = sanitize
        self._opt = opt
        self._san_elide = san_elide
        self.session: Optional[LiveSession] = None
        self.tb_handle: Optional[str] = None

    # -- LiveSim session -----------------------------------------------------

    def build_session(self) -> LiveSession:
        """Create the session and pipe; measures the full compile."""
        session = LiveSession(
            self.source,
            checkpoint_interval=self.checkpoint_interval,
            sanitize=self._sanitize,
            opt=self._opt,
            san_elide=self._san_elide,
        )
        started = time.perf_counter()
        session.inst_pipe("uut", session.stage_handle_for(self.top))
        self.full_compile_seconds = time.perf_counter() - started
        asm = self._program_asm()
        self.tb_handle = session.load_testbench(
            programs.boot_program(asm, count=self.cores),
            factory=programs.boot_program_spec(asm, count=self.cores),
        )
        self.session = session
        return session

    def _program_asm(self) -> str:
        if self._program == "counter":
            return programs.busy_counter(10_000_000)
        raise ValueError(f"unknown program kind {self._program!r}")

    def _load_programs(self, pipe: Pipe) -> None:
        """Direct load for pipes outside a session (the baseline)."""
        programs.load_same_program(pipe, self.cores, self._program_asm())

    def run(self, cycles: int) -> None:
        assert self.session is not None and self.tb_handle is not None
        self.session.run(self.tb_handle, "uut", cycles)

    # -- measurements -----------------------------------------------------------

    def measure_sim_speed(self, pipe: Pipe, cycles: int = 200) -> float:
        """Wall-clock simulated cycles/second over a bounded run."""
        pipe.set_inputs(rst=0)
        pipe.step(5)  # warm caches / code paths
        started = time.perf_counter()
        ran = pipe.step(cycles)
        elapsed = time.perf_counter() - started
        return ran / elapsed if elapsed > 0 else float("inf")

    def compile_baseline(self, mode: str = "replicate") -> BaselineResult:
        netlist = elaborate(parse(self.source), self.top)
        compiler = BaselineCompiler(
            mode=mode, budget_seconds=self.baseline_budget_s
        )
        return compiler.compile(netlist)

    def costs(self) -> Dict[str, DesignCost]:
        netlist = elaborate(parse(self.source), self.top)
        return {
            "livesim": design_cost(netlist, "branch"),
            "verilator": design_cost(netlist, "select"),
        }

    def hot_reload(self, patch_name: str = "id-imm-sign") -> ERDReport:
        """Apply a realistic single-stage code change through the live
        loop; returns the ERD report (the Fig. 8 measurement).

        If the bug is already present the change is the fix, otherwise
        it is the (equally realistic) injection — either way it is a
        never-before-compiled variant of exactly one pipeline-stage
        module, matching the paper's bug-fix methodology.
        """
        assert self.session is not None
        patch = get_patch(patch_name)
        current = self.session.compiler.source
        if patch.is_injected(current):
            edited = patch.fix(current)
        else:
            edited = patch.inject(current)
        return self.session.apply_change(edited)

    # -- the one-call driver -------------------------------------------------------

    def collect(
        self,
        sim_cycles: int = 200,
        run_cycles: Optional[int] = None,
        measure_baseline: bool = True,
        measure_baseline_speed: bool = True,
        patch_name: str = "id-imm-sign",
        hot_reload_repeats: int = 1,
    ) -> SizeResult:
        result = SizeResult(n=self.n, cores=self.cores)
        self.build_session()
        result.livesim_full_compile_s = self.full_compile_seconds

        self.run(5)  # boot: load the program, come out of reset
        started = time.perf_counter()
        self.run(sim_cycles)  # measured through the session: replayable
        elapsed = time.perf_counter() - started
        result.livesim_sim_hz = sim_cycles / elapsed if elapsed else None

        self.run(run_cycles if run_cycles is not None else 3 * self.checkpoint_interval)
        report = self.hot_reload(patch_name)
        # Repeats alternate the patch (fix/inject) — each is a fresh,
        # never-before-compiled edit.  Keeping the fastest iteration
        # makes the per-edit latency stable enough for CI gating.
        for _ in range(max(hot_reload_repeats - 1, 0)):
            candidate = self.hot_reload(patch_name)
            if candidate.total_seconds < report.total_seconds:
                report = candidate
        result.erd_report = report
        result.livesim_hot_reload_s = report.total_seconds

        costs = self.costs()
        result.livesim_cost = costs["livesim"]
        result.baseline_cost = costs["verilator"]

        if measure_baseline:
            baseline = self.compile_baseline()
            result.baseline_instances = baseline.instances_compiled
            if baseline.succeeded:
                result.baseline_compile_s = baseline.compile_seconds
                if measure_baseline_speed:
                    bpipe = baseline.make_pipe()
                    self._load_programs(bpipe)
                    bpipe.set_inputs(rst=1)
                    bpipe.step(2)
                    result.baseline_sim_hz = self.measure_sim_speed(
                        bpipe, sim_cycles
                    )
            else:
                result.baseline_compile_s = None  # the paper's NA
        return result


def collect_sizes(
    sizes=DEFAULT_SIZES,
    sim_cycles: int = 150,
    baseline_budget_s: Optional[float] = 20.0,
    **kwargs,
) -> List[SizeResult]:
    """Run the workbench across mesh sizes (the paper's 1x1..16x16)."""
    results = []
    for n in sizes:
        bench = PGASWorkbench(n, baseline_budget_s=baseline_budget_s)
        results.append(bench.collect(sim_cycles=sim_cycles, **kwargs))
    return results


@dataclass
class SanitizerOverheadResult:
    """``report``-mode slowdown vs clean codegen on the fig7 workload.

    Two instrumented builds are measured: the shipping default with
    proof-driven check elision active (``sanitized_*``), and the same
    mesh with every site instrumented (``unelided_*``).  ``san_sites``
    / ``san_elided`` count instrumentation sites across the elided
    build's library — the static half of the elision story; the two
    slowdowns are the dynamic half.
    """

    n: int
    cores: int
    clean_sim_hz: float = 0.0
    sanitized_sim_hz: float = 0.0
    unelided_sim_hz: float = 0.0
    clean_compile_s: float = 0.0
    sanitized_compile_s: float = 0.0
    unelided_compile_s: float = 0.0
    san_sites: int = 0
    san_elided: int = 0
    hits: Dict[str, int] = None  # type: ignore[assignment]
    unelided_hits: Dict[str, int] = None  # type: ignore[assignment]
    findings: int = 0

    @property
    def slowdown(self) -> Optional[float]:
        """clean Hz / sanitized Hz (>= 1.0 when instrumentation costs)."""
        if self.sanitized_sim_hz <= 0:
            return None
        return self.clean_sim_hz / self.sanitized_sim_hz

    @property
    def unelided_slowdown(self) -> Optional[float]:
        """clean Hz / unelided Hz — what report mode cost pre-elision."""
        if self.unelided_sim_hz <= 0:
            return None
        return self.clean_sim_hz / self.unelided_sim_hz

    @property
    def elision_delta(self) -> Optional[float]:
        """Overhead removed by elision (unelided − elided slowdown)."""
        if self.slowdown is None or self.unelided_slowdown is None:
            return None
        return self.unelided_slowdown - self.slowdown


@dataclass
class TraceOverheadResult:
    """Live-trace capture slowdown vs tracing off on the fig7 workload."""

    n: int
    cores: int
    probes: int = 0
    plain_sim_hz: float = 0.0
    traced_sim_hz: float = 0.0
    cycles_dropped: int = 0

    @property
    def slowdown(self) -> Optional[float]:
        """plain Hz / traced Hz (>= 1.0 when capture costs)."""
        if self.traced_sim_hz <= 0:
            return None
        return self.plain_sim_hz / self.traced_sim_hz


def trace_overhead(n: int = 1, sim_cycles: int = 150) -> TraceOverheadResult:
    """Measure per-cycle trace-capture overhead on the fig7 workload.

    Runs the same mesh session twice: once untraced, then with probes
    on the mesh-wide outputs (``all_halted``, ``total_retired``) so
    every cycle pays the ring-buffer append.  Report-only — the
    interesting number is the slowdown ratio, not absolute Hz.
    """
    result = TraceOverheadResult(n=n, cores=n * n)

    bench = PGASWorkbench(n, baseline_budget_s=None)
    session = bench.build_session()
    bench.run(5)
    started = time.perf_counter()
    bench.run(sim_cycles)
    elapsed = time.perf_counter() - started
    result.plain_sim_hz = sim_cycles / elapsed if elapsed else 0.0
    session.close()

    bench = PGASWorkbench(n, baseline_budget_s=None)
    session = bench.build_session()
    for signal in ("all_halted", "total_retired"):
        session.watch("uut", signal)
        result.probes += 1
    bench.run(5)
    started = time.perf_counter()
    bench.run(sim_cycles)
    elapsed = time.perf_counter() - started
    result.traced_sim_hz = sim_cycles / elapsed if elapsed else 0.0
    result.cycles_dropped = session.trace_buffer("uut").cycles_dropped
    session.close()
    return result


@dataclass
class OptSpeedupResult:
    """opt=full speedup vs opt=none on the fig7-style PGAS workload."""

    n: int
    cores: int
    plain_sim_hz: float = 0.0
    opt_sim_hz: float = 0.0
    plain_compile_s: float = 0.0
    opt_compile_s: float = 0.0
    guarded_blocks: int = 0

    @property
    def speedup(self) -> Optional[float]:
        """opt Hz / plain Hz (>= 1.0 when the passes pay off)."""
        if self.plain_sim_hz <= 0:
            return None
        return self.opt_sim_hz / self.plain_sim_hz


def opt_speedup(n: int = 1, sim_cycles: int = 150) -> OptSpeedupResult:
    """Measure the opt=full speedup on the fig7-style PGAS workload.

    Builds the same mesh twice — plain and with the full pass pipeline
    (constant propagation, dead-logic elimination, sensitivity guards,
    pure-child skips) — and reports simulated cycles/second for each.
    Report-only: the interesting number is the ratio; the differential
    fuzzers are what assert the two builds agree bit for bit.
    """
    result = OptSpeedupResult(n=n, cores=n * n)

    plain = PGASWorkbench(n, baseline_budget_s=None)
    session = plain.build_session()
    result.plain_compile_s = plain.full_compile_seconds
    plain.run(5)
    started = time.perf_counter()
    plain.run(sim_cycles)
    elapsed = time.perf_counter() - started
    result.plain_sim_hz = sim_cycles / elapsed if elapsed else 0.0
    session.close()

    opt = PGASWorkbench(n, baseline_budget_s=None, opt="full")
    session = opt.build_session()
    result.opt_compile_s = opt.full_compile_seconds
    result.guarded_blocks = sum(
        module.sens_slot_count
        for module in session.pipe("uut").library.values()
    )
    opt.run(5)
    started = time.perf_counter()
    opt.run(sim_cycles)
    elapsed = time.perf_counter() - started
    result.opt_sim_hz = sim_cycles / elapsed if elapsed else 0.0
    session.close()
    return result


def sanitizer_overhead(
    n: int = 1, sim_cycles: int = 150
) -> SanitizerOverheadResult:
    """Measure ``san report`` overhead on the fig7-style PGAS workload.

    Builds the same mesh three ways — clean, sanitize=report with
    proof-driven elision (the default), and sanitize=report with every
    site instrumented — runs each through the session path, and
    reports simulated cycles/second plus the per-check hit counters (a
    clean corpus should show zero findings; nonzero here means real
    signal, not noise).  The elided and unelided counters must match —
    elision is only allowed to remove checks that can never fire.
    """
    result = SanitizerOverheadResult(
        n=n, cores=n * n, hits={}, unelided_hits={}
    )

    clean = PGASWorkbench(n, baseline_budget_s=None)
    session = clean.build_session()
    result.clean_compile_s = clean.full_compile_seconds
    clean.run(5)
    started = time.perf_counter()
    clean.run(sim_cycles)
    elapsed = time.perf_counter() - started
    result.clean_sim_hz = sim_cycles / elapsed if elapsed else 0.0
    session.close()

    sanitized = PGASWorkbench(n, baseline_budget_s=None, sanitize="report")
    session = sanitized.build_session()
    result.sanitized_compile_s = sanitized.full_compile_seconds
    library = session.pipe("uut").library
    result.san_sites = sum(m.san_sites for m in library.values())
    result.san_elided = sum(m.san_elided for m in library.values())
    sanitized.run(5)
    started = time.perf_counter()
    sanitized.run(sim_cycles)
    elapsed = time.perf_counter() - started
    result.sanitized_sim_hz = sim_cycles / elapsed if elapsed else 0.0
    result.hits = session.sanitize_runtime.counters()
    result.findings = len(session.sanitize_runtime.findings)
    session.close()

    unelided = PGASWorkbench(
        n, baseline_budget_s=None, sanitize="report", san_elide=False
    )
    session = unelided.build_session()
    result.unelided_compile_s = unelided.full_compile_seconds
    unelided.run(5)
    started = time.perf_counter()
    unelided.run(sim_cycles)
    elapsed = time.perf_counter() - started
    result.unelided_sim_hz = sim_cycles / elapsed if elapsed else 0.0
    result.unelided_hits = session.sanitize_runtime.counters()
    session.close()
    return result
