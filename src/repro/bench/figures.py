"""Generators for the paper's figures (7 and 8) and the §V-B /
Fig. 6 measurements."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from .tables import Table7Row, table7
from .workloads import PGASWorkbench, SizeResult

Point = Tuple[int, Optional[float]]


# ---------------------------------------------------------------------------
# Figure 7: compilation + simulation time vs simulated cycles
# ---------------------------------------------------------------------------


@dataclass
class Fig7Series:
    """One line of Fig. 7: seconds to reach N simulated kilocycles per
    core (the paper normalizes the x-axis by the core count)."""

    label: str
    compile_offset_s: Optional[float]
    khz: Optional[float]  # aggregate core-kilocycles per second
    cores: int = 1
    flat_seconds: Optional[float] = None  # for the from-checkpoint line

    def at(self, kilocycles_per_core: float) -> Optional[float]:
        if self.flat_seconds is not None:
            return self.flat_seconds
        if self.compile_offset_s is None or not self.khz:
            return None
        return self.compile_offset_s + kilocycles_per_core * self.cores / self.khz

    def points(self, kilocycle_marks: Sequence[float]) -> List[Point]:
        return [(int(kc), self.at(kc)) for kc in kilocycle_marks]


def fig7_series(
    results: Sequence[SizeResult],
    table7_rows: Optional[Sequence[Table7Row]] = None,
) -> List[Fig7Series]:
    """Build Fig. 7's lines: measured compile offsets + host-model
    simulation slopes, plus the flat LiveSim-from-checkpoint line."""
    rows = {r.n: r for r in (table7_rows or table7([r.n for r in results]))}
    series: List[Fig7Series] = []
    for result in results:
        perf = rows[result.n]
        series.append(
            Fig7Series(
                label=f"LiveSim {result.n}x{result.n} (full simulation)",
                compile_offset_s=result.livesim_full_compile_s,
                khz=perf.livesim.khz,
                cores=result.cores,
            )
        )
        series.append(
            Fig7Series(
                label=f"Verilator {result.n}x{result.n}",
                compile_offset_s=result.baseline_compile_s,
                khz=perf.verilator.khz if perf.verilator else None,
                cores=result.cores,
            )
        )
        series.append(
            Fig7Series(
                label=f"LiveSim {result.n}x{result.n} (from checkpoint)",
                compile_offset_s=None,
                khz=None,
                cores=result.cores,
                flat_seconds=result.livesim_hot_reload_s,
            )
        )
    return series


def fig7_crossover_kilocycles(
    livesim: Fig7Series, verilator: Fig7Series
) -> Optional[float]:
    """Cycle count where LiveSim's line crosses the baseline's.

    Paper: "For the 1x1 PGAS, Verilator only passes LiveSim after
    running 76 million cycles."  Returns None when the lines never
    cross (one dominates).
    """
    if (
        livesim.compile_offset_s is None
        or verilator.compile_offset_s is None
        or not livesim.khz
        or not verilator.khz
    ):
        return None
    # compile_l + c*s_l = compile_v + c*s_v  =>  c = dCompile / dSlope
    slope_delta = (
        livesim.cores / livesim.khz - verilator.cores / verilator.khz
    )
    compile_delta = verilator.compile_offset_s - livesim.compile_offset_s
    if slope_delta == 0:
        return None
    crossing = compile_delta / slope_delta
    return crossing if crossing > 0 else None


# ---------------------------------------------------------------------------
# Figure 8: hot-reload ERD latency per mesh size
# ---------------------------------------------------------------------------


@dataclass
class Fig8Bar:
    n: int
    cores: int
    parse_s: float
    compile_s: float
    swap_s: float
    reload_s: float
    replay_s: float
    total_s: float
    swapped_instances: int
    under_two_seconds: bool


def fig8_bars(results: Sequence[SizeResult]) -> List[Fig8Bar]:
    bars = []
    for result in results:
        report = result.erd_report
        if report is None:
            continue
        bars.append(
            Fig8Bar(
                n=result.n,
                cores=result.cores,
                parse_s=report.parse_seconds,
                compile_s=report.compile_seconds,
                swap_s=report.swap_seconds,
                reload_s=report.reload_seconds,
                replay_s=report.replay_seconds,
                total_s=report.total_seconds,
                swapped_instances=report.swapped_instances,
                under_two_seconds=report.within_two_seconds,
            )
        )
    return bars


# ---------------------------------------------------------------------------
# §V-B: checkpointing overhead
# ---------------------------------------------------------------------------


@dataclass
class CheckpointOverheadResult:
    n: int
    hz_without: float
    hz_with: float
    interval: int
    checkpoints_taken: int
    checkpoint_bytes: int

    @property
    def overhead_percent(self) -> float:
        if self.hz_with <= 0:
            return float("inf")
        return 100.0 * (self.hz_without / self.hz_with - 1.0)


def checkpoint_overhead(
    n: int = 1, cycles: int = 400, interval: int = 25
) -> CheckpointOverheadResult:
    """Measure simulation speed with and without checkpointing
    (paper §V-B: 'varied from 10 to 20%')."""
    bench = PGASWorkbench(n, checkpoint_interval=interval)
    session = bench.build_session()
    tb = bench.tb_handle
    assert tb is not None
    store = session.store("uut")

    # Without checkpoints.
    store.enabled = False
    session.run(tb, "uut", 50)  # warmup past reset
    started = time.perf_counter()
    session.run(tb, "uut", cycles)
    hz_without = cycles / (time.perf_counter() - started)

    # With checkpoints.
    store.enabled = True
    started = time.perf_counter()
    session.run(tb, "uut", cycles)
    hz_with = cycles / (time.perf_counter() - started)

    return CheckpointOverheadResult(
        n=n,
        hz_without=hz_without,
        hz_with=hz_with,
        interval=interval,
        checkpoints_taken=len(store),
        checkpoint_bytes=store.total_bytes() // max(len(store), 1),
    )


# ---------------------------------------------------------------------------
# Fig. 6: parallel consistency verification scaling
# ---------------------------------------------------------------------------


@dataclass
class ConsistencyScalingResult:
    n: int
    checkpoints: int
    serial_wall_s: float
    parallel_wall_s: Dict[int, float] = field(default_factory=dict)
    all_consistent: bool = True


def consistency_scaling(
    n: int = 1,
    run_cycles: int = 300,
    interval: int = 30,
    worker_counts: Sequence[int] = (2, 4),
) -> ConsistencyScalingResult:
    """Verify a checkpointed session serially and with process pools.

    Mirrors Fig. 6: segments are independent, so wall time drops as
    workers are added (amortized against the workers' rebuild cost).
    """
    bench = PGASWorkbench(n, checkpoint_interval=interval)
    session = bench.build_session()
    tb = bench.tb_handle
    assert tb is not None
    session.run(tb, "uut", run_cycles)

    report = session.verify_consistency("uut", workers=1)
    result = ConsistencyScalingResult(
        n=n,
        checkpoints=len(session.store("uut")),
        serial_wall_s=report.wall_seconds,
        all_consistent=report.all_consistent,
    )
    for workers in worker_counts:
        parallel = session.verify_consistency("uut", workers=workers)
        result.parallel_wall_s[workers] = parallel.wall_seconds
        result.all_consistent &= parallel.all_consistent
    return result


# ---------------------------------------------------------------------------
# Fig. 6 with the persistent pool: speedup vs workers, warm-cache effect
# ---------------------------------------------------------------------------


@dataclass
class VerifyPoolScalingResult:
    """Serial vs pooled verification, cold (workers must compile) and
    warm (design served from the per-worker fingerprint cache)."""

    n: int
    checkpoints: int
    segments: int
    serial_wall_s: float
    cold_wall_s: Dict[int, float] = field(default_factory=dict)
    warm_wall_s: Dict[int, float] = field(default_factory=dict)
    worker_compiles: Dict[int, int] = field(default_factory=dict)
    cache_hits: Dict[int, int] = field(default_factory=dict)
    all_consistent: bool = True

    def speedup(self, workers: int) -> Optional[float]:
        wall = self.warm_wall_s.get(workers)
        if not wall:
            return None
        return self.serial_wall_s / wall


def verify_pool_scaling(
    n: int = 1,
    run_cycles: int = 320,
    interval: int = 40,
    worker_counts: Sequence[int] = (2, 4),
) -> VerifyPoolScalingResult:
    """Fig.-6-style speedup-vs-workers using the persistent pool.

    For each worker count the pool is started cold (first verify pays
    one compile per worker) and then reused warm (every segment hits
    the worker-side design cache) — the warm number is what a user sees
    re-verifying after the first edit of a session.
    """
    bench = PGASWorkbench(n, checkpoint_interval=interval)
    session = bench.build_session()
    tb = bench.tb_handle
    assert tb is not None
    session.run(tb, "uut", run_cycles)
    metrics = obs.get_metrics()
    try:
        serial = session.verify_consistency("uut", workers=1)
        result = VerifyPoolScalingResult(
            n=n,
            checkpoints=len(session.store("uut")),
            segments=len(serial.segments),
            serial_wall_s=serial.wall_seconds,
            all_consistent=serial.all_consistent,
        )
        for workers in worker_counts:
            session.reset_verifier_pool()  # cold start for this count
            compiles_before = metrics.counter("consistency.worker_compiles")
            hits_before = metrics.counter("consistency.worker_cache_hits")
            cold = session.verify_consistency("uut", workers=workers)
            warm = session.verify_consistency("uut", workers=workers)
            result.cold_wall_s[workers] = cold.wall_seconds
            result.warm_wall_s[workers] = warm.wall_seconds
            result.worker_compiles[workers] = (
                metrics.counter("consistency.worker_compiles")
                - compiles_before
            )
            result.cache_hits[workers] = (
                metrics.counter("consistency.worker_cache_hits") - hits_before
            )
            result.all_consistent &= (
                cold.all_consistent and warm.all_consistent
            )
    finally:
        session.close()
    return result
