"""Benchmark harness: builders and drivers behind every paper figure.

Each paper artifact has a generator here returning plain data
structures; the ``benchmarks/`` pytest-benchmark suite and the
``examples/`` scripts both print through :mod:`repro.bench.reporting`.
"""

from .reporting import format_series, format_table
from .workloads import PGASWorkbench, SizeResult

__all__ = ["PGASWorkbench", "SizeResult", "format_table", "format_series"]
