"""``python -m repro.bench`` — see :mod:`repro.bench.run`."""

import sys

from .run import main

if __name__ == "__main__":
    sys.exit(main())
