"""Load-test bench: many concurrent scripted sessions against the server.

``python -m repro.bench loadtest`` boots a LiveSim server in-process —
sharded (``--workers N``) or single-process threaded (``--workers 0``)
— then drives ``--sessions`` scripted edit-run-debug sessions from a
pool of ``--concurrency`` client threads over real sockets.  Every
command is timed client-side into an :mod:`repro.obs` histogram per
command class (open / instpipe / run / peek / close), and the run is
summarized as p50/p95/p99 latency per class plus aggregate
commands/sec.

The same JSON artifact (``repro.bench.loadtest/v1``) feeds:

* humans — a latency table and throughput line are printed;
* CI — ``--baseline PATH`` gates the per-class p99 latency against a
  checked-in baseline with the same host-speed calibration scaling as
  the fig7 gate (throughput is report-only: it depends on core count,
  which calibration cannot normalize away);
* the scaling claim — ``--compare-single`` reruns the identical
  workload against the single-process threaded server and reports the
  sharded/single throughput ratio (≥2x expected with 4 workers on a
  ≥4-core host; on fewer cores the ratio degrades toward parity and
  the artifact records ``cpu_count`` so readers can tell why).

``--chaos`` (sharded mode only) disrupts the pool *during* the
measured run: a controller thread SIGKILLs one worker, then resizes
the pool W→2W→W through the ``resize`` admin verb, recording a
disruption window around each action.  Every command is timestamped
client-side, so the artifact can split latency post-hoc: ``latency_s``
(and the p99 gate) cover only commands that never overlapped a
disruption window, while ``chaos.disrupted_latency_s`` reports the
tail seen by commands that rode through a kill, a failover replay or
a live migration.  Migration/failover counts come from the server's
own counters.
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import shutil
import signal
import sys
import tempfile
import threading
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from .reporting import format_table

# One timed command: (class, start, end, ok) in perf_counter seconds.
Sample = Tuple[str, float, float, bool]

LOADTEST_SCHEMA_ID = "repro.bench.loadtest/v1"
COMMAND_CLASSES = ("open", "instpipe", "run", "peek", "close")

# Small three-module design (same shape as tools/server_smoke.py): a
# combinational adder feeding two registered counters.  Big enough to
# exercise compile, checkpoint and simulate paths; small enough that a
# single host can sustain hundreds of sessions.
DESIGN = """
module adder #(parameter W = 8) (
  input clk,
  input [W-1:0] a,
  input [W-1:0] b,
  output [W-1:0] sum
);
  assign sum = a + b;
endmodule

module counter #(parameter W = 8) (
  input clk,
  input rst,
  input [W-1:0] step,
  output [W-1:0] count
);
  reg [W-1:0] count_q;
  wire [W-1:0] next;
  adder #(.W(W)) u_add (.clk(clk), .a(count_q), .b(step), .sum(next));
  assign count = count_q;
  always @(posedge clk) begin
    if (rst)
      count_q <= 0;
    else
      count_q <= next;
  end
endmodule

module top (
  input clk,
  input rst,
  output [7:0] c0,
  output [7:0] c1
);
  counter #(.W(8)) u0 (.clk(clk), .rst(rst), .step(8'd1), .count(c0));
  counter #(.W(8)) u1 (.clk(clk), .rst(rst), .step(8'd3), .count(c1));
endmodule
"""


@dataclass
class LoadtestConfig:
    """One load-test run: N sessions driven by C client threads."""

    sessions: int = 64
    workers: int = 4
    runs: int = 3
    run_cycles: int = 200
    concurrency: int = 16
    read_timeout: float = 300.0
    chaos: bool = False
    chaos_warmup: float = 0.75   # seconds before the first disruption
    chaos_margin: float = 0.5    # window cushion after recovery/resize


def _drive_session(client, name: str, config: LoadtestConfig,
                   registry: MetricsRegistry,
                   samples: List[Sample]) -> None:
    """Script one session end-to-end, timing each command class."""

    def timed(cls: str, fn, *args) -> None:
        started = time.perf_counter()
        try:
            fn(*args)
        except Exception:
            samples.append((cls, started, time.perf_counter(), False))
            raise
        ended = time.perf_counter()
        samples.append((cls, started, ended, True))
        registry.histogram(f"loadtest.{cls}.seconds", ended - started)
        registry.incr("loadtest.commands")

    timed("open", client.open_session, name, DESIGN)
    timed("instpipe", client.command, name, "instPipe p0, stage2")
    for _ in range(config.runs):
        timed("run", client.command, name,
              f"run tb0, p0, {config.run_cycles}")
        timed("peek", client.command, name, "peek p0")
    timed("close", client.close_session, name)


def _drive(
    host: str, port: int, config: LoadtestConfig
) -> Tuple[MetricsRegistry, float, List[Sample]]:
    """Run every session through a bounded pool of client threads."""
    from ..server.client import LiveSimClient, ReadTimeout, ServerError

    names: "queue.Queue[str]" = queue.Queue()
    for i in range(config.sessions):
        names.put(f"load-{i:04d}")
    registries = [MetricsRegistry() for _ in range(config.concurrency)]
    sample_lists: List[List[Sample]] = [
        [] for _ in range(config.concurrency)
    ]

    def client_thread(registry: MetricsRegistry,
                      samples: List[Sample]) -> None:
        client = LiveSimClient(host, port,
                               read_timeout=config.read_timeout)
        try:
            while True:
                try:
                    name = names.get_nowait()
                except queue.Empty:
                    return
                try:
                    _drive_session(client, name, config, registry,
                                   samples)
                except (ServerError, ReadTimeout,
                        ConnectionError, OSError) as exc:
                    registry.incr("loadtest.errors")
                    registry.incr(
                        f"loadtest.errors.{type(exc).__name__}"
                    )
                    if client.broken:
                        client.close()
                        client = LiveSimClient(
                            host, port,
                            read_timeout=config.read_timeout,
                        )
        finally:
            client.close()

    threads = [
        threading.Thread(target=client_thread,
                         args=(registry, samples),
                         name=f"loadtest-{i}", daemon=True)
        for i, (registry, samples)
        in enumerate(zip(registries, sample_lists))
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started

    merged = MetricsRegistry()
    for registry in registries:
        merged.merge(registry)
    samples = [s for per_thread in sample_lists for s in per_thread]
    return merged, wall_s, samples


# -- chaos mode --------------------------------------------------------------


class _ChaosController(threading.Thread):
    """Disrupt the worker pool while the workload is being measured.

    Sequence (each step records a disruption window, padded by
    ``chaos_margin`` to cover failover replays and rehydrate queues
    that drain just after the visible action completes):

    1. SIGKILL the lowest live worker, wait for the frontend to
       respawn it (its ``restarts`` counter ticks);
    2. ``resize`` the pool to twice its size;
    3. ``resize`` it back down.

    The controller stops early (between steps) once the drive
    finishes, so a short workload simply records fewer disruptions.
    """

    def __init__(self, server, host: str, port: int,
                 config: LoadtestConfig, stop: threading.Event):
        super().__init__(name="loadtest-chaos", daemon=True)
        self._server = server
        self._host = host
        self._port = port
        self._config = config
        self._halt = stop
        self.disruptions: List[Dict] = []
        self.error: Optional[str] = None

    def run(self) -> None:
        from ..server.client import LiveSimClient

        try:
            if self._halt.wait(self._config.chaos_warmup):
                return
            self._kill_one_worker()
            if self._halt.is_set():
                return
            workers = self._config.workers
            with LiveSimClient(self._host, self._port,
                               read_timeout=120.0) as admin:
                self._timed_window(
                    "resize", f"{workers} -> {workers * 2}",
                    lambda: admin.resize(workers * 2),
                )
                if self._halt.is_set():
                    return
                self._timed_window(
                    "resize", f"{workers * 2} -> {workers}",
                    lambda: admin.resize(workers),
                )
        except Exception as exc:  # surfaced in the artifact, not lost
            self.error = f"{type(exc).__name__}: {exc}"

    def _timed_window(self, kind: str, detail: str, action) -> None:
        start = time.perf_counter()
        action()
        self.disruptions.append({
            "kind": kind, "detail": detail, "start": start,
            "end": time.perf_counter() + self._config.chaos_margin,
        })

    def _kill_one_worker(self) -> None:
        # The server runs in-process, so the bench can reach its pool
        # handles directly — kills are not a protocol feature.
        handles = self._server._workers
        live = [wid for wid, w in handles.items() if w.alive]
        if not live:
            raise RuntimeError("no live worker to kill")
        wid = min(live)
        victim = handles[wid]
        restarts_before = victim.restarts
        start = time.perf_counter()
        os.kill(victim.pid, signal.SIGKILL)
        deadline = start + 60.0
        while time.perf_counter() < deadline:
            if victim.restarts > restarts_before and victim.alive:
                break
            if self._halt.wait(0.05):
                break
        self.disruptions.append({
            "kind": "kill", "detail": f"worker {wid} (SIGKILL)",
            "start": start,
            "end": time.perf_counter() + self._config.chaos_margin,
        })


def _latency_from_samples(samples: List[Sample]) -> Dict[str, Dict]:
    registry = MetricsRegistry()
    for cls, start, end, ok in samples:
        if ok:
            registry.histogram(f"loadtest.{cls}.seconds", end - start)
    return {
        cls: registry.histogram_stats(f"loadtest.{cls}.seconds")
        for cls in COMMAND_CLASSES
    }


def _split_by_disruption(
    samples: List[Sample], windows: List[Dict]
) -> Tuple[List[Sample], List[Sample]]:
    """Partition samples into (undisrupted, disrupted) by overlap."""
    clean: List[Sample] = []
    disrupted: List[Sample] = []
    for sample in samples:
        _, start, end, _ = sample
        hit = any(
            start < window["end"] and end > window["start"]
            for window in windows
        )
        (disrupted if hit else clean).append(sample)
    return clean, disrupted


def run_loadtest(config: LoadtestConfig) -> Dict:
    """Boot a server, drive the workload, return the result dict.

    ``config.workers > 0`` boots the sharded asyncio frontend;
    ``config.workers == 0`` boots the single-process threaded server
    (the comparison point for the scaling claim).
    """
    scratch = tempfile.mkdtemp(prefix="livesim-loadtest-")
    store_root = os.path.join(scratch, "store")
    server = None
    try:
        if config.workers > 0:
            from ..server.frontend import ShardedFrontend

            server = ShardedFrontend(
                port=0,
                workers=config.workers,
                store_root=store_root,
                state_root=os.path.join(scratch, "state"),
            )
        else:
            from ..server.service import LiveSimServer
            from ..server.store import ArtifactStore

            server = LiveSimServer(
                port=0, artifact_store=ArtifactStore(store_root)
            )
        host, port = server.start()

        chaos: Optional[_ChaosController] = None
        chaos_stop = threading.Event()
        if config.chaos:
            if config.workers <= 0:
                raise ValueError(
                    "--chaos needs the sharded server (--workers >= 1)"
                )
            chaos = _ChaosController(server, host, port, config,
                                     chaos_stop)
            chaos.start()
        try:
            registry, wall_s, samples = _drive(host, port, config)
        finally:
            chaos_stop.set()
        if chaos is not None:
            chaos.join(timeout=120.0)

        from ..server.client import LiveSimClient

        with LiveSimClient(host, port, read_timeout=60.0) as probe:
            server_stats = probe.stats()
    finally:
        if server is not None:
            server.shutdown()
        shutil.rmtree(scratch, ignore_errors=True)

    commands = registry.counter("loadtest.commands")
    result: Dict = {
        "mode": "sharded" if config.workers > 0 else "threaded",
        "wall_s": wall_s,
        "commands": commands,
        "commands_per_sec": commands / wall_s if wall_s > 0 else 0.0,
        "errors": registry.counter("loadtest.errors"),
        "latency_s": {
            cls: registry.histogram_stats(f"loadtest.{cls}.seconds")
            for cls in COMMAND_CLASSES
        },
        "server": {
            "sessions_left": server_stats.get("sessions"),
            "workers": server_stats.get("workers"),
            "request_seconds": (
                server_stats.get("metrics", {})
                .get("histograms", {})
                .get("server.request_seconds")
            ),
        },
    }
    error_counters = {
        name: value
        for name, value in sorted(registry.counters.items())
        if name.startswith("loadtest.errors.")
    }
    if error_counters:
        result["error_kinds"] = error_counters

    if chaos is not None:
        clean, disrupted = _split_by_disruption(
            samples, chaos.disruptions
        )
        # The gate sees only commands that never overlapped a
        # disruption: latency_s and errors are recomputed over the
        # clean partition; the disrupted tail is reported separately.
        result["latency_s"] = _latency_from_samples(clean)
        result["errors"] = sum(1 for s in clean if not s[3])
        counters = (
            server_stats.get("metrics", {}).get("counters", {})
        )
        run_start = min(
            (s[1] for s in samples),
            default=min(
                (w["start"] for w in chaos.disruptions),
                default=0.0,
            ),
        )
        result["chaos"] = {
            "disruptions": [
                {
                    "kind": w["kind"],
                    "detail": w["detail"],
                    "start_s": round(w["start"] - run_start, 3),
                    "end_s": round(w["end"] - run_start, 3),
                }
                for w in chaos.disruptions
            ],
            "commands_disrupted": len(disrupted),
            "disrupted_errors": sum(
                1 for s in disrupted if not s[3]
            ),
            "disrupted_latency_s": _latency_from_samples(disrupted),
            "sessions_migrated": counters.get(
                "server.sessions_migrated", 0),
            "migrations_failed": counters.get(
                "server.migrations_failed", 0),
            "request_failovers": counters.get(
                "server.request_failovers", 0),
            "worker_restarts": counters.get(
                "server.worker_restarts", 0),
            "resizes": counters.get("server.resizes", 0),
            "sessions_dropped": counters.get(
                "server.sessions_dropped", 0),
        }
        if chaos.error:
            result["chaos"]["controller_error"] = chaos.error
    return result


def run_loadtest_payload(config: LoadtestConfig,
                         compare_single: bool = False) -> Dict:
    """Full ``repro.bench.loadtest/v1`` artifact for one configuration."""
    from .run import calibrate

    payload: Dict = {
        "schema": LOADTEST_SCHEMA_ID,
        "generated_unix_s": time.time(),
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "calibration_s": calibrate(),
        "config": asdict(config),
    }
    payload.update(run_loadtest(config))
    if compare_single and config.workers > 0:
        single = run_loadtest(
            LoadtestConfig(**{
                **asdict(config), "workers": 0, "chaos": False,
            })
        )
        payload["single_process"] = single
        if single["commands_per_sec"] > 0:
            payload["speedup_vs_single"] = (
                payload["commands_per_sec"] / single["commands_per_sec"]
            )
    return payload


# -- regression gate ---------------------------------------------------------


def compare_to_baseline(
    current: Dict, baseline: Dict, max_regression: float
) -> List[str]:
    """Per-class p99 latency gate; returns failure messages (empty = ok).

    Throughput is deliberately NOT gated: commands/sec scales with core
    count, which the single-thread calibration probe cannot see.  The
    p99 gate uses the same host-speed scaling as the fig7 gate.
    """
    from .run import MAX_CALIBRATION_SCALE

    failures: List[str] = []
    base_latency = baseline.get("latency_s") or {}
    cur_latency = current.get("latency_s") or {}
    if not base_latency:
        return ["baseline JSON has no latency_s data"]

    scale = 1.0
    base_cal = baseline.get("calibration_s")
    cur_cal = current.get("calibration_s")
    if base_cal and cur_cal:
        scale = max(1.0, min(cur_cal / base_cal, MAX_CALIBRATION_SCALE))

    for cls in sorted(base_latency):
        base_p99 = base_latency[cls].get("p99")
        if not base_p99:
            continue
        stats = cur_latency.get(cls)
        if not stats or not stats.get("count"):
            failures.append(
                f"loadtest: command class {cls!r} missing from current run"
            )
            continue
        allowed = base_p99 * (1.0 + max_regression) * scale
        if stats["p99"] > allowed:
            failures.append(
                f"loadtest: {cls} p99 latency regressed: "
                f"{stats['p99'] * 1e3:.1f} ms > allowed "
                f"{allowed * 1e3:.1f} ms "
                f"(baseline {base_p99 * 1e3:.1f} ms, "
                f"host-speed scale {scale:.2f})"
            )
    if current.get("errors"):
        failures.append(
            f"loadtest: {current['errors']} session scripts failed "
            f"({current.get('error_kinds')})"
        )
    return failures


# -- CLI ---------------------------------------------------------------------


def _print_summary(payload: Dict, out) -> None:
    config = payload["config"]
    rows = []
    for cls in COMMAND_CLASSES:
        stats = payload["latency_s"][cls]
        rows.append([
            stats["count"],
            round(stats["p50"] * 1e3, 2),
            round(stats["p95"] * 1e3, 2),
            round(stats["p99"] * 1e3, 2),
            round(stats["max"] * 1e3, 2),
        ])
    print(format_table(
        f"Load test — {config['sessions']} sessions, "
        f"{config['workers']} workers, "
        f"{config['concurrency']} client threads ({payload['mode']})",
        ["count", "p50 ms", "p95 ms", "p99 ms", "max ms"],
        rows,
        row_labels=list(COMMAND_CLASSES),
    ), file=out)
    print(
        f"  {payload['commands']} commands in {payload['wall_s']:.2f} s "
        f"= {payload['commands_per_sec']:.1f} commands/sec, "
        f"{payload['errors']} errors "
        f"(host: {payload['cpu_count']} cores)",
        file=out,
    )
    single = payload.get("single_process")
    if single:
        print(
            f"  single-process: {single['commands_per_sec']:.1f} "
            "commands/sec -> sharded speedup "
            f"{payload.get('speedup_vs_single', 0.0):.2f}x",
            file=out,
        )
    chaos = payload.get("chaos")
    if chaos:
        kinds = [w["kind"] for w in chaos["disruptions"]]
        run_p99 = chaos["disrupted_latency_s"].get("run") or {}
        print(
            f"  chaos: {len(kinds)} disruptions "
            f"({kinds.count('kill')} kill, "
            f"{kinds.count('resize')} resize); "
            f"{chaos['commands_disrupted']} commands overlapped one "
            f"({chaos['disrupted_errors']} errored)",
            file=out,
        )
        print(
            "  chaos: "
            f"migrations={chaos['sessions_migrated']} "
            f"failovers={chaos['request_failovers']} "
            f"worker-restarts={chaos['worker_restarts']} "
            f"sessions-dropped={chaos['sessions_dropped']}; "
            "disrupted run p99 "
            f"{(run_p99.get('p99') or 0.0) * 1e3:.1f} ms",
            file=out,
        )
        if chaos.get("controller_error"):
            print(
                "  chaos: controller error: "
                f"{chaos['controller_error']}",
                file=out,
            )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench loadtest",
        description="LiveSim server load test: latency histograms per "
                    "command class + CI p99 gate",
    )
    parser.add_argument("--sessions", type=int, default=64)
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes (0 = single-process "
                             "threaded server)")
    parser.add_argument("--runs", type=int, default=3,
                        help="run/peek iterations per session")
    parser.add_argument("--run-cycles", type=int, default=200,
                        help="cycles per run command")
    parser.add_argument("--concurrency", type=int, default=16,
                        help="concurrent client threads")
    parser.add_argument("--compare-single", action="store_true",
                        help="rerun the workload single-process and "
                             "report the throughput ratio")
    parser.add_argument("--chaos", action="store_true",
                        help="kill one worker and resize the pool "
                             "W->2W->W during the measured run; the "
                             "p99 gate then covers only commands that "
                             "never overlapped a disruption")
    parser.add_argument("--chaos-warmup", type=float, default=0.75,
                        help="seconds into the run before the first "
                             "disruption (default: 0.75)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the repro.bench.loadtest/v1 "
                             "artifact to PATH")
    parser.add_argument("--baseline", metavar="PATH",
                        help="gate per-class p99 latency against this "
                             "artifact")
    parser.add_argument("--max-regression", type=float, default=1.0,
                        help="allowed fractional p99 regression vs "
                             "--baseline (default: 1.0, i.e. 2x — "
                             "tail latency is noisy)")
    parser.add_argument("--quiet", action="store_true")
    return parser


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    if args.sessions < 1 or args.concurrency < 1 or args.workers < 0:
        print("error: --sessions/--concurrency must be >= 1 and "
              "--workers >= 0", file=sys.stderr)
        return 2
    if args.chaos and args.workers < 1:
        print("error: --chaos needs the sharded server "
              "(--workers >= 1)", file=sys.stderr)
        return 2

    config = LoadtestConfig(
        sessions=args.sessions,
        workers=args.workers,
        runs=args.runs,
        run_cycles=args.run_cycles,
        concurrency=args.concurrency,
        chaos=args.chaos,
        chaos_warmup=args.chaos_warmup,
    )
    payload = run_loadtest_payload(
        config, compare_single=args.compare_single
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"loadtest artifact written to {args.json}",
              file=sys.stderr)
    if not args.quiet:
        _print_summary(payload, out)

    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline: {exc}", file=sys.stderr)
            return 2
        failures = compare_to_baseline(
            payload, baseline, args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        base_tput = baseline.get("commands_per_sec")
        if base_tput:
            print(
                "loadtest throughput (report-only): "
                f"{payload['commands_per_sec']:.1f} commands/sec vs "
                f"baseline {base_tput:.1f}",
                file=sys.stderr,
            )
        print(
            "loadtest p99 gate passed "
            f"(max allowed +{args.max_regression * 100:.0f}%)",
            file=sys.stderr,
        )
    elif payload["errors"]:
        print(f"error: {payload['errors']} session scripts failed",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
