"""Generators for the paper's tables (VII and VIII)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..codegen.cost import design_cost
from ..hdl.elaborate import elaborate
from ..hdl.parser import parse
from ..hostmodel.perf import HostMachine, PerfModel, PerfResult
from ..riscv.pgas import build_pgas_source, mesh_top_name
from .workloads import SizeResult

# Paper Table VII anchor: LiveSim on the 1x1 PGAS measured 1974 KHz.
PAPER_1X1_LIVESIM_KHZ = 1974.0

TABLE7_METRICS = ("KHz", "IPC", "I$ MPKI", "D$ MPKI", "BR MPKI")


@dataclass
class Table7Row:
    n: int
    livesim: PerfResult
    verilator: Optional[PerfResult]  # None => NA (didn't compile)


def table7(
    sizes: Sequence[int] = (1, 2, 4, 8, 16),
    trace_cycles: int = 6,
    verilator_na_at: int = 16,
    machine: HostMachine = HostMachine(),
) -> List[Table7Row]:
    """Regenerate Table VII through the host model.

    ``verilator_na_at``: mesh size at/above which the baseline is
    reported NA (its compile exceeds any budget — paper: the 16x16
    never compiled in 24 h).
    """
    costs = {}
    for n in sizes:
        netlist = elaborate(parse(build_pgas_source(n)), mesh_top_name(n))
        costs[n] = {
            "livesim": design_cost(netlist, "branch"),
            "verilator": design_cost(netlist, "select"),
        }
    model = PerfModel(machine).calibrated(
        costs[sizes[0]]["livesim"], PAPER_1X1_LIVESIM_KHZ,
        trace_cycles=trace_cycles,
    )
    rows = []
    for n in sizes:
        livesim = model.evaluate(
            costs[n]["livesim"], trace_cycles=trace_cycles, cores=n * n
        )
        verilator = None
        if n < verilator_na_at:
            verilator = model.evaluate(
                costs[n]["verilator"], trace_cycles=trace_cycles, cores=n * n
            )
        rows.append(Table7Row(n=n, livesim=livesim, verilator=verilator))
    return rows


def table7_formatted_rows(rows: List[Table7Row]) -> Tuple[List[str], List[list]]:
    columns = []
    for row in rows:
        columns.append(f"{row.n}x{row.n} LiveSim")
        columns.append(f"{row.n}x{row.n} Verilator")
    body = []
    for metric in TABLE7_METRICS:
        line: list = []
        for row in rows:
            live = row.livesim.row()[metric]
            veri = row.verilator.row()[metric] if row.verilator else None
            line.extend([live, veri])
        body.append(line)
    return columns, body


@dataclass
class Table8Row:
    n: int
    hot_reload_s: Optional[float]
    livesim_full_s: float
    verilator_s: Optional[float]  # None => NA


def table8(results: Sequence[SizeResult]) -> List[Table8Row]:
    """Regenerate Table VIII from measured workbench results."""
    return [
        Table8Row(
            n=r.n,
            hot_reload_s=r.livesim_hot_reload_s,
            livesim_full_s=r.livesim_full_compile_s,
            verilator_s=r.baseline_compile_s,
        )
        for r in results
    ]


ERD_PHASES = ("parse", "compile", "swap", "reload", "replay")


def erd_phase_rows(
    reports: Sequence[Tuple[str, "object"]],
) -> Tuple[List[str], List[list], List[str]]:
    """Phase-breakdown table data for labelled ERD reports.

    ``reports`` is ``[(label, ERDReport), ...]``; returns ``(columns,
    rows, row_labels)`` for :func:`repro.bench.reporting.format_table`
    — one row per edit, one column per live-loop phase (milliseconds)
    plus the total.  This is the Fig. 8 stacked bar as a table.
    """
    columns = [f"{phase} ms" for phase in ERD_PHASES] + ["total ms"]
    rows: List[list] = []
    labels: List[str] = []
    for label, report in reports:
        labels.append(label)
        rows.append([
            getattr(report, f"{phase}_seconds") * 1e3
            for phase in ERD_PHASES
        ] + [report.total_seconds * 1e3])
    return columns, rows, labels


def table8_shape_checks(rows: List[Table8Row]) -> Dict[str, bool]:
    """The qualitative claims Table VIII makes (used by tests and
    EXPERIMENTS.md):

    * hot reload stays under the 2 s goal at every size, and grows far
      more slowly than the instance count (in this substrate the
      residual growth is replay — Python simulation of more cores —
      while the compile+swap work is constant, as the paper argues);
    * LiveSim full compile grows with size but stays well under the
      baseline;
    * the baseline grows faster than LiveSim full and eventually NA.
    """
    checks: Dict[str, bool] = {}
    reloads = [
        (r.n * r.n, r.hot_reload_s)
        for r in rows
        if r.hot_reload_s is not None
    ]
    if len(reloads) >= 2:
        checks["hot_reload_under_2s"] = all(s < 2.0 for _, s in reloads)
        (c0, s0), (c1, s1) = reloads[0], reloads[-1]
        core_growth = c1 / max(c0, 1)
        time_growth = s1 / max(s0, 1e-9)
        checks["hot_reload_sublinear"] = time_growth <= max(
            core_growth / 4, 5.0
        )
    fulls = [r.livesim_full_s for r in rows]
    checks["full_compile_grows"] = fulls == sorted(fulls) or (
        fulls[-1] >= fulls[0]
    )
    pairs = [
        (r.livesim_full_s, r.verilator_s)
        for r in rows
        if r.verilator_s is not None
    ]
    if pairs:
        checks["baseline_slower_at_largest"] = pairs[-1][1] > pairs[-1][0]
    return checks
