"""Command-line entry point: ``python -m repro``.

Drives a :class:`~repro.live.session.LiveSession` from the shell, using
the paper's Table I command syntax plus a few session-level verbs::

    python -m repro design.v --top top --script session.lsim
    python -m repro design.v --top top            # interactive REPL

Extra verbs beyond Table I:

    reload <path> [, force]
                        re-read the design source and run the live
                        loop; the static-analysis gate refuses a swap
                        introducing a new error-class finding (e.g. a
                        combinational loop) unless ``force`` is given
    verify <pipe>       checkpoint-consistency verification (+repair);
                        blocking — it shadows the interpreter's
                        background ``verify``, which needs testbench
                        factory specs the shell's built-in tb lacks
    regs <pipe>, <path> dump an instance's registers
    outputs <pipe>      print the pipe's current outputs
    lint [pipe]         static analysis findings (repro.analyze)
    quit

plus the interpreter conveniences (``peek``, ``verifyStatus``,
``verifyWait``, …) from :mod:`repro.live.commands`.

With ``--trace-json PATH`` the whole session runs under the
:mod:`repro.obs` tracer and a ``repro.obs/v1`` span/metrics report is
written to PATH on exit (per-phase spans for every live-loop
iteration, compile cache hit/miss counters, checkpoint counters).

Example script::

    instPipe p0, stage2          # stage2 = handle of the top module
    run tb0, p0, 10000
    chkp p0, /tmp/boot.ckpt
    reload design_edited.v
    verify p0
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import obs
from .hdl.errors import HDLError
from .live.commands import CommandError, CommandInterpreter
from .live.session import LiveSession
from .sanitize import SanitizerError
from .sim.testbench import reset_sequence


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="LiveSim reproduction: live HDL simulation shell",
    )
    parser.add_argument("design", help="LHDL source file")
    parser.add_argument("--top", help="top module (defaults to the last "
                                      "module in the file)")
    parser.add_argument("--script", help="command script to execute "
                                         "(otherwise: interactive REPL)")
    parser.add_argument("--checkpoint-interval", type=int, default=10_000)
    parser.add_argument("--reset-cycles", type=int, default=2,
                        help="cycles the built-in tb0 asserts rst "
                             "(0 disables the reset testbench)")
    parser.add_argument("--trace-json", metavar="PATH",
                        help="enable tracing and write the repro.obs/v1 "
                             "span/metrics report to PATH on exit")
    parser.add_argument("--store", metavar="DIR",
                        help="on-disk compile-artifact store: compiled "
                             "modules are persisted here and reused "
                             "across runs (and by the repro.server "
                             "service) instead of recompiling")
    parser.add_argument("--opt", choices=("none", "basic", "full"),
                        default="none",
                        help="optimization level for generated code "
                             "(constant propagation, dead-logic "
                             "elimination; full adds sensitivity "
                             "guards). Toggle live with the `opt` verb")
    return parser


class Shell:
    """Session + interpreter + the extra session-level verbs."""

    def __init__(self, source: str, top: Optional[str],
                 checkpoint_interval: int, reset_cycles: int,
                 out=None, artifact_store=None, opt: str = "none"):
        # Resolve stdout lazily so output redirection (and pytest's
        # capture) set up after import still takes effect.
        self._out = out if out is not None else sys.stdout
        self.session = LiveSession(
            source, checkpoint_interval=checkpoint_interval,
            artifact_store=artifact_store, opt=opt,
        )
        modules = list(self.session.compiler.design.modules)
        if not modules:
            raise HDLError("design defines no modules")
        self.top = top or modules[-1]
        if self.top not in modules:
            raise HDLError(f"top module {self.top!r} not in design "
                           f"(have {modules})")
        self.interp = CommandInterpreter(self.session)
        if reset_cycles >= 0:
            handle = self.session.load_testbench(
                reset_sequence("rst", cycles=reset_cycles)
                if reset_cycles else reset_sequence("rst", cycles=0)
            )
            self._print(f"testbench {handle}: reset_sequence"
                        f"(cycles={reset_cycles})")
        self._print(
            f"loaded {len(modules)} modules; top = {self.top} "
            f"(handle {self.session.stage_handle_for(self.top)})"
        )

    def _print(self, text: str) -> None:
        print(text, file=self._out)

    # -- extra verbs -----------------------------------------------------------

    def _cmd_reload(self, operands: List[str]) -> None:
        if not 1 <= len(operands) <= 2:
            raise CommandError("usage: reload <path> [, force]")
        override = False
        if len(operands) == 2:
            if operands[1].lower() != "force":
                raise CommandError("usage: reload <path> [, force]")
            override = True
        with open(operands[0]) as fh:
            source = fh.read()
        report = self.session.apply_change(source, override_gate=override)
        if not report.behavioral:
            self._print("no behavioural change (comments/whitespace only)")
            return
        self._print(
            f"recompiled {report.recompiled_keys or 'nothing'}; "
            f"swapped {report.swapped_instances} instances; "
            f"replayed {report.cycles_replayed} cycles "
            f"from checkpoint @ {report.checkpoint_cycle}; "
            f"total {report.total_seconds * 1e3:.1f} ms"
        )
        for diag in report.new_findings:
            self._print(f"  new finding: {diag.severity} {diag}")
        if report.gate_overridden:
            self._print("  gate overridden: blocking findings accepted "
                        "into the baseline")

    def _cmd_verify(self, operands: List[str]) -> None:
        if len(operands) != 1:
            raise CommandError("usage: verify <pipe>")
        report = self.session.verify_consistency(operands[0], repair=True)
        if report.all_consistent:
            self._print(f"{len(report.segments)} checkpoint deltas "
                        "consistent")
        else:
            self._print(
                f"divergence from cycle {report.divergence_cycle}; "
                "history repaired"
            )

    def _cmd_regs(self, operands: List[str]) -> None:
        if len(operands) != 2:
            raise CommandError("usage: regs <pipe>, <instance-path>")
        inst = self.session.pipe(operands[0]).find(operands[1])
        for name, value in sorted(inst.registers().items()):
            self._print(f"  {name} = {value:#x}")

    def _cmd_outputs(self, operands: List[str]) -> None:
        if len(operands) != 1:
            raise CommandError("usage: outputs <pipe>")
        pipe = self.session.pipe(operands[0])
        self._print(f"  cycle {pipe.cycle}: {pipe.outputs()}")

    def _cmd_lint(self, operands: List[str]) -> None:
        if len(operands) > 1:
            raise CommandError("usage: lint [pipe]")
        pipe_name = operands[0] if operands else None
        report = self.session.lint(pipe_name)
        if not report.analyzed_keys and not report.reused_keys:
            # No pipes instantiated yet: analyze the top design
            # one-shot (uncached) instead of reporting nothing.
            from .hdl.elaborate import elaborate
            from .hdl.parser import parse

            netlist = elaborate(
                parse(self.session.compiler.source), self.top
            )
            report = self.session.analyzer.analyze_netlist(netlist)
        if not report.diagnostics:
            self._print("lint clean")
        for diag in report.diagnostics:
            self._print(f"  {diag.severity:<7} {diag}")

    EXTRA = {
        "reload": _cmd_reload,
        "verify": _cmd_verify,
        "regs": _cmd_regs,
        "outputs": _cmd_outputs,
        "lint": _cmd_lint,
    }

    # -- dispatch ----------------------------------------------------------------

    def execute(self, line: str) -> bool:
        """Run one line; returns False when the shell should exit."""
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            return True
        if stripped in ("quit", "exit"):
            return False
        verb = stripped.split(None, 1)[0].lower()
        handler = self.EXTRA.get(verb)
        try:
            if handler is not None:
                _, operands = CommandInterpreter.parse(stripped)
                handler(self, operands)
            else:
                result = self.interp.execute(stripped)
                if result.value is not None:
                    self._print(f"  {result.value}")
        except SanitizerError as exc:
            # A trap names the offending module/signal/line; the
            # session itself is still usable (switch to `san report`
            # to keep simulating past the finding).
            self._print(f"sanitizer trap: {exc}")
        except (CommandError, HDLError, OSError) as exc:
            self._print(f"error: {exc}")
        return True

    def run_script(self, text: str) -> None:
        for line in text.splitlines():
            if not self.execute(line):
                return

    def repl(self) -> None:  # pragma: no cover - interactive
        self._print("LiveSim shell — Table I commands plus "
                    "reload/verify/regs/outputs/lint/quit")
        while True:
            try:
                line = input("livesim> ")
            except EOFError:
                return
            if not self.execute(line):
                return


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.trace_json:
        obs.enable()
        obs.reset()
    artifact_store = None
    if args.store:
        from .server.store import ArtifactStore

        artifact_store = ArtifactStore(args.store)
    try:
        with open(args.design) as fh:
            source = fh.read()
        shell = Shell(
            source,
            args.top,
            checkpoint_interval=args.checkpoint_interval,
            reset_cycles=args.reset_cycles,
            artifact_store=artifact_store,
            opt=args.opt,
        )
    except (OSError, HDLError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    trace_failed = False
    try:
        if args.script:
            with open(args.script) as fh:
                shell.run_script(fh.read())
        else:  # pragma: no cover - interactive
            shell.repl()
    finally:
        if args.trace_json:
            report = obs.report(meta={
                "tool": "python -m repro",
                "design": args.design,
                "top": shell.top,
                "script": args.script,
            })
            try:
                obs.write_report(args.trace_json, report)
            except OSError as exc:
                print(f"error: cannot write trace: {exc}", file=sys.stderr)
                trace_failed = True
            else:
                print(f"trace written to {args.trace_json}",
                      file=sys.stderr)
    return 1 if trace_failed else 0


if __name__ == "__main__":
    sys.exit(main())
