"""Checkpointing: capture, selection, and garbage collection (Fig. 2).

During baseline execution LiveSim takes checkpoints at regular
intervals.  On a code change it reloads the checkpoint closest to a
tunable distance (default 10 000 cycles, §III-D) before the stopping
point, replays forward, and reports the result — while older
checkpoints are re-verified in the background.

The paper forks the process so checkpoint capture stays off the
simulation's critical path; here capture is an in-process deep snapshot
(deterministic and picklable — which the parallel verifier requires)
and its cost is measured and reported by the overhead bench exactly as
§V-B does.
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import dataclass
from typing import List, Optional

from .. import obs
from ..hdl.errors import SimulationError
from ..sim.pipeline import Pipe, PipeSnapshot


@dataclass
class Checkpoint:
    """One saved simulation state."""

    id: int
    cycle: int
    snapshot: PipeSnapshot
    version: str  # design version the state was captured under
    op_index: int  # session-history position (for replay)
    capture_seconds: float = 0.0

    def total_bytes(self) -> int:
        return self.snapshot.total_bytes()


@dataclass
class GCPolicy:
    """Fig. 2c: keep the newest N; thin older ones to equal spacing."""

    keep_latest: int = 100
    older_budget: int = 100

    def select_victims(self, checkpoints: List[Checkpoint]) -> List[Checkpoint]:
        """Checkpoints to delete, given the store sorted by cycle."""
        if len(checkpoints) <= self.keep_latest:
            return []
        older = checkpoints[: -self.keep_latest]
        if len(older) <= self.older_budget:
            return []
        # Keep `older_budget` roughly equally spaced by cycle.  Each
        # target claims a *distinct* checkpoint: with clustered cycles
        # several targets would otherwise resolve to the same nearest
        # checkpoint and the keep set would shrink below the budget,
        # deleting more than the policy promises.
        first = older[0].cycle
        last = older[-1].cycle
        span = max(last - first, 1)
        budget = min(self.older_budget, len(older))
        remaining = list(older)
        keep_ids = set()
        for i in range(budget):
            target = first + span * i / max(budget - 1, 1)
            best = min(remaining, key=lambda c: abs(c.cycle - target))
            keep_ids.add(best.id)
            remaining.remove(best)
        return [c for c in older if c.id not in keep_ids]


class CheckpointStore:
    """Ordered collection of checkpoints for one pipeline session.

    Mutation is guarded by a reentrant lock: the background verifier's
    collector thread invalidates post-divergence checkpoints while the
    session thread may be capturing new ones.
    """

    def __init__(
        self,
        interval: int = 10_000,
        policy: Optional[GCPolicy] = None,
        enabled: bool = True,
    ):
        if interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.interval = interval
        self.policy = policy or GCPolicy()
        self.enabled = enabled
        self._checkpoints: List[Checkpoint] = []
        self._next_id = 0
        self._lock = threading.RLock()
        self.total_capture_seconds = 0.0
        self.total_captured = 0
        self.total_collected = 0

    # -- capture -------------------------------------------------------------

    def take(self, pipe: Pipe, version: str, op_index: int) -> Checkpoint:
        """Capture the pipe state now (the Fig. 2a 'fork & save')."""
        started = time.perf_counter()
        with obs.span("checkpoint", cycle=pipe.cycle):
            snapshot = pipe.snapshot()
        elapsed = time.perf_counter() - started
        obs.incr("checkpoint.taken")
        with self._lock:
            checkpoint = Checkpoint(
                id=self._next_id,
                cycle=pipe.cycle,
                snapshot=snapshot,
                version=version,
                op_index=op_index,
                capture_seconds=elapsed,
            )
            self._next_id += 1
            self._insert(checkpoint)
            self.total_capture_seconds += elapsed
            self.total_captured += 1
            self.gc()
        return checkpoint

    def maybe_take(self, pipe: Pipe, version: str, op_index: int) -> Optional[Checkpoint]:
        """Capture if the configured interval elapsed since the last one."""
        if not self.enabled:
            return None
        last_cycle = self._checkpoints[-1].cycle if self._checkpoints else None
        if last_cycle is not None and pipe.cycle - last_cycle < self.interval:
            return None
        if last_cycle is None and pipe.cycle < self.interval:
            # First checkpoint also waits one interval, matching the
            # "regular intervals" cadence; cycle 0 state is re-creatable
            # by replay from reset.
            return None
        return self.take(pipe, version, op_index)

    def _insert(self, checkpoint: Checkpoint) -> None:
        # Keep sorted by cycle; same-cycle recapture replaces.
        with self._lock:
            replaced = [
                c for c in self._checkpoints if c.cycle != checkpoint.cycle
            ]
            replaced.append(checkpoint)
            replaced.sort(key=lambda c: c.cycle)
            self._checkpoints = replaced

    # -- selection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._checkpoints)

    def all(self) -> List[Checkpoint]:
        with self._lock:
            return list(self._checkpoints)

    def cycles(self) -> List[int]:
        with self._lock:
            return [c.cycle for c in self._checkpoints]

    def nearest_before(self, cycle: int) -> Optional[Checkpoint]:
        with self._lock:
            candidates = [c for c in self._checkpoints if c.cycle <= cycle]
        return candidates[-1] if candidates else None

    def reload_candidate(
        self, stop_cycle: int, distance: int = 10_000
    ) -> Optional[Checkpoint]:
        """The checkpoint closest to ``stop_cycle - distance`` (§III-D).

        Never returns a checkpoint after ``stop_cycle``.
        """
        target = max(stop_cycle - distance, 0)
        with self._lock:
            candidates = [c for c in self._checkpoints if c.cycle <= stop_cycle]
        if not candidates:
            return None
        # Ties break toward the later checkpoint: same distance from
        # the target, but less replay to reach the stop point.
        return min(candidates, key=lambda c: (abs(c.cycle - target), -c.cycle))

    def adopt(
        self,
        checkpoints: List[Checkpoint],
        up_to: Optional[int] = None,
    ) -> int:
        """Merge externally-loaded checkpoints (a saved store file)
        into this store, skipping cycles already present.

        ``ldch`` uses this so rewinding to a file keeps the file's
        *history* available too: a session rehydrated from a journal
        can then serve ``replay`` windows reaching back before the
        restore point instead of re-simulating from power-on.
        """
        added = 0
        with self._lock:
            have = {c.cycle for c in self._checkpoints}
            for checkpoint in checkpoints:
                if up_to is not None and checkpoint.cycle > up_to:
                    continue
                if checkpoint.cycle in have:
                    continue
                checkpoint.id = self._next_id
                self._next_id += 1
                self._checkpoints.append(checkpoint)
                have.add(checkpoint.cycle)
                added += 1
            self._checkpoints.sort(key=lambda c: c.cycle)
        return added

    def invalidate_after(self, cycle: int) -> int:
        """Drop checkpoints past ``cycle`` (post-divergence cleanup)."""
        with self._lock:
            before = len(self._checkpoints)
            self._checkpoints = [
                c for c in self._checkpoints if c.cycle <= cycle
            ]
            dropped = before - len(self._checkpoints)
        if dropped:
            obs.incr("checkpoint.invalidated", dropped)
        return dropped

    def clear(self) -> None:
        with self._lock:
            self._checkpoints = []

    def replace_snapshot(self, checkpoint_id: int, snapshot: PipeSnapshot,
                         version: str) -> None:
        with self._lock:
            for checkpoint in self._checkpoints:
                if checkpoint.id == checkpoint_id:
                    checkpoint.snapshot = snapshot
                    checkpoint.version = version
                    return
        raise SimulationError(f"no checkpoint with id {checkpoint_id}")

    # -- GC ------------------------------------------------------------------------

    def gc(self) -> int:
        with self._lock:
            victims = self.policy.select_victims(self._checkpoints)
            if victims:
                victim_ids = {c.id for c in victims}
                self._checkpoints = [
                    c for c in self._checkpoints if c.id not in victim_ids
                ]
                self.total_collected += len(victims)
        if victims:
            obs.incr("checkpoint.collected", len(victims))
        return len(victims)

    # -- persistence -----------------------------------------------------------------

    def save(self, path: str) -> None:
        with self._lock:
            payload = {
                "interval": self.interval,
                "checkpoints": list(self._checkpoints),
                "next_id": self._next_id,
                "stats": {
                    "total_captured": self.total_captured,
                    "total_capture_seconds": self.total_capture_seconds,
                    "total_collected": self.total_collected,
                },
            }
        with open(path, "wb") as fh:
            pickle.dump(payload, fh)

    def load(self, path: str) -> None:
        """Restore a saved store, including its overhead statistics.

        Files written before stats were persisted derive
        ``total_captured``/``total_capture_seconds`` from the
        checkpoints themselves.  The current GC policy is re-applied
        immediately: a file saved under a looser policy must not leave
        the store over budget.
        """
        with open(path, "rb") as fh:
            data = pickle.load(fh)  # noqa: S301 - local trusted file
        with self._lock:
            self.interval = data["interval"]
            self._checkpoints = list(data["checkpoints"])
            self._next_id = data["next_id"]
            stats = data.get("stats") or {}
            self.total_captured = stats.get(
                "total_captured", len(self._checkpoints)
            )
            self.total_capture_seconds = stats.get(
                "total_capture_seconds",
                sum(c.capture_seconds for c in self._checkpoints),
            )
            self.total_collected = stats.get("total_collected", 0)
            self.gc()

    def total_bytes(self) -> int:
        with self._lock:
            return sum(c.total_bytes() for c in self._checkpoints)
