"""Regression system on top of LiveSim (paper §III-A).

*"Instead of viewing the session history as a linear list of individual
checkpoints, a regression system could be built on top of LiveSim,
which could run a set of testbenches on the system and report their
result as a batch.  Regression is particularly useful to test if the
system state progresses as expected, starting from an arbitrary state,
not necessarily from the initial state."*

A :class:`RegressionSuite` holds named cases — (start state, testbench,
cycle budget, check) — and runs them as a batch against the session's
current design.  Each case runs in a disposable copy of the pipeline,
so the developer's live state is never disturbed; after a hot reload
the same suite re-runs against the patched design in one call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

from ..hdl.errors import SimulationError
from ..sim.pipeline import Pipe
from ..sim.testbench import Testbench
from .checkpoint import Checkpoint
from .session import LiveSession

CheckFn = Callable[[Pipe], bool]
StartSpec = Union[None, int, Checkpoint]  # None=reset, int=checkpoint cycle


@dataclass
class RegressionCase:
    """One batch entry: where to start, what to run, what must hold."""

    name: str
    testbench: Testbench
    cycles: int
    check: CheckFn
    start: StartSpec = None
    description: str = ""


@dataclass
class CaseResult:
    name: str
    passed: bool
    start_cycle: int
    end_cycle: int
    seconds: float
    error: str = ""


@dataclass
class RegressionReport:
    results: List[CaseResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    design_version: str = ""

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> List[CaseResult]:
        return [r for r in self.results if not r.passed]

    def summary(self) -> str:
        ok = sum(1 for r in self.results if r.passed)
        lines = [
            f"regression @ design {self.design_version}: "
            f"{ok}/{len(self.results)} passed "
            f"({self.wall_seconds:.2f}s)"
        ]
        for result in self.results:
            mark = "PASS" if result.passed else "FAIL"
            detail = f" — {result.error}" if result.error else ""
            lines.append(
                f"  [{mark}] {result.name}  "
                f"(cycles {result.start_cycle}->{result.end_cycle}, "
                f"{result.seconds * 1e3:.1f} ms){detail}"
            )
        return "\n".join(lines)


class RegressionSuite:
    """A batch of checks runnable against a live session's pipeline."""

    def __init__(self, session: LiveSession, pipe_name: str):
        self._session = session
        self._pipe_name = pipe_name
        self._cases: List[RegressionCase] = []

    def add(
        self,
        name: str,
        testbench: Testbench,
        cycles: int,
        check: CheckFn,
        start: StartSpec = None,
        description: str = "",
    ) -> RegressionCase:
        if any(c.name == name for c in self._cases):
            raise SimulationError(f"duplicate regression case {name!r}")
        case = RegressionCase(
            name=name, testbench=testbench, cycles=cycles,
            check=check, start=start, description=description,
        )
        self._cases.append(case)
        return case

    def __len__(self) -> int:
        return len(self._cases)

    def case_names(self) -> List[str]:
        return [c.name for c in self._cases]

    # -- execution -----------------------------------------------------------

    def _start_pipe(self, case: RegressionCase) -> Pipe:
        """A disposable pipe positioned at the case's start state."""
        live = self._session.pipe(self._pipe_name)
        pipe = live.copy(name=f"regression:{case.name}")
        if case.start is None:
            pipe.reset_state()
            return pipe
        if isinstance(case.start, Checkpoint):
            checkpoint = case.start
        else:
            checkpoint = self._session.store(self._pipe_name).nearest_before(
                case.start
            )
            if checkpoint is None:
                raise SimulationError(
                    f"case {case.name!r}: no checkpoint at or before "
                    f"cycle {case.start}"
                )
        pipe.restore_transformed(checkpoint.snapshot, lambda module: None)
        pipe.cycle = checkpoint.cycle
        return pipe

    def run(self, names: Optional[Sequence[str]] = None) -> RegressionReport:
        """Run all (or the named) cases; never touches the live pipe."""
        started = time.perf_counter()
        report = RegressionReport(design_version=self._session.version)
        selected = [
            c for c in self._cases if names is None or c.name in names
        ]
        for case in selected:
            case_started = time.perf_counter()
            error = ""
            try:
                pipe = self._start_pipe(case)
                start_cycle = pipe.cycle
                case.testbench.rebase(start_cycle)
                case.testbench.run(pipe, case.cycles)
                passed = bool(case.check(pipe))
                end_cycle = pipe.cycle
            except Exception as exc:  # a crashing case is a failing case
                passed = False
                start_cycle = end_cycle = -1
                error = f"{type(exc).__name__}: {exc}"
            report.results.append(
                CaseResult(
                    name=case.name,
                    passed=passed,
                    start_cycle=start_cycle,
                    end_cycle=end_cycle,
                    seconds=time.perf_counter() - case_started,
                    error=error,
                )
            )
        report.wall_seconds = time.perf_counter() - started
        return report
