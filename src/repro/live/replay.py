"""Session history and replay.

LiveSim views testbench runs as *operations on the UUT* whose "history
is tracked and checkpointed as part of the simulation session.  This
allows those same operations to be applied again, should the design be
updated due to a change in source code" (paper §III-B1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from ..hdl.errors import SimulationError
from ..sim.pipeline import Pipe
from ..sim.testbench import Testbench


@dataclass(frozen=True)
class SessionOp:
    """One recorded ``run`` command: a testbench applied for a span."""

    tb_handle: str
    start_cycle: int
    end_cycle: int

    @property
    def cycles(self) -> int:
        return self.end_cycle - self.start_cycle


def replay_ops(
    pipe: Pipe,
    ops: Sequence[SessionOp],
    to_cycle: int,
    tb_lookup: Callable[[str], Testbench],
    on_cycle: "Callable[[Pipe], None] | None" = None,
) -> int:
    """Re-apply recorded operations until ``pipe.cycle == to_cycle``.

    The pipe may start anywhere at or after the history's beginning
    (e.g. at a reloaded checkpoint).  Each overlapping op's testbench is
    rebased to its original start cycle so cycle-relative stimulus
    replays identically.  ``on_cycle`` (if given) runs after every
    simulated cycle — the checkpointer hooks in here.

    Returns the number of cycles executed.
    """
    if to_cycle < pipe.cycle:
        raise SimulationError(
            f"cannot replay backwards: pipe at {pipe.cycle}, target {to_cycle}"
        )
    executed = 0
    for op in ops:
        if op.end_cycle <= pipe.cycle:
            continue
        if op.start_cycle >= to_cycle:
            break
        testbench = tb_lookup(op.tb_handle)
        testbench.rebase(op.start_cycle)
        span_end = min(op.end_cycle, to_cycle)
        while pipe.cycle < span_end:
            step = 1 if on_cycle is not None else span_end - pipe.cycle
            chunk = testbench.run(pipe, step)
            executed += chunk
            if on_cycle is not None:
                on_cycle(pipe)
            if chunk == 0:
                # Testbench stopped early (watcher fired); force one
                # cycle forward to guarantee progress during replay.
                pipe.tick()
                executed += 1
                if on_cycle is not None:
                    on_cycle(pipe)
    if pipe.cycle < to_cycle:
        raise SimulationError(
            f"history ends at cycle {pipe.cycle}, cannot reach {to_cycle}"
        )
    return executed


def trim_ops(ops: Sequence[SessionOp], from_cycle: int) -> List[SessionOp]:
    """Ops overlapping ``[from_cycle, ...)`` (for shipping to workers)."""
    return [op for op in ops if op.end_cycle > from_cycle]
