"""LiveCompiler: incremental, cache-driven compilation.

Compilation is cached at specialization granularity.  A compiled module
is reusable when

* its own module source (token fingerprint) is unchanged,
* its parameter set is the same (part of the spec key), and
* every child's *interface* fingerprint is unchanged (the parent's
  generated code depends on child port order/widths, not child bodies).

So a body-only edit recompiles exactly one module; an interface edit
recompiles the module plus its ancestor chain — matching the paper's
description of how far a change propagates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..codegen.optplan import OPT_LEVELS
from ..codegen.pygen import CompiledModule
from ..hdl.ast_nodes import shift_lines
from ..hdl.elaborate import elaborate
from ..hdl.errors import HDLError
from ..hdl.parser import parse
from ..ir.netlist import Netlist
from ..passes import PassData, build_compile_pipeline
from .parser_live import LiveParseResult, LiveParser

# (spec key, module fingerprint, child interface fps, mux style,
#  sanitize flag, opt level, value-facts/plan fp) — sanitized/clean,
# per-opt-level, and per-facts artifacts coexist in the cache and in
# the artifact store.  At opt=full the child-fp components carry a
# "+pure" tag when the child subtree is pure (and, under sanitize,
# instrumentation-free); the last component is the dataflow-facts
# digest plus a "+e" elision marker, empty when dataflow is gated off
# (see repro.passes.codegen.CodegenPass).
CacheKey = Tuple[str, str, Tuple[str, ...], str, bool, str, str]


@dataclass
class CompileReport:
    """What one compile pass did and how long it took (Fig. 8 data)."""

    top: str
    recompiled_keys: List[str] = field(default_factory=list)
    reused_keys: List[str] = field(default_factory=list)
    parse_seconds: float = 0.0
    elaborate_seconds: float = 0.0
    codegen_seconds: float = 0.0
    sanitize: bool = False
    opt: str = "none"
    # Per-pass incrementality accounting (repro.passes): which spec
    # keys each optimization pass recomputed vs served from its cache,
    # and wall time per pass.
    pass_computed: Dict[str, List[str]] = field(default_factory=dict)
    pass_reused: Dict[str, List[str]] = field(default_factory=dict)
    pass_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.parse_seconds + self.elaborate_seconds + self.codegen_seconds

    @property
    def was_incremental(self) -> bool:
        return bool(self.reused_keys)


@dataclass
class CompileResult:
    netlist: Netlist
    library: Dict[str, CompiledModule]
    report: CompileReport


class LiveCompiler:
    """Owns the evolving design source and the compilation cache."""

    def __init__(
        self,
        source: str,
        mux_style: str = "branch",
        store=None,
        sanitize: bool = False,
        sanitize_runtime=None,
        san_elide: bool = True,
        opt: str = "none",
    ):
        """``store`` is an optional on-disk artifact store (duck-typed
        ``load(cache_key)`` / ``save(cache_key, module)``, see
        :class:`repro.server.store.ArtifactStore`).  The in-memory
        cache reads through it and writes behind it, so artifacts
        survive restarts and are shared across sessions.

        With ``sanitize=True``, compiles emit instrumented code bound
        to ``sanitize_runtime`` (a
        :class:`repro.sanitize.SanitizerRuntime`).  The flag is part of
        the cache key, so clean and sanitized artifacts coexist and
        toggling is a cache hit after the first compile.

        ``opt`` selects the optimization level (see
        :data:`repro.codegen.optplan.OPT_LEVELS`); it too joins the
        cache key, so per-level artifacts coexist."""
        if opt not in OPT_LEVELS:
            raise ValueError(f"unknown opt level {opt!r} (know {OPT_LEVELS})")
        self.parser = LiveParser(source)
        self._design = parse(source)
        self._mux_style = mux_style
        self._cache: Dict[CacheKey, CompiledModule] = {}
        self._store = store
        self._sanitize = sanitize
        self._sanitize_runtime = sanitize_runtime
        self._san_elide = san_elide
        self._opt = opt
        # One pipeline for the compiler's lifetime: the pass instances
        # hold the per-pass caches that make hot reload incremental.
        self._pipeline = build_compile_pipeline()
        self._last_parse_seconds = 0.0

    @property
    def sanitize(self) -> bool:
        return self._sanitize

    def set_sanitize(self, enabled: bool, runtime=None) -> None:
        """Switch instrumented codegen on/off for subsequent compiles."""
        self._sanitize = enabled
        if runtime is not None:
            self._sanitize_runtime = runtime

    @property
    def opt(self) -> str:
        return self._opt

    def set_opt(self, level: str) -> None:
        """Switch the optimization level for subsequent compiles."""
        if level not in OPT_LEVELS:
            raise ValueError(
                f"unknown opt level {level!r} (know {OPT_LEVELS})"
            )
        self._opt = level

    @property
    def pipeline(self):
        return self._pipeline

    @property
    def artifact_store(self):
        return self._store

    @property
    def source(self) -> str:
        return self.parser.source

    @property
    def design(self):
        return self._design

    def cache_size(self) -> int:
        return len(self._cache)

    # -- source evolution -------------------------------------------------------

    def update_source(self, new_source: str) -> LiveParseResult:
        """Analyze and commit an edit.

        Changed module regions are re-parsed individually when it is
        safe to do so (no macro usage in the changed regions and no
        directive change); otherwise the whole file is re-parsed.
        Raises :class:`HDLError` on syntax errors, leaving the previous
        good source in place.
        """
        started = time.perf_counter()
        with obs.span("parse"):
            return self._update_source(new_source, started)

    def _update_source(
        self, new_source: str, started: float
    ) -> LiveParseResult:
        result = self.parser.analyze(new_source)
        if not result.behavioral:
            # Comments/whitespace only: commit the text, keep everything.
            self.parser.commit(new_source)
            self._last_parse_seconds = time.perf_counter() - started
            result.parse_seconds = self._last_parse_seconds
            return result

        regions = self._module_regions(new_source)
        incremental_ok = (
            not result.directive_changed
            and not result.removed_modules
            and all(
                name in regions and "`" not in regions[name].text
                for name in result.changed_modules | result.added_modules
            )
        )
        if incremental_ok:
            for name in result.changed_modules | result.added_modules:
                region = regions[name]
                sub_design = parse(region.text)
                if name not in sub_design.modules:
                    raise HDLError(
                        f"edited region no longer defines module {name!r}"
                    )
                module_ast = sub_design.modules[name]
                # The standalone sub-parse numbered lines from 1; shift
                # them back to file coordinates so diagnostics point at
                # the user's actual source.
                shift_lines(module_ast, region.start_line - 1)
                self._design.modules[name] = module_ast
        else:
            design = parse(new_source)
            self._design = design
        for name in result.removed_modules:
            self._design.modules.pop(name, None)
        self.parser.commit(new_source)
        self._last_parse_seconds = time.perf_counter() - started
        result.parse_seconds = self._last_parse_seconds
        return result

    def _module_regions(self, new_source: str) -> dict:
        from ..hdl.source_regions import module_regions

        return module_regions(new_source)

    # -- compilation ---------------------------------------------------------------

    def compile_top(
        self, top: str, params: Optional[Dict[str, int]] = None
    ) -> CompileResult:
        """Elaborate + compile ``top`` through the pass pipeline,
        reusing cached modules (and cached per-pass results)."""
        report = CompileReport(
            top=top, sanitize=self._sanitize, opt=self._opt
        )
        report.parse_seconds = self._last_parse_seconds
        self._last_parse_seconds = 0.0

        started = time.perf_counter()
        with obs.span("elaborate", top=top):
            netlist = elaborate(self._design, top, params)
        report.elaborate_seconds = time.perf_counter() - started

        started = time.perf_counter()
        fps = {
            name: self.parser.fingerprint(name)
            for name in {netlist.modules[k].name for k in netlist.modules}
        }
        data = PassData(
            netlist=netlist,
            fps=fps,
            mux_style=self._mux_style,
            sanitize=self._sanitize,
            sanitize_runtime=self._sanitize_runtime,
            san_elide=self._san_elide,
            opt=self._opt,
            compile_cache=self._cache,
            store=self._store,
            report=report,
        )
        with obs.span("codegen", top=top, opt=self._opt):
            self._pipeline.run(data)
        library: Dict[str, CompiledModule] = data.facts["codegen.library"]
        report.codegen_seconds = time.perf_counter() - started
        obs.gauge("compile.cache_size", len(self._cache))
        return CompileResult(netlist=netlist, library=library, report=report)

    # -- cache maintenance ---------------------------------------------------------

    def evict_stale(self, keep_generations: int = 4) -> int:
        """Drop cache entries beyond a bounded population.

        The cache only grows when fingerprints change, so a long edit
        session can accumulate dead versions; this trims to the most
        recently inserted ``keep_generations`` entries per spec key.
        Returns the number of evicted entries.
        """
        by_spec: Dict[str, List[CacheKey]] = {}
        for cache_key in self._cache:
            by_spec.setdefault(cache_key[0], []).append(cache_key)
        evicted = 0
        for spec, keys in by_spec.items():
            if len(keys) > keep_generations:
                for key in keys[: len(keys) - keep_generations]:
                    del self._cache[key]
                    evicted += 1
        if evicted:
            obs.incr("compile.cache_evicted", evicted)
            obs.gauge("compile.cache_size", len(self._cache))
        return evicted
