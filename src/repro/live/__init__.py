"""LiveSim core: the live simulation flow (paper §III).

* :mod:`repro.live.parser_live` — LiveParser: attributes edits to
  source regions and decides whether behaviour changed.
* :mod:`repro.live.compiler_live` — LiveCompiler: incremental,
  cache-driven recompilation of only the affected specializations.
* :mod:`repro.live.hotreload` — swaps compiled modules into running
  pipelines and migrates state.
* :mod:`repro.live.transform` — register transformation rules and the
  branching Register Transform History (Tables V and VI).
* :mod:`repro.live.checkpoint` — checkpoint store with the Fig. 2
  garbage-collection policy.
* :mod:`repro.live.consistency` — parallel checkpoint-delta
  verification (Fig. 6).
* :mod:`repro.live.session` — the LiveSession command API (Table I).
"""

from .checkpoint import Checkpoint, CheckpointStore, GCPolicy
from .commands import CommandError, CommandInterpreter, CommandResult
from .compiler_live import CompileReport, LiveCompiler
from .consistency import (
    BackgroundVerifier,
    ConsistencyChecker,
    ConsistencyReport,
    VerifierPool,
    VerifyJob,
    VerifyStatus,
)
from .hotreload import HotReloader, SwapReport
from .parser_live import LiveParser, LiveParseResult
from .regression import (
    CaseResult,
    RegressionCase,
    RegressionReport,
    RegressionSuite,
)
from .session import ERDReport, LiveSession
from .tables import ObjectEntry, ObjectLibraryTable, PipelineTable, StageTable
from .transform import (
    RegisterTransform,
    RegisterTransformHistory,
    TransformOp,
    guess_transforms,
)

__all__ = [
    "ObjectLibraryTable",
    "PipelineTable",
    "StageTable",
    "ObjectEntry",
    "LiveParser",
    "LiveParseResult",
    "LiveCompiler",
    "CompileReport",
    "RegisterTransform",
    "RegisterTransformHistory",
    "TransformOp",
    "guess_transforms",
    "HotReloader",
    "SwapReport",
    "Checkpoint",
    "CheckpointStore",
    "GCPolicy",
    "BackgroundVerifier",
    "ConsistencyChecker",
    "ConsistencyReport",
    "VerifierPool",
    "VerifyJob",
    "VerifyStatus",
    "ERDReport",
    "LiveSession",
    "CommandInterpreter",
    "CommandResult",
    "CommandError",
    "RegressionSuite",
    "RegressionCase",
    "RegressionReport",
    "CaseResult",
]
