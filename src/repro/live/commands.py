"""Command-string interface to a LiveSession (paper Table I syntax).

Users "interact with the system both by manipulating the source code
... and by sending commands to the simulator" (§III-B).  This module
accepts the paper's command syntax verbatim::

    ldLib name, path
    instPipe name, pipe-handle
    instStage pipe-name, stage-name, stage-handle
    copyPipe new-name, old-name
    run tb-handle, pipe-name, cycles
    chkp pipe-name [, path]
    ldch pipe-name, path
    swapStage pipe-name, stage-name

plus session conveniences beyond Table I::

    peek pipe-name              current outputs, no cycles advanced
    lint [pipe-name]            static analysis findings (repro.analyze)
    san [off|report|trap]       toggle the runtime sanitizer / show
                                mode + per-check hit counters
    opt [none|basic|full]       switch the optimization level (a hot
                                recompile + swap, state preserved) /
                                show level + pass order
    verify pipe-name [, workers]   start a background verification
    verifyStatus pipe-name      progress / verdict of the latest verify
    verifyWait pipe-name        block until the verify report lands
    watch pipe-name, signal     capture the signal every cycle (live)
    unwatch pipe-name, signal   stop capturing; drop its history
    trace pipe-name [, signal [, start [, end]]]
                                read captured samples (or the probe
                                inventory without a signal)
    replay pipe-name, start, end [, signal...]
                                time-travel: re-simulate the window on
                                a scratch pipe and return the samples

Comments start with ``#``; blank lines are ignored; ``script`` runs a
multi-line batch and returns each command's result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..hdl.errors import SimulationError
from ..sanitize import SanitizerError
from .session import LiveSession


class CommandError(ValueError):
    """Malformed or unknown simulator command."""


@dataclass
class CommandResult:
    command: str
    value: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CommandResult {self.command}: {self.value!r}>"


class CommandInterpreter:
    """Parses and dispatches Table I command lines onto a session."""

    def __init__(self, session: LiveSession,
                 read_file: Optional[Callable[[str], str]] = None):
        self._session = session
        self._read_file = read_file or _read_text_file
        # (lib name, source text) merged by the most recent ldLib.
        # Persistence layers (the session journal) must read this
        # instead of re-opening the path: the file can change or vanish
        # between the load and the journal write.
        self.last_ld_lib: Optional[Tuple[str, str]] = None
        self._handlers: Dict[str, Callable[[List[str]], Any]] = {
            "ldlib": self._ld_lib,
            "instpipe": self._inst_pipe,
            "inststage": self._inst_stage,
            "copypipe": self._copy_pipe,
            "run": self._run,
            "chkp": self._chkp,
            "ldch": self._ldch,
            "swapstage": self._swap_stage,
            "peek": self._peek,
            "lint": self._lint,
            "san": self._san,
            "opt": self._opt,
            "verify": self._verify,
            "verifystatus": self._verify_status,
            "verifywait": self._verify_wait,
            "watch": self._watch,
            "unwatch": self._unwatch,
            "trace": self._trace,
            "replay": self._replay,
        }

    # -- parsing -----------------------------------------------------------

    @staticmethod
    def parse(line: str) -> Tuple[str, List[str]]:
        text = line.split("#", 1)[0].strip()
        if not text:
            raise CommandError("empty command")
        parts = text.split(None, 1)
        verb = parts[0]
        operands = (
            [op.strip() for op in parts[1].split(",")] if len(parts) > 1 else []
        )
        if any(not op for op in operands):
            raise CommandError(f"empty operand in {line!r}")
        return verb, operands

    def execute(self, line: str) -> CommandResult:
        verb, operands = self.parse(line)
        handler = self._handlers.get(verb.lower())
        if handler is None:
            raise CommandError(
                f"unknown command {verb!r}; expected one of "
                f"{sorted(self._handlers)}"
            )
        try:
            value = handler(operands)
        except SanitizerError:
            # A sanitizer trap is a *finding about the design*, not a
            # malformed command: let it propagate with its module,
            # signal, and line intact (the shell and server give it a
            # dedicated error taxonomy).
            raise
        except SimulationError as exc:
            raise CommandError(f"{verb}: {exc}") from exc
        return CommandResult(command=verb, value=value)

    def script(self, text: str) -> List[CommandResult]:
        results = []
        for line in text.splitlines():
            stripped = line.split("#", 1)[0].strip()
            if stripped:
                results.append(self.execute(stripped))
        return results

    # -- handlers ----------------------------------------------------------

    @staticmethod
    def _need(operands: List[str], low: int, high: int, usage: str) -> None:
        if not low <= len(operands) <= high:
            raise CommandError(f"usage: {usage}")

    def _ld_lib(self, operands: List[str]) -> List[str]:
        self._need(operands, 2, 2, "ldLib name, path")
        name, path = operands
        try:
            source = self._read_file(path)
        except OSError as exc:
            # A bad path is a user typo, not a session failure: surface
            # it as a CommandError so callers (the shell, the server)
            # report it on the same channel as every other bad command.
            raise CommandError(f"ldLib: cannot read {path!r}: {exc}") from exc
        handles = self._session.ld_lib(name, source)
        self.last_ld_lib = (name, source)
        return handles

    def _inst_pipe(self, operands: List[str]):
        self._need(operands, 2, 2, "instPipe name, pipe-handle")
        name, handle = operands
        return self._session.inst_pipe(name, handle)

    def _inst_stage(self, operands: List[str]) -> None:
        self._need(operands, 3, 3,
                   "instStage pipe-name, stage-name, stage-handle")
        pipe_name, stage_name, handle = operands
        self._session.inst_stage(pipe_name, stage_name, handle)

    def _copy_pipe(self, operands: List[str]):
        self._need(operands, 2, 2, "copyPipe new-name, old-name")
        new_name, old_name = operands
        return self._session.copy_pipe(new_name, old_name)

    def _run(self, operands: List[str]) -> Dict[str, int]:
        self._need(operands, 3, 3, "run tb-handle, pipe-name, cycles")
        tb_handle, pipe_name, cycles_text = operands
        try:
            cycles = int(cycles_text, 0)
        except ValueError:
            raise CommandError("cycles must be an integer, got "
                               f"{cycles_text!r}") from None
        if cycles < 0:
            raise CommandError("cycles must be non-negative")
        return self._session.run(tb_handle, pipe_name, cycles)

    def _chkp(self, operands: List[str]):
        self._need(operands, 1, 2, "chkp pipe-name [, path]")
        pipe_name = operands[0]
        path = operands[1] if len(operands) > 1 else None
        return self._session.chkp(pipe_name, path)

    def _ldch(self, operands: List[str]) -> None:
        self._need(operands, 2, 2, "ldch pipe-name, path")
        pipe_name, path = operands
        self._session.ldch(pipe_name, path)

    def _swap_stage(self, operands: List[str]):
        self._need(operands, 2, 3,
                   "swapStage pipe-name, stage-name [, stage-handle]")
        pipe_name, stage_name = operands[0], operands[1]
        # The optional stage-handle from the paper names the replacement
        # object; in this implementation the replacement is always the
        # latest compile of the same module, so it is accepted and
        # validated but carries no extra information.
        if len(operands) == 3:
            self._session.objects.get(operands[2])
        return self._session.swap_stage(pipe_name, stage_name)

    def _peek(self, operands: List[str]) -> Dict[str, int]:
        self._need(operands, 1, 1, "peek pipe-name")
        return self._session.peek(operands[0])

    def _lint(self, operands: List[str]):
        self._need(operands, 0, 1, "lint [pipe-name]")
        pipe_name = operands[0] if operands else None
        return self._session.lint(pipe_name)

    def _san(self, operands: List[str]):
        self._need(operands, 0, 1, "san [off|report|trap]")
        if not operands:
            return self._session.sanitize_status()
        return self._session.set_sanitize(operands[0].lower())

    def _opt(self, operands: List[str]):
        self._need(operands, 0, 1, "opt [none|basic|full]")
        if not operands:
            return self._session.opt_status()
        return self._session.set_opt(operands[0].lower())

    def _verify(self, operands: List[str]):
        self._need(operands, 1, 2, "verify pipe-name [, workers]")
        pipe_name = operands[0]
        workers = 2
        if len(operands) == 2:
            try:
                workers = int(operands[1], 0)
            except ValueError:
                raise CommandError("workers must be an integer, got "
                                   f"{operands[1]!r}") from None
            if workers < 1:
                raise CommandError("workers must be positive")
        self._session.verify_background(pipe_name, workers=workers)
        return self._session.verify_status(pipe_name)

    def _verify_status(self, operands: List[str]):
        self._need(operands, 1, 1, "verifyStatus pipe-name")
        return self._session.verify_status(operands[0])

    def _verify_wait(self, operands: List[str]):
        self._need(operands, 1, 1, "verifyWait pipe-name")
        return self._session.wait_for_verify(operands[0])

    @staticmethod
    def _cycle(text: str, what: str) -> int:
        try:
            value = int(text, 0)
        except ValueError:
            raise CommandError(
                f"{what} must be an integer, got {text!r}"
            ) from None
        if value < 0:
            raise CommandError(f"{what} must be non-negative")
        return value

    def _watch(self, operands: List[str]):
        self._need(operands, 2, 2, "watch pipe-name, signal")
        return self._session.watch(operands[0], operands[1])

    def _unwatch(self, operands: List[str]):
        self._need(operands, 2, 2, "unwatch pipe-name, signal")
        return self._session.unwatch(operands[0], operands[1])

    def _trace(self, operands: List[str]):
        self._need(operands, 1, 4,
                   "trace pipe-name [, signal [, start [, end]]]")
        pipe_name = operands[0]
        if len(operands) == 1:
            return self._session.trace_status(pipe_name)
        signal = operands[1]
        start = (
            self._cycle(operands[2], "start") if len(operands) > 2 else None
        )
        end = (
            self._cycle(operands[3], "end") if len(operands) > 3 else None
        )
        return self._session.trace_read(pipe_name, signal, start, end)

    def _replay(self, operands: List[str]):
        self._need(operands, 3, 32,
                   "replay pipe-name, start, end [, signal...]")
        pipe_name = operands[0]
        start = self._cycle(operands[1], "start")
        end = self._cycle(operands[2], "end")
        signals = operands[3:] or None
        return self._session.replay_window(pipe_name, start, end, signals)


def _read_text_file(path: str) -> str:
    with open(path, "r") as fh:
        return fh.read()
