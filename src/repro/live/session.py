"""LiveSession: the user-facing live simulation environment (§III-B).

Implements the paper's Table I command set::

    ldLib name, source          load a library (LHDL source text)
    instPipe name, pipe-handle  instantiate a pipeline
    instStage pipe, name, hdl   bind a stage name inside a pipeline
    copyPipe new, old           duplicate a pipeline including state
    run tb, pipe, cycles        run a testbench on a pipe
    chkp pipe [, path]          take (and optionally save) a checkpoint
    ldch pipe, path             load a checkpoint into a pipeline
    swapStage pipe, name, hdl   replace a stage with a new instance

plus the live entry point :meth:`apply_change`, which executes the full
edit-run-debug loop: LiveParser -> LiveCompiler -> hot reload ->
checkpoint reload -> replay — the under-2-seconds path of Figs. 7/8.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..analyze import (
    AnalysisReport,
    Analyzer,
    Diagnostic,
    GatePolicy,
    evaluate_gate,
    sort_diagnostics,
)
from ..codegen.optplan import OPT_LEVELS
from ..hdl.errors import HDLError, SimulationError
from ..sanitize import SANITIZE_MODES, SanitizerRuntime
from ..sim.pipeline import Pipe
from ..sim.testbench import Testbench
from ..trace import TraceBuffer
from ..trace.buffer import DEFAULT_CAPACITY
from .checkpoint import CheckpointStore, GCPolicy
from .compiler_live import CompileResult, LiveCompiler
from .consistency import (
    BackgroundVerifier,
    ConsistencyChecker,
    ConsistencyReport,
    VerifierPool,
    VerifyJob,
    VerifyStatus,
    WorkerContext,
)
from .hotreload import HotReloader, SwapReport
from .replay import SessionOp, replay_ops
from .tables import (
    STAGE,
    TESTBENCH,
    ObjectEntry,
    ObjectLibraryTable,
    PipelineTable,
    StageTable,
)
from .transform import (
    RegisterTransform,
    RegisterTransformHistory,
    guess_transforms,
    translate_snapshot,
)


@dataclass
class ERDReport:
    """Timing breakdown of one edit-run-debug iteration (Fig. 8)."""

    behavioral: bool
    version: str
    parse_seconds: float = 0.0
    compile_seconds: float = 0.0
    swap_seconds: float = 0.0
    reload_seconds: float = 0.0
    replay_seconds: float = 0.0
    cycles_replayed: int = 0
    checkpoint_cycle: Optional[int] = None
    recompiled_keys: List[str] = field(default_factory=list)
    reused_keys: List[str] = field(default_factory=list)
    swapped_instances: int = 0
    pipes_updated: List[str] = field(default_factory=list)
    # Filled when apply_change(verify=True): pipe name -> the
    # background verification verdict (post-repair state is correct).
    consistency: Dict[str, "ConsistencyReport"] = field(default_factory=dict)
    verify_seconds: float = 0.0
    # Pipes whose verification was kicked off in the background
    # (apply_change(verify="background")); verdicts arrive later via
    # LiveSession.verify_status / wait_for_verify.
    background_verifies: List[str] = field(default_factory=list)
    # Static analysis over the post-edit design (repro.analyze):
    # findings, cache accounting, and whether the gate was overridden.
    analyze_seconds: float = 0.0
    analyzed_keys: List[str] = field(default_factory=list)
    analysis_reused_keys: List[str] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    new_findings: List[Diagnostic] = field(default_factory=list)
    gate_overridden: bool = False
    # Sanitizer accounting.  Sanitized and clean compiles populate
    # *different* cache entries, so bench ablation rows must not mix
    # them: recompiled/reused_keys above hold the union, these two hold
    # the sanitized subset.
    sanitize: bool = False
    sanitized_recompiled_keys: List[str] = field(default_factory=list)
    sanitized_reused_keys: List[str] = field(default_factory=list)
    # Pass-framework accounting (repro.passes): the active opt level
    # and, per optimization pass, which spec keys were recomputed vs
    # served from the pass's fingerprint cache this iteration.  A hot
    # reload under opt should recompute only the dirty module's passes.
    opt: str = "none"
    pass_computed_keys: Dict[str, List[str]] = field(default_factory=dict)
    pass_reused_keys: Dict[str, List[str]] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return (
            self.parse_seconds
            + self.compile_seconds
            + self.swap_seconds
            + self.reload_seconds
            + self.replay_seconds
        )

    @property
    def within_two_seconds(self) -> bool:
        """The paper's responsiveness goal (§I)."""
        return self.total_seconds < 2.0


@dataclass
class _PipeSession:
    """Runtime bookkeeping for one instantiated pipeline."""

    name: str
    handle: str
    module: str
    params: Dict[str, int]
    pipe: Pipe
    store: CheckpointStore
    ops: List[SessionOp] = field(default_factory=list)
    compile_result: Optional[CompileResult] = None
    trace: Optional[TraceBuffer] = None


class LiveSession:
    """One live development session over a single evolving design."""

    def __init__(
        self,
        source: str,
        mux_style: str = "branch",
        checkpoint_interval: int = 10_000,
        reload_distance: int = 10_000,
        gc_policy: Optional[GCPolicy] = None,
        checkpoints_enabled: bool = True,
        initial_version: str = "1.0",
        artifact_store=None,
        analyzer: Optional[Analyzer] = None,
        gate_policy: Optional[GatePolicy] = None,
        sanitize: str = "off",
        san_elide: bool = True,
        trace_capacity: Optional[int] = DEFAULT_CAPACITY,
        opt: str = "none",
    ):
        if sanitize not in SANITIZE_MODES:
            raise SimulationError(
                f"unknown sanitize mode {sanitize!r}; expected one of "
                f"{SANITIZE_MODES}"
            )
        if opt not in OPT_LEVELS:
            raise SimulationError(
                f"unknown opt level {opt!r}; expected one of {OPT_LEVELS}"
            )
        # One runtime per session, forever: instrumented code exec'd at
        # any point binds this exact object, so mode flips are live in
        # already-compiled modules.
        self.sanitize_runtime = SanitizerRuntime(mode=sanitize)
        self._sanitize_mode = sanitize
        self.compiler = LiveCompiler(
            source,
            mux_style=mux_style,
            store=artifact_store,
            sanitize=sanitize != "off",
            sanitize_runtime=self.sanitize_runtime,
            san_elide=san_elide,
            opt=opt,
        )
        self.analyzer = analyzer if analyzer is not None else Analyzer()
        self.gate_policy = (
            gate_policy if gate_policy is not None else GatePolicy()
        )
        # Per-pipe accepted findings: the gate blocks only findings
        # *new* relative to this baseline (seeded at inst_pipe,
        # advanced by every successful apply_change).
        self._analysis_baseline: Dict[str, List[Diagnostic]] = {}
        self.objects = ObjectLibraryTable()
        self.pipelines = PipelineTable()
        self.stages = StageTable(self.pipelines)
        self.history = RegisterTransformHistory(initial_version)
        self.version = initial_version
        self.checkpoint_interval = checkpoint_interval
        self.reload_distance = reload_distance
        self.checkpoints_enabled = checkpoints_enabled
        self._gc_policy = gc_policy or GCPolicy()
        self._mux_style = mux_style
        self._pipe_sessions: Dict[str, _PipeSession] = {}
        self._testbenches: Dict[str, Testbench] = {}
        self._tb_specs: Dict[str, Tuple[str, Dict]] = {}
        self._version_counter = 0
        self.trace_capacity = trace_capacity
        self._verifier_pool: Optional[VerifierPool] = None
        self._verify_jobs: Dict[str, VerifyJob] = {}
        self._verify_reports: Dict[str, ConsistencyReport] = {}
        self._register_source_modules("design")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down the verification subsystem (jobs + worker pool).

        Safe to call multiple times; the session stays usable for
        simulation, and the pool respawns on the next parallel verify.
        """
        for name in list(self._verify_jobs):
            self.cancel_verify(name)
        if self._verifier_pool is not None:
            self._verifier_pool.shutdown()

    def __enter__(self) -> "LiveSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # ------------------------------------------------------------------
    # Table I commands
    # ------------------------------------------------------------------

    def ld_lib(self, name: str, source: Optional[str] = None) -> List[str]:
        """``ldLib`` — register the stage objects found in a library.

        With ``source``, the text is merged into the session design
        first (new modules become available, duplicates are an edit).
        Returns the handles added.
        """
        if source is not None:
            merged = self.compiler.source.rstrip() + "\n\n" + source
            self.compiler.update_source(merged)
        return self._register_source_modules(name)

    def _register_source_modules(self, lib_name: str) -> List[str]:
        added = []
        known = {
            entry.payload for entry in self.objects.by_type(STAGE)
        }
        for module_name in sorted(self.compiler.design.modules):
            if module_name in known:
                continue
            handle = self.objects.fresh_handle(STAGE)
            self.objects.add(
                ObjectEntry(
                    handle=handle,
                    obj_type=STAGE,
                    code_path=f"{lib_name}.v#{module_name}",
                    object_path=f"<livesim>/{lib_name}#{module_name}",
                    payload=module_name,
                )
            )
            added.append(handle)
        return added

    def load_testbench(
        self,
        testbench: Testbench,
        factory: Optional[Tuple[str, Dict]] = None,
    ) -> str:
        """Register a testbench object; returns its handle.

        ``factory`` is an optional ``("pkg.module:callable", kwargs)``
        spec letting process-parallel consistency workers rebuild the
        testbench in a fresh interpreter.
        """
        handle = self.objects.fresh_handle(TESTBENCH)
        self.objects.add(
            ObjectEntry(
                handle=handle,
                obj_type=TESTBENCH,
                code_path=f"<python>#{type(testbench).__name__}",
                object_path=f"<livesim>/tb#{handle}",
                payload=testbench,
            )
        )
        self._testbenches[handle] = testbench
        if factory is not None:
            self._tb_specs[handle] = factory
        return handle

    def stage_handle_for(self, module_name: str) -> str:
        for entry in self.objects.by_type(STAGE):
            if entry.payload == module_name:
                return entry.handle
        raise SimulationError(f"no stage handle for module {module_name!r}")

    def inst_pipe(
        self,
        name: str,
        stage_handle: str,
        params: Optional[Dict[str, int]] = None,
    ) -> Pipe:
        """``instPipe`` — instantiate a pipeline from a stage handle."""
        entry = self.objects.get(stage_handle)
        if entry.obj_type != STAGE:
            raise SimulationError(f"{stage_handle!r} is not a stage handle")
        module = str(entry.payload)
        result = self.compiler.compile_top(module, params)
        pipe = Pipe(result.netlist.top, result.library, name=name)
        store = CheckpointStore(
            interval=self.checkpoint_interval,
            policy=self._gc_policy,
            enabled=self.checkpoints_enabled,
        )
        session = _PipeSession(
            name=name,
            handle=stage_handle,
            module=module,
            params=dict(params or {}),
            pipe=pipe,
            store=store,
            compile_result=result,
        )
        self._pipe_sessions[name] = session
        self.pipelines.add(name, stage_handle, pipe)
        self._register_stages(name, pipe)
        # Seed the gate baseline: findings present at instantiation are
        # accepted and never block a later edit.
        analysis = self.analyzer.analyze_netlist(
            result.netlist, fingerprint_of=self.compiler.parser.fingerprint
        )
        self._analysis_baseline[name] = list(analysis.diagnostics)
        return pipe

    def _register_stages(self, pipe_name: str, pipe: Pipe) -> None:
        for path, inst in pipe.top.walk(prefix=""):
            stage_path = path[len("top") :].lstrip(".")
            module_name = inst.code.name
            try:
                handle = self.stage_handle_for(module_name)
            except SimulationError:
                handle = module_name
            self.stages.register(pipe_name, stage_path, handle)

    def inst_stage(
        self, pipe_name: str, stage_name: str, stage_handle: str
    ) -> None:
        """``instStage`` — bind a session stage name to a hierarchy path.

        In this reproduction the pipeline's structure comes from the
        compiled RTL, so instStage registers an existing hierarchical
        stage under a session name rather than creating new hardware.
        """
        self.stages.resolve(pipe_name, stage_name)  # validates the path
        self.stages.register(pipe_name, stage_name, stage_handle)

    def copy_pipe(self, new_name: str, old_name: str) -> Pipe:
        """``copyPipe`` — duplicate a pipeline including its state."""
        old = self._session(old_name)
        clone = old.pipe.copy(name=new_name)
        store = CheckpointStore(
            interval=self.checkpoint_interval,
            policy=self._gc_policy,
            enabled=self.checkpoints_enabled,
        )
        session = _PipeSession(
            name=new_name,
            handle=old.handle,
            module=old.module,
            params=dict(old.params),
            pipe=clone,
            store=store,
            ops=list(old.ops),
            compile_result=old.compile_result,
        )
        self._pipe_sessions[new_name] = session
        self.pipelines.add(new_name, old.handle, clone)
        self._register_stages(new_name, clone)
        self._analysis_baseline[new_name] = list(
            self._analysis_baseline.get(old_name, [])
        )
        return clone

    def run(self, tb_handle: str, pipe_name: str, cycles: int) -> Dict[str, int]:
        """``run`` — apply a testbench for N cycles, recording history
        and taking checkpoints at the configured cadence."""
        session = self._session(pipe_name)
        testbench = self._testbench(tb_handle)
        pipe = session.pipe
        start_cycle = pipe.cycle
        testbench.rebase(start_cycle)
        target = start_cycle + cycles
        while pipe.cycle < target:
            chunk = min(session.store.interval, target - pipe.cycle)
            ran = testbench.run(pipe, chunk)
            session.store.maybe_take(pipe, self.version, len(session.ops))
            if ran == 0:
                break  # testbench stopped itself
        if pipe.cycle > start_cycle:
            session.ops.append(
                SessionOp(
                    tb_handle=tb_handle,
                    start_cycle=start_cycle,
                    end_cycle=pipe.cycle,
                )
            )
        return pipe.outputs()

    def chkp(self, pipe_name: str, path: Optional[str] = None):
        """``chkp`` — take a checkpoint now (optionally persist all)."""
        session = self._session(pipe_name)
        checkpoint = session.store.take(
            session.pipe, self.version, len(session.ops)
        )
        if path is not None:
            session.store.save(path)
        return checkpoint

    def ldch(self, pipe_name: str, checkpoint_or_path) -> None:
        """``ldch`` — load a checkpoint's state into a pipeline.

        History recorded after the checkpoint's cycle is truncated: the
        user is rewinding and will write new history from there.
        """
        session = self._session(pipe_name)
        # Rewinding rewrites the history the verifier is replaying.
        self.cancel_verify(pipe_name)
        candidates = []
        if isinstance(checkpoint_or_path, str):
            store = CheckpointStore(interval=session.store.interval)
            store.load(checkpoint_or_path)
            candidates = store.all()
            if not candidates:
                raise SimulationError("checkpoint file holds no checkpoints")
            checkpoint = candidates[-1]
        else:
            checkpoint = checkpoint_or_path
        transforms = self._transforms_between(checkpoint.version, self.version)
        session.pipe.restore_transformed(
            checkpoint.snapshot, lambda module: transforms.get(module)
        )
        session.pipe.cycle = checkpoint.cycle
        # Truncate history at the rewind point; an op spanning it is
        # trimmed (its earlier cycles really happened and still back
        # the surviving checkpoints).  Checkpoints from the abandoned
        # future go too — the user is about to write a new one.
        session.store.invalidate_after(checkpoint.cycle)
        # A file rewind also adopts the file's older checkpoints, so a
        # rehydrated session (whose own store starts empty) can still
        # time-travel to cycles before the restore point.
        if candidates:
            session.store.adopt(candidates, up_to=checkpoint.cycle)
        trimmed = []
        for op in session.ops:
            if op.end_cycle <= checkpoint.cycle:
                trimmed.append(op)
            elif op.start_cycle < checkpoint.cycle:
                trimmed.append(
                    SessionOp(
                        tb_handle=op.tb_handle,
                        start_cycle=op.start_cycle,
                        end_cycle=checkpoint.cycle,
                    )
                )
        session.ops = trimmed
        # Trace samples from the abandoned future describe a timeline
        # that no longer exists; subscribers get a rewind marker.
        if session.trace is not None:
            session.trace.truncate_from(checkpoint.cycle)

    def swap_stage(
        self, pipe_name: str, stage_path: str, reloader: Optional[HotReloader] = None
    ) -> SwapReport:
        """``swapStage`` — swap one stage subtree to the latest compile.

        Normally :meth:`apply_change` swaps whole pipes; this is the
        targeted variant for interface-compatible single-stage swaps.
        """
        session = self._session(pipe_name)
        result = self.compiler.compile_top(session.module, session.params)
        session.compile_result = result
        reloader = reloader or HotReloader()
        swap = reloader.swap_stage(session.pipe, stage_path, result.library)
        if session.trace is not None:
            session.trace.rebind(session.pipe)
        return swap

    # ------------------------------------------------------------------
    # The live loop
    # ------------------------------------------------------------------

    def apply_change(
        self,
        new_source: str,
        transforms: Optional[Dict[str, RegisterTransform]] = None,
        verify: "bool | str" = False,
        verify_workers: int = 1,
        override_gate: bool = False,
    ) -> ERDReport:
        """Execute one edit-run-debug iteration.

        1. LiveParser decides whether the edit changes behaviour.
        2. LiveCompiler recompiles only the affected specializations.
        3. Every pipe is hot reloaded (state migrated via register
           transforms — explicit ``transforms`` override the guess).
        4. Each pipe reloads the checkpoint nearest ``reload_distance``
           cycles before its stop point and replays history to where it
           was, producing the fast estimate the user sees.

        Checkpoint stores are retargeted to the new version.  With
        ``verify=True``, step 5 runs the paper's backend refinement
        inline: every pipe's checkpoint history is verified (and
        repaired on divergence), so the reported state is exact — at
        the cost of re-executing the history, which is what the fast
        estimate exists to hide.  ``verify_seconds`` is reported
        separately from the ERD total for exactly that reason.
        ``verify="background"`` instead kicks verification off on the
        persistent worker pool and returns immediately — the paper's
        actual §III-F behaviour; poll :meth:`verify_status` or
        :meth:`wait_for_verify` for the verdict.  Without either,
        verification stays explicit via :meth:`verify_consistency`.

        Between compile and swap the static analyzer
        (:mod:`repro.analyze`) runs over every pipe's new netlist —
        fingerprint-cached, so only edited modules are re-analyzed —
        and the session's :class:`~repro.analyze.GatePolicy` may refuse
        the swap when the edit introduces a new error-class finding
        (e.g. a combinational loop).  A refusal raises
        :class:`~repro.analyze.GateBlockedError` and rolls back exactly
        like a compile failure; ``override_gate=True`` forces the swap
        through and re-baselines the accepted findings.

        The change is transactional: if any pipe's recompile fails
        (syntax error, elaboration error, a deleted-but-instantiated
        module), the session's source and every pipe are left exactly
        as they were.
        """
        with obs.span("apply_change", version=self.version):
            return self._apply_change(
                new_source, transforms, verify, verify_workers,
                override_gate,
            )

    def _apply_change(
        self,
        new_source: str,
        transforms: Optional[Dict[str, RegisterTransform]],
        verify: "bool | str",
        verify_workers: int,
        override_gate: bool = False,
    ) -> ERDReport:
        old_source = self.compiler.source
        parse_result = self.compiler.update_source(new_source)
        report = ERDReport(
            behavioral=parse_result.behavioral,
            version=self.version,
            sanitize=self.compiler.sanitize,
            opt=self.compiler.opt,
        )
        report.parse_seconds = parse_result.parse_seconds
        obs.incr("live.apply_changes")
        if not parse_result.behavioral:
            obs.incr("live.non_behavioral_edits")
            return report

        new_version = self._next_version()
        report.version = new_version

        # Phase 1: compile every pipe's top before touching any state,
        # so a failure rolls back cleanly.
        version_transforms: Dict[str, RegisterTransform] = dict(transforms or {})
        compile_results: Dict[str, CompileResult] = {}
        analysis_results: Dict[str, AnalysisReport] = {}
        try:
            for name, session in self._pipe_sessions.items():
                started = time.perf_counter()
                with obs.span("compile", pipe=name):
                    compile_results[name] = self.compiler.compile_top(
                        session.module, session.params
                    )
                report.compile_seconds += time.perf_counter() - started
            # Static analysis + gate: still before any state is touched,
            # so a refused swap rolls back like a failed compile.
            started = time.perf_counter()
            self._analyze_and_gate(
                compile_results, analysis_results, report, override_gate
            )
            report.analyze_seconds = time.perf_counter() - started
        except HDLError:
            obs.incr("live.rolled_back_edits")
            self.compiler.update_source(old_source)
            raise

        # The edit supersedes any in-flight verification: its verdict
        # would describe the *old* design, and phase 2 is about to
        # retarget the very checkpoints it is reading.
        for name in self._pipe_sessions:
            self.cancel_verify(name)

        # Phase 2: swap, reload, replay.  Sanitizer findings raised by
        # the replay (e.g. an uninit read of state this very edit
        # introduced) are collected from this high-water mark.
        san_mark = len(self.sanitize_runtime.findings)
        for name, session in self._pipe_sessions.items():
            old_result = session.compile_result
            result = compile_results[name]
            report.recompiled_keys.extend(result.report.recompiled_keys)
            report.reused_keys.extend(result.report.reused_keys)
            if result.report.sanitize:
                report.sanitized_recompiled_keys.extend(
                    result.report.recompiled_keys
                )
                report.sanitized_reused_keys.extend(
                    result.report.reused_keys
                )
            for pass_name, keys in result.report.pass_computed.items():
                report.pass_computed_keys.setdefault(
                    pass_name, []
                ).extend(keys)
            for pass_name, keys in result.report.pass_reused.items():
                report.pass_reused_keys.setdefault(
                    pass_name, []
                ).extend(keys)

            if old_result is not None and transforms is None:
                self._guess_version_transforms(
                    old_result, result, version_transforms
                )
            session.compile_result = result

            reloader = HotReloader(version_transforms)
            stop_cycle = session.pipe.cycle
            started = time.perf_counter()
            with obs.span("swap", pipe=name):
                swap = reloader.swap_pipe(session.pipe, result.library)
            report.swap_seconds += time.perf_counter() - started
            report.swapped_instances += swap.swapped_instances
            obs.incr("live.swapped_instances", swap.swapped_instances)

            # The swap may have renamed, resized, or removed watched
            # signals: re-resolve every probe by name.  Vanished
            # signals are marked missing — never fatal.
            if session.trace is not None:
                session.trace.rebind(session.pipe)

            started = time.perf_counter()
            with obs.span("reload", pipe=name):
                checkpoint = session.store.reload_candidate(
                    stop_cycle, self.reload_distance
                )
                self._retarget_store(
                    session, result, version_transforms, new_version
                )
                if checkpoint is not None:
                    session.pipe.restore_transformed(
                        checkpoint.snapshot, lambda module: None
                    )
                    session.pipe.cycle = checkpoint.cycle
                    report.checkpoint_cycle = checkpoint.cycle
                    obs.incr("live.checkpoint_reloads")
                else:
                    session.pipe.reset_state()
                    obs.incr("live.reset_reloads")
                # Samples past the restore point describe the old
                # design's timeline; the replay below re-captures the
                # window under the new design (subscribers see a
                # rewind marker, then the fresh values).
                if session.trace is not None:
                    session.trace.truncate_from(session.pipe.cycle)
            report.reload_seconds += time.perf_counter() - started

            started = time.perf_counter()
            with obs.span("replay", pipe=name, stop_cycle=stop_cycle):
                replayed = replay_ops(
                    session.pipe, session.ops, stop_cycle, self._testbench
                )
            report.replay_seconds += time.perf_counter() - started
            report.cycles_replayed += replayed
            obs.incr("live.cycles_replayed", replayed)
            report.pipes_updated.append(name)

        self.history.add_version(
            new_version, self.version, version_transforms
        )
        self.version = new_version

        # The swap landed: its findings become the accepted baseline
        # (including any the user forced through with override_gate).
        for name, analysis in analysis_results.items():
            self._analysis_baseline[name] = list(analysis.diagnostics)

        # Sanitizer findings surfaced during the replay join the static
        # diagnostics — one unified stream — and enter the baselines so
        # the next edit's gate doesn't re-report them as new.
        fresh = self.sanitize_runtime.findings[san_mark:]
        if fresh:
            seen = {(d.identity(), d.line) for d in report.diagnostics}
            for diag in fresh:
                if (diag.identity(), diag.line) not in seen:
                    seen.add((diag.identity(), diag.line))
                    report.diagnostics.append(diag)
                    report.new_findings.append(diag)
            report.diagnostics = sort_diagnostics(report.diagnostics)
            for name in self._analysis_baseline:
                self._analysis_baseline[name].extend(fresh)

        if verify == "background":
            # Paper §III-F: the user keeps simulating while stored
            # checkpoints are re-verified.  Kick the jobs off and
            # return immediately; verdicts land via verify_status().
            for name in report.pipes_updated:
                self.verify_background(name, workers=verify_workers)
                report.background_verifies.append(name)
        elif verify:
            started = time.perf_counter()
            with obs.span("verify", workers=verify_workers):
                for name in report.pipes_updated:
                    report.consistency[name] = self.verify_consistency(
                        name, workers=verify_workers, repair=True
                    )
            report.verify_seconds = time.perf_counter() - started
        return report

    def _guess_version_transforms(
        self,
        old_result: CompileResult,
        new_result: CompileResult,
        out: Dict[str, RegisterTransform],
    ) -> None:
        for key, new_mod in new_result.library.items():
            old_mod = old_result.library.get(key)
            if old_mod is None or old_mod is new_mod:
                continue
            if new_mod.name in out:
                continue
            guessed = guess_transforms(old_mod.reg_widths, new_mod.reg_widths)
            if not guessed.is_identity():
                out[new_mod.name] = guessed

    def _retarget_store(
        self,
        session: _PipeSession,
        result: CompileResult,
        transforms: Dict[str, RegisterTransform],
        new_version: str,
    ) -> None:
        """Translate stored checkpoints into the new version namespace."""
        module_name_of = {
            key: ir.name for key, ir in result.netlist.modules.items()
        }
        for checkpoint in session.store.all():
            if transforms:
                checkpoint.snapshot.state = translate_snapshot(
                    checkpoint.snapshot.state, module_name_of, transforms
                )
            checkpoint.version = new_version

    # ------------------------------------------------------------------
    # Static analysis (repro.analyze)
    # ------------------------------------------------------------------

    def _analyze_and_gate(
        self,
        compile_results: Dict[str, CompileResult],
        analysis_results: Dict[str, AnalysisReport],
        report: ERDReport,
        override_gate: bool,
    ) -> None:
        """Analyze every pipe's new netlist and apply the gate policy.

        Raises :class:`~repro.analyze.GateBlockedError` (an
        :class:`HDLError`) when a new blocking finding appears and
        ``override_gate`` is False; the caller's rollback handles it.
        """
        seen: set = set()
        for name in self._pipe_sessions:
            analysis = self.analyzer.analyze_netlist(
                compile_results[name].netlist,
                fingerprint_of=self.compiler.parser.fingerprint,
            )
            analysis_results[name] = analysis
            report.analyzed_keys.extend(analysis.analyzed_keys)
            report.analysis_reused_keys.extend(analysis.reused_keys)
            for diag in analysis.diagnostics:
                if (diag.identity(), diag.line) not in seen:
                    seen.add((diag.identity(), diag.line))
                    report.diagnostics.append(diag)
            decision = evaluate_gate(
                self.gate_policy,
                self._analysis_baseline.get(name, []),
                analysis.diagnostics,
                override=override_gate,
            )
            report.new_findings.extend(decision.new_findings)
            if decision.blocking and decision.overridden:
                report.gate_overridden = True
                obs.incr("analyze.gate_overrides")
            if not decision.allowed:
                obs.incr("analyze.gate_blocks")
                decision.raise_if_blocked()
        report.diagnostics = sort_diagnostics(report.diagnostics)

    def lint(self, pipe_name: Optional[str] = None) -> AnalysisReport:
        """Run the static analyzer over the current design.

        Analyzes one pipe's netlist, or every instantiated pipe when
        ``pipe_name`` is None.  Results come from the analyzer's
        fingerprint cache, so an unchanged design re-analyzes nothing
        (``reused_keys`` says so).
        """
        names = (
            [pipe_name] if pipe_name is not None
            else list(self._pipe_sessions)
        )
        started = time.perf_counter()
        merged = AnalysisReport()
        seen: set = set()
        for name in names:
            session = self._session(name)
            result = session.compile_result
            if result is None:
                raise SimulationError(f"pipe {name!r} was never compiled")
            analysis = self.analyzer.analyze_netlist(
                result.netlist,
                fingerprint_of=self.compiler.parser.fingerprint,
            )
            merged.top = merged.top or analysis.top
            merged.analyzed_keys.extend(analysis.analyzed_keys)
            merged.reused_keys.extend(analysis.reused_keys)
            for diag in analysis.diagnostics:
                if (diag.identity(), diag.line) not in seen:
                    seen.add((diag.identity(), diag.line))
                    merged.diagnostics.append(diag)
        # Runtime sanitizer findings ride the same surface as the
        # static checks — one diagnostics stream for the user.
        for diag in self.sanitize_runtime.findings:
            if (diag.identity(), diag.line) not in seen:
                seen.add((diag.identity(), diag.line))
                merged.diagnostics.append(diag)
        merged.diagnostics = sort_diagnostics(merged.diagnostics)
        merged.seconds = time.perf_counter() - started
        return merged

    # ------------------------------------------------------------------
    # Runtime sanitizer (repro.sanitize)
    # ------------------------------------------------------------------

    def set_sanitize(self, mode: str) -> Dict[str, object]:
        """Switch the sanitizer mode for this session.

        ``report`` <-> ``trap`` is a pure runtime flip.  Crossing the
        ``off`` boundary recompiles every pipe with (or without)
        instrumentation — a cache hit after the first toggle, since the
        sanitize flag is part of the compile cache key — and hot swaps
        the new library in, preserving all state.
        """
        if mode not in SANITIZE_MODES:
            raise SimulationError(
                f"unknown sanitize mode {mode!r}; expected one of "
                f"{SANITIZE_MODES}"
            )
        previous = self._sanitize_mode
        self.sanitize_runtime.mode = mode
        self._sanitize_mode = mode
        want = mode != "off"
        recompiled: List[str] = []
        swapped: List[str] = []
        if want != self.compiler.sanitize:
            with obs.span("sanitize.toggle", mode=mode):
                self.compiler.set_sanitize(
                    want, runtime=self.sanitize_runtime
                )
                reloader = HotReloader()
                for name, session in self._pipe_sessions.items():
                    result = self.compiler.compile_top(
                        session.module, session.params
                    )
                    recompiled.extend(result.report.recompiled_keys)
                    reloader.swap_pipe(session.pipe, result.library)
                    session.compile_result = result
                    if session.trace is not None:
                        session.trace.rebind(session.pipe)
                    swapped.append(name)
        obs.incr("sanitize.toggles")
        return {
            "mode": mode,
            "previous": previous,
            "recompiled_keys": recompiled,
            "swapped_pipes": swapped,
        }

    @property
    def sanitize_mode(self) -> str:
        return self._sanitize_mode

    def sanitize_status(self) -> Dict[str, object]:
        """Mode, per-check hit counters, and finding count."""
        status = self.sanitize_runtime.status()
        status["instrumented"] = self.compiler.sanitize
        return status

    # ------------------------------------------------------------------
    # Optimization level (repro.passes)
    # ------------------------------------------------------------------

    def set_opt(self, level: str) -> Dict[str, object]:
        """Switch the optimization level for this session.

        Changing level recompiles every pipe through the pass pipeline
        at the new level — a cache hit after the first toggle, since
        the opt level is part of the compile cache key — and hot swaps
        the new library in, preserving all state.
        """
        if level not in OPT_LEVELS:
            raise SimulationError(
                f"unknown opt level {level!r}; expected one of "
                f"{OPT_LEVELS}"
            )
        previous = self.compiler.opt
        recompiled: List[str] = []
        swapped: List[str] = []
        if level != previous:
            with obs.span("opt.toggle", level=level):
                self.compiler.set_opt(level)
                reloader = HotReloader()
                for name, session in self._pipe_sessions.items():
                    result = self.compiler.compile_top(
                        session.module, session.params
                    )
                    recompiled.extend(result.report.recompiled_keys)
                    reloader.swap_pipe(session.pipe, result.library)
                    session.compile_result = result
                    if session.trace is not None:
                        session.trace.rebind(session.pipe)
                    swapped.append(name)
        obs.incr("opt.toggles")
        return {
            "level": level,
            "previous": previous,
            "recompiled_keys": recompiled,
            "swapped_pipes": swapped,
        }

    @property
    def opt(self) -> str:
        return self.compiler.opt

    def opt_status(self) -> Dict[str, object]:
        """Current level and the pipeline's pass order."""
        return {
            "level": self.compiler.opt,
            "levels": list(OPT_LEVELS),
            "passes": self.compiler.pipeline.order,
        }

    # ------------------------------------------------------------------
    # Live trace (repro.trace)
    # ------------------------------------------------------------------

    def trace_buffer(
        self, pipe_name: str, create: bool = False
    ) -> Optional[TraceBuffer]:
        """The pipe's attached trace buffer (created on demand with
        ``create=True``); None when the pipe has never been watched."""
        session = self._session(pipe_name)
        if session.trace is None and create:
            session.trace = TraceBuffer(capacity=self.trace_capacity)
            session.pipe.attach_trace(session.trace)
        return session.trace

    def watch(self, pipe_name: str, signal: str) -> Dict[str, object]:
        """``watch`` — start capturing ``signal`` every cycle.

        Idempotent: watching an already-watched signal returns its
        current probe info, so journal replay and migration re-arms
        are harmless.  Raises when the signal does not exist in the
        *current* design (later reloads may mark it missing instead).
        """
        session = self._session(pipe_name)
        buffer = self.trace_buffer(pipe_name, create=True)
        probe = buffer.watch(session.pipe, signal)
        obs.incr("trace.watches")
        return {
            "pipe": pipe_name,
            "signal": probe.name,
            "width": probe.width,
            "missing": probe.missing,
            "capacity": buffer.capacity,
        }

    def unwatch(self, pipe_name: str, signal: str) -> Dict[str, object]:
        """``unwatch`` — drop the probe, its history, and any
        subscriptions narrowed to exactly this signal.  Session-wide:
        every client watching the signal stops receiving it."""
        buffer = self.trace_buffer(pipe_name)
        removed = buffer.unwatch(signal) if buffer is not None else False
        return {"pipe": pipe_name, "signal": signal, "removed": removed}

    def trace_status(self, pipe_name: str) -> Dict[str, object]:
        """Probe inventory + drop counters for one pipe."""
        buffer = self.trace_buffer(pipe_name)
        if buffer is None:
            return {
                "pipe": pipe_name, "capacity": self.trace_capacity,
                "cycles_dropped": 0, "events_dropped": 0,
                "subscriptions": 0, "probes": [],
            }
        status = buffer.status()
        status["pipe"] = pipe_name
        return status

    def trace_read(
        self,
        pipe_name: str,
        signal: str,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> Dict[str, object]:
        """``trace`` — read recorded samples for one watched signal."""
        buffer = self.trace_buffer(pipe_name)
        if buffer is None or not buffer.has_probe(signal):
            raise SimulationError(
                f"signal {signal!r} is not watched on pipe {pipe_name!r}"
            )
        samples = buffer.window(signal, start, end)
        return {
            "pipe": pipe_name,
            "signal": signal,
            "start": start,
            "end": end,
            "samples": samples,
            "cycles_dropped": buffer.cycles_dropped,
        }

    def replay_window(
        self,
        pipe_name: str,
        start: int,
        end: int,
        signals: Optional[List[str]] = None,
    ) -> Dict[str, object]:
        """``replay`` — time-travel: re-simulate ``[start, end)`` on a
        scratch pipe and return the captured samples.

        Restores the nearest checkpoint at-or-before ``start`` (or
        power-on reset when none), replays the recorded op history
        forward with tracing on, and never disturbs the live pipe.
        Simulation is deterministic, so the returned values are
        bit-identical to what live capture saw for those cycles.
        ``signals`` defaults to the pipe's currently watched set.
        """
        session = self._session(pipe_name)
        if end <= start or start < 0:
            raise SimulationError(
                f"bad replay window [{start}, {end})"
            )
        if end > session.pipe.cycle:
            raise SimulationError(
                f"replay window ends at {end} but history stops at "
                f"cycle {session.pipe.cycle}"
            )
        result = session.compile_result
        if result is None:
            raise SimulationError(f"pipe {pipe_name!r} was never compiled")
        if signals is None:
            signals = (
                session.trace.names() if session.trace is not None else []
            )
        if not signals:
            raise SimulationError(
                "nothing to replay: no watched signals and none given"
            )
        with obs.span("trace.replay", pipe=pipe_name, start=start,
                      end=end):
            scratch = Pipe(
                result.netlist.top, result.library,
                name=f"{pipe_name}_replay",
            )
            base = session.store.nearest_before(start)
            if base is not None:
                transforms = self._transforms_between(
                    base.version, self.version
                )
                scratch.restore_transformed(
                    base.snapshot, lambda module: transforms.get(module)
                )
                scratch.cycle = base.cycle
            buffer = TraceBuffer(capacity=None)
            missing: List[str] = []
            for name in signals:
                try:
                    buffer.watch(scratch, name)
                except SimulationError:
                    missing.append(name)
            if not buffer.names():
                raise SimulationError(
                    "no replayable signals: "
                    + ", ".join(repr(s) for s in missing)
                )
            scratch.attach_trace(buffer)
            replayed = replay_ops(
                scratch, session.ops, end, self._testbench
            )
            obs.incr("trace.replays")
        return {
            "pipe": pipe_name,
            "start": start,
            "end": end,
            "base_cycle": base.cycle if base is not None else 0,
            "cycles_replayed": replayed,
            "missing": missing,
            "signals": {
                name: buffer.window(name, start, end)
                for name in buffer.names()
            },
        }

    # ------------------------------------------------------------------
    # Consistency verification (§III-F)
    # ------------------------------------------------------------------

    def verify_consistency(
        self,
        pipe_name: str,
        workers: int = 1,
        repair: bool = False,
    ) -> ConsistencyReport:
        """Verify checkpoint deltas under the current design.

        With ``repair=True`` and a divergence found, checkpoints after
        the divergence point are invalidated and regenerated by
        replaying from the last consistent checkpoint, and the pipe's
        visible state is re-established (the paper's "update the final
        results as necessary").
        """
        session = self._session(pipe_name)
        result = session.compile_result
        if result is None:
            raise SimulationError(f"pipe {pipe_name!r} was never compiled")
        checker = ConsistencyChecker(
            build_pipe=lambda: Pipe(result.netlist.top, result.library),
            tb_lookup=self._testbench,
            transform_for=lambda module: None,
        )
        context = None
        pool = None
        if workers > 1:
            context = self._worker_context(session)
            if context is None:
                workers = 1  # no rebuild recipe: fall back to serial
            else:
                pool = self._ensure_verifier_pool(workers)
        report = checker.verify(
            session.store.all(), session.ops, workers=workers,
            worker_context=context, pool=pool,
        )
        if repair and not report.all_consistent:
            self._repair(session, report)
        return report

    def verify_background(
        self,
        pipe_name: str,
        workers: int = 2,
        on_complete=None,
    ) -> VerifyJob:
        """Verify checkpoint deltas without blocking the session.

        Segments run on the persistent worker pool; session commands
        keep executing while results stream in.  When the job finishes,
        a divergence invalidates checkpoints past ``divergence_cycle``
        exactly like the blocking path — the pipe's *visible* state is
        left alone (the user may be mid-run); re-establish it with
        ``verify_consistency(..., repair=True)`` if needed.
        ``on_complete(report)`` fires on the collector thread.

        A background verify for a pipe supersedes that pipe's previous
        in-flight job, and any behavioural edit supersedes all jobs.
        """
        session = self._session(pipe_name)
        if session.compile_result is None:
            raise SimulationError(f"pipe {pipe_name!r} was never compiled")
        context = self._worker_context(session)
        if context is None:
            raise SimulationError(
                "background verification needs testbench factory specs; "
                "pass factory= to load_testbench"
            )
        self.cancel_verify(pipe_name)
        pool = self._ensure_verifier_pool(workers)
        segments = ConsistencyChecker.make_segments(session.store.all())
        verify_version = self.version

        def _done(job: VerifyJob, report: ConsistencyReport) -> None:
            self._on_verify_complete(pipe_name, verify_version, job, report)
            if on_complete is not None:
                on_complete(report)

        job = BackgroundVerifier(pool).start(
            segments,
            session.ops,
            context,
            on_complete=_done,
            label=f"verify-{pipe_name}",
        )
        self._verify_jobs[pipe_name] = job
        return job

    def _on_verify_complete(
        self,
        pipe_name: str,
        verify_version: str,
        job: VerifyJob,
        report: ConsistencyReport,
    ) -> None:
        self._verify_reports[pipe_name] = report
        if job.superseded or self.version != verify_version:
            return  # verdict describes a design that is no longer live
        if report.all_consistent:
            return
        session = self._pipe_sessions.get(pipe_name)
        if session is None:
            return
        divergence = report.divergence_cycle or 0
        session.store.invalidate_after(
            divergence - 1 if divergence > 0 else -1
        )
        obs.incr("consistency.background_invalidations")

    def verify_status(self, pipe_name: str) -> VerifyStatus:
        """Verdict / progress of the pipe's latest background verify."""
        self._session(pipe_name)  # validate the name
        job = self._verify_jobs.get(pipe_name)
        if job is not None:
            return job.status()
        return VerifyStatus(state="idle")

    def wait_for_verify(
        self, pipe_name: str, timeout: Optional[float] = None
    ) -> Optional[ConsistencyReport]:
        """Block until the pipe's background verify lands (None on
        timeout or when none was ever started)."""
        job = self._verify_jobs.get(pipe_name)
        if job is None:
            return self._verify_reports.get(pipe_name)
        return job.result(timeout)

    def cancel_verify(self, pipe_name: str) -> int:
        """Cancel the pipe's in-flight background verify, if any.
        Returns the number of segments revoked before they ran."""
        job = self._verify_jobs.get(pipe_name)
        if job is None:
            return 0
        return job.cancel()

    def reset_verifier_pool(self) -> None:
        """Tear down the persistent pool (workers exit, caches drop).
        The next parallel verify spawns a fresh one."""
        if self._verifier_pool is not None:
            self._verifier_pool.shutdown()
            self._verifier_pool = None

    def _ensure_verifier_pool(self, workers: int) -> VerifierPool:
        if self._verifier_pool is None:
            self._verifier_pool = VerifierPool(workers)
        elif workers > self._verifier_pool.workers:
            # Grow to the widest request; never shrink implicitly — a
            # resize kills warm workers and their design caches.
            self._verifier_pool.resize(workers)
        return self._verifier_pool

    def _worker_context(self, session: _PipeSession) -> Optional[WorkerContext]:
        """Rebuild recipe for worker processes; None when a testbench
        in the session history has no factory spec."""
        missing = [
            op.tb_handle
            for op in session.ops
            if op.tb_handle not in self._tb_specs
        ]
        if missing:
            return None
        return WorkerContext(
            source=self.compiler.source,
            top=session.module,
            params=session.params,
            mux_style=self._mux_style,
            tb_specs=dict(self._tb_specs),
        )

    def _repair(self, session: _PipeSession, report: ConsistencyReport) -> None:
        divergence = report.divergence_cycle or 0
        stop_cycle = session.pipe.cycle
        session.store.invalidate_after(
            divergence - 1 if divergence > 0 else -1
        )
        base = session.store.nearest_before(stop_cycle)
        if base is not None:
            session.pipe.restore_transformed(
                base.snapshot, lambda module: None
            )
            session.pipe.cycle = base.cycle
        else:
            session.pipe.reset_state()
        if session.trace is not None:
            session.trace.truncate_from(session.pipe.cycle)
        replay_ops(
            session.pipe,
            session.ops,
            stop_cycle,
            self._testbench,
            on_cycle=lambda pipe: session.store.maybe_take(
                pipe, self.version, len(session.ops)
            ),
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def pipe(self, name: str) -> Pipe:
        return self._session(name).pipe

    def peek(self, pipe_name: str) -> Dict[str, int]:
        """Current output values without advancing the simulation."""
        return self._session(pipe_name).pipe.outputs()

    def checkpoints(self, pipe_name: str):
        return self._session(pipe_name).store.all()

    def store(self, pipe_name: str) -> CheckpointStore:
        return self._session(pipe_name).store

    def ops(self, pipe_name: str) -> List[SessionOp]:
        return list(self._session(pipe_name).ops)

    def _session(self, name: str) -> _PipeSession:
        session = self._pipe_sessions.get(name)
        if session is None:
            raise SimulationError(f"unknown pipeline {name!r}")
        return session

    def _testbench(self, handle: str) -> Testbench:
        testbench = self._testbenches.get(handle)
        if testbench is None:
            raise SimulationError(f"unknown testbench handle {handle!r}")
        return testbench

    def _transforms_between(
        self, old_version: str, new_version: str
    ) -> Dict[str, RegisterTransform]:
        if old_version == new_version:
            return {}
        transforms: Dict[str, RegisterTransform] = {}
        for version in self.history.path(old_version, new_version):
            node_transforms = {
                module: self.history.transform_for(version, module)
                for module in self._modules_with_transforms(version)
            }
            for module, transform in node_transforms.items():
                base = transforms.get(module, RegisterTransform())
                transforms[module] = base.compose(transform)
        return transforms

    def _modules_with_transforms(self, version: str) -> List[str]:
        node = self.history._node(version)  # session is a friend class
        return list(node.transforms)

    def _next_version(self) -> str:
        self._version_counter += 1
        major = self.history.root.split(".")[0]
        return f"{major}.{self._version_counter}"
