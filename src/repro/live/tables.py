"""LiveSim's internal bookkeeping tables (paper Tables II-IV).

* :class:`ObjectLibraryTable` — every stage/testbench object the
  session knows about, with its source path and object path.
* :class:`PipelineTable` — name -> instantiated pipeline objects.
* :class:`StageTable` — (pipe, stage-name) -> stage instance pointers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..hdl.errors import SimulationError
from ..sim.pipeline import Pipe
from ..sim.stage import StageInst

STAGE = "Stage"
PIPE = "Pipe"
TESTBENCH = "Testbench"


@dataclass
class ObjectEntry:
    """One row of the Object Library Table (paper Table II)."""

    handle: str
    obj_type: str  # STAGE | PIPE | TESTBENCH
    code_path: str  # e.g. "design.v#adder"
    object_path: str  # e.g. "<livesim>/libdesign#adder#(W=8)"
    payload: object = None  # module name, spec key, or testbench object


class ObjectLibraryTable:
    """Registry of loadable objects, keyed by handle."""

    def __init__(self) -> None:
        self._entries: Dict[str, ObjectEntry] = {}
        self._counter: Dict[str, int] = {}

    def fresh_handle(self, obj_type: str) -> str:
        prefix = {STAGE: "stage", PIPE: "pipe", TESTBENCH: "tb"}[obj_type]
        index = self._counter.get(prefix, 0)
        self._counter[prefix] = index + 1
        return f"{prefix}{index}"

    def add(self, entry: ObjectEntry) -> None:
        if entry.handle in self._entries:
            raise SimulationError(f"duplicate object handle {entry.handle!r}")
        self._entries[entry.handle] = entry

    def get(self, handle: str) -> ObjectEntry:
        entry = self._entries.get(handle)
        if entry is None:
            raise SimulationError(f"unknown object handle {handle!r}")
        return entry

    def __contains__(self, handle: str) -> bool:
        return handle in self._entries

    def __iter__(self) -> Iterator[ObjectEntry]:
        return iter(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def by_type(self, obj_type: str) -> List[ObjectEntry]:
        return [e for e in self._entries.values() if e.obj_type == obj_type]

    def rows(self) -> List[Tuple[str, str, str, str]]:
        """Formatted rows mirroring the paper's Table II layout."""
        return [
            (e.handle, e.obj_type, e.code_path, e.object_path)
            for e in self._entries.values()
        ]


class PipelineTable:
    """Name -> live pipeline objects (paper Table III)."""

    def __init__(self) -> None:
        self._pipes: Dict[str, Tuple[str, Pipe]] = {}

    def add(self, name: str, handle: str, pipe: Pipe) -> None:
        if name in self._pipes:
            raise SimulationError(f"pipeline name {name!r} already in use")
        self._pipes[name] = (handle, pipe)

    def get(self, name: str) -> Pipe:
        try:
            return self._pipes[name][1]
        except KeyError:
            raise SimulationError(f"unknown pipeline {name!r}") from None

    def handle_of(self, name: str) -> str:
        try:
            return self._pipes[name][0]
        except KeyError:
            raise SimulationError(f"unknown pipeline {name!r}") from None

    def remove(self, name: str) -> None:
        self._pipes.pop(name, None)

    def names(self) -> List[str]:
        return list(self._pipes)

    def __contains__(self, name: str) -> bool:
        return name in self._pipes

    def __len__(self) -> int:
        return len(self._pipes)

    def items(self) -> Iterator[Tuple[str, Pipe]]:
        for name, (_, pipe) in self._pipes.items():
            yield name, pipe

    def rows(self) -> List[Tuple[str, str, str]]:
        """(name, handle, pointer) rows mirroring Table III."""
        return [
            (name, handle, hex(id(pipe)))
            for name, (handle, pipe) in self._pipes.items()
        ]


class StageTable:
    """(pipe name, stage name) -> stage instances (paper Table IV).

    Stage names are hierarchical instance paths within the pipe's top
    module ("" denotes the top stage itself).
    """

    def __init__(self, pipelines: PipelineTable):
        self._pipelines = pipelines
        self._stages: Dict[Tuple[str, str], str] = {}  # -> handle

    def register(self, pipe_name: str, stage_name: str, handle: str) -> None:
        self._stages[(pipe_name, stage_name)] = handle

    def resolve(self, pipe_name: str, stage_name: str) -> StageInst:
        pipe = self._pipelines.get(pipe_name)
        return pipe.find(stage_name)

    def handle_of(self, pipe_name: str, stage_name: str) -> Optional[str]:
        return self._stages.get((pipe_name, stage_name))

    def forget_pipe(self, pipe_name: str) -> None:
        for key in [k for k in self._stages if k[0] == pipe_name]:
            del self._stages[key]

    def rows(self) -> List[Tuple[str, str, str, str]]:
        """(pipe, stage, handle, pointer) rows mirroring Table IV."""
        rows = []
        for (pipe_name, stage_name), handle in self._stages.items():
            try:
                inst = self.resolve(pipe_name, stage_name)
                pointer = hex(id(inst))
            except SimulationError:
                pointer = "<stale>"
            rows.append((pipe_name, stage_name, handle, pointer))
        return rows
