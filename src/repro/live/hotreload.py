"""Hot reload: swap compiled modules into a running pipeline.

The paper (§V-B) describes the mechanics: "LiveSim calls a method from
the library which creates the new stage object, and copies the register
values from the old one to the new one (taking into account any which
have been added, removed, or renamed)."

This module does exactly that over the :class:`StageInst` tree.  The
swap is in-place: parents keep their child list positions, and because
every instance of a module shares one code object, patching a module
used 256 times costs one compile plus 256 cheap state copies — the
reason Fig. 8 stays flat as the mesh grows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Set

from ..codegen.pygen import CompiledModule
from ..hdl.errors import SimulationError
from ..sim.pipeline import Pipe
from ..sim.stage import StageInst
from .transform import RegisterTransform, guess_transforms


@dataclass
class SwapReport:
    """What one hot reload did (the Fig. 8 measurement unit)."""

    swapped_instances: int = 0
    rebuilt_instances: int = 0
    kept_instances: int = 0
    registers_migrated: int = 0
    memories_migrated: int = 0
    modules_changed: Set[str] = field(default_factory=set)
    seconds: float = 0.0


class HotReloader:
    """Swaps a new compiled library into running pipes.

    ``transforms`` maps module *name* -> explicit
    :class:`RegisterTransform`; modules without an entry get a
    best-guess transform derived from the old/new register tables
    (paper §III-E).
    """

    def __init__(
        self, transforms: Optional[Mapping[str, RegisterTransform]] = None
    ):
        self._transforms = dict(transforms or {})

    def set_transform(self, module: str, transform: RegisterTransform) -> None:
        self._transforms[module] = transform

    # -- public API -----------------------------------------------------------

    def swap_pipe(
        self, pipe: Pipe, new_library: Dict[str, CompiledModule]
    ) -> SwapReport:
        """Patch ``pipe`` in place so it runs ``new_library``.

        The pipe's top specialization key must still exist in the new
        library (renaming the top module is a rebuild, not a reload).
        """
        started = time.perf_counter()
        report = SwapReport()
        top_key = pipe.top.code.key
        if top_key not in new_library:
            raise SimulationError(
                f"new library has no module for top key {top_key!r}"
            )
        self._swap_inst(pipe.top, top_key, new_library, report)
        pipe.library = dict(new_library)
        pipe.refresh_library_traits()
        pipe._last_outputs = None
        report.seconds = time.perf_counter() - started
        return report

    def swap_stage(
        self,
        pipe: Pipe,
        stage_path: str,
        new_library: Dict[str, CompiledModule],
    ) -> SwapReport:
        """Swap only the subtree at ``stage_path`` (Table I swapStage).

        The new stage must be interface-compatible with the old one,
        because the parent's compiled code is not being replaced.
        """
        started = time.perf_counter()
        inst = pipe.find(stage_path)
        new_code = new_library.get(inst.code.key)
        if new_code is None:
            raise SimulationError(
                f"new library has no module for key {inst.code.key!r}"
            )
        if new_code.interface_fp != inst.code.interface_fp:
            raise SimulationError(
                f"stage {stage_path!r} interface changed; the parent must be "
                "recompiled — use swap_pipe instead"
            )
        report = SwapReport()
        self._swap_inst(inst, inst.code.key, new_library, report)
        pipe.library.update(new_library)
        pipe.refresh_library_traits()
        pipe._last_outputs = None
        report.seconds = time.perf_counter() - started
        return report

    # -- recursive swap -----------------------------------------------------------

    def _swap_inst(
        self,
        inst: StageInst,
        new_key: str,
        library: Dict[str, CompiledModule],
        report: SwapReport,
    ) -> None:
        new_code = library[new_key]
        old_code = inst.code
        unchanged = new_code is old_code or (
            new_code.source_hash == old_code.source_hash
            # Identical generated code can still reference different
            # child specializations (a parameter-only change in an
            # instantiation): that is a structural change, not a keep.
            and new_code.child_insts == old_code.child_insts
        )
        if unchanged:
            # This module did not change (identical object from the
            # compile cache, or a byte-identical fresh compile): rebind
            # the pointer, keep the state.  A *descendant* may still
            # have changed (a body-only change deeper down reuses every
            # ancestor's code object), so keep walking.
            inst.code = new_code
            report.kept_instances += 1
            for child, (_, child_key) in zip(inst.children, new_code.child_insts):
                self._swap_inst(child, child_key, library, report)
            return

        self._migrate_state(inst, old_code, new_code, report)
        report.modules_changed.add(new_code.name)
        report.swapped_instances += 1

        # Reconcile children against the new module's instance list.
        old_children = {child.name: child for child in inst.children}
        new_children = []
        for child_name, child_key in new_code.child_insts:
            old_child = old_children.get(child_name)
            if old_child is not None and self._reusable(old_child, child_key,
                                                        library):
                self._swap_inst(old_child, child_key, library, report)
                new_children.append(old_child)
            else:
                new_children.append(
                    StageInst.build(child_key, library, name=child_name)
                )
                report.rebuilt_instances += 1
        inst.children = new_children
        inst.code = new_code

    @staticmethod
    def _reusable(
        old_child: StageInst, child_key: str, library: Dict[str, CompiledModule]
    ) -> bool:
        new_child_code = library.get(child_key)
        if new_child_code is None:
            return False
        # Reusable when the child is the same module (state can be
        # migrated) — spec key equality covers name + parameters.
        return old_child.code.key == child_key

    def _migrate_state(
        self,
        inst: StageInst,
        old_code: CompiledModule,
        new_code: CompiledModule,
        report: SwapReport,
    ) -> None:
        transform = self._transforms.get(new_code.name)
        if transform is None:
            transform = guess_transforms(old_code.reg_widths, new_code.reg_widths)
        old_values = {
            name: inst.state[slot] for name, slot in old_code.reg_slots.items()
        }
        migrated = transform.apply(old_values)

        new_state = new_code.make_state()
        num_regs = new_code.num_regs
        for name, slot in new_code.reg_slots.items():
            if name in migrated:
                value = migrated[name] & ((1 << new_code.reg_widths[name]) - 1)
                new_state[slot] = value
                new_state[slot + num_regs] = value
                report.registers_migrated += 1

        old_sanitized = getattr(old_code, "sanitize", False)
        if new_code.sanitize:
            # State this reload *introduces* (registers with no migrated
            # value) is poison — the sanitizer's uninit-read check fires
            # if the new logic reads it before writing it.  Same-name
            # migrated registers carry the old poison bit; renames drop
            # it (documented limitation).
            old_poison = (
                inst.state[old_code.reg_poison_slot] if old_sanitized else 0
            )
            # A CREATE op materializes a value the simulation never
            # computed — poisoned just like a register with no migrated
            # value at all.
            created = {
                op.name for op in transform.ops if op.kind == "create"
            }
            # Registers the dataflow pass proved constant from reset
            # adopt the proven value instead of poison: the value a
            # from-reset run would hold is fully known, so reading it is
            # not reading uninitialized state (the "fully-known init"
            # elision case).  CREATE'd registers keep user semantics.
            const_init = getattr(new_code, "reg_const_init", {})
            pbits = 0
            for name, slot in new_code.reg_slots.items():
                if name not in migrated or name in created:
                    if name not in created and name in const_init:
                        value = const_init[name] & (
                            (1 << new_code.reg_widths[name]) - 1
                        )
                        new_state[slot] = value
                        new_state[slot + num_regs] = value
                        report.registers_migrated += 1
                        continue
                    pbits |= 1 << slot
                else:
                    old_slot = old_code.reg_slots.get(name)
                    if old_slot is not None and (old_poison >> old_slot) & 1:
                        pbits |= 1 << slot
            new_state[new_code.reg_poison_slot] = pbits

        # Memories follow the same rules, keyed by (possibly renamed)
        # name; shrunk widths mask, changed depths copy the overlap.
        name_map = {name: name for name in old_code.mem_specs}
        for op in transform.ops:
            if op.kind == "rename" and op.name in name_map:
                name_map[op.name] = op.new_name
            elif op.kind == "delete":
                name_map.pop(op.name, None)
        copied: Dict[str, tuple] = {}
        for old_name, new_name in name_map.items():
            old_spec = old_code.mem_specs[old_name]
            new_spec = new_code.mem_specs.get(new_name)
            if new_spec is None:
                continue
            old_words = inst.state[old_spec.slot]
            new_words = new_state[new_spec.slot]
            count = min(len(old_words), len(new_words))
            if new_spec.width < old_spec.width:
                mask = (1 << new_spec.width) - 1
                new_words[0:count] = [w & mask for w in old_words[0:count]]
            else:
                new_words[0:count] = old_words[0:count]
            copied[new_name] = (
                count,
                inst.state[old_spec.poison_slot] if old_sanitized else 0,
            )
            report.memories_migrated += 1

        if new_code.sanitize:
            for name, spec in new_code.mem_specs.items():
                carried = copied.get(name)
                if carried is None:
                    # Brand-new memory: every word is fresh state.
                    poison = (1 << spec.depth) - 1
                else:
                    count, old_bits = carried
                    # Grown tail is fresh; copied words keep old poison.
                    poison = ((1 << spec.depth) - 1) & ~((1 << count) - 1)
                    poison |= old_bits & ((1 << count) - 1)
                new_state[spec.poison_slot] = poison

        inst.state = new_state
