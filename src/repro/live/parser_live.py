"""LiveParser: attribute edits to regions and detect behavioural change.

Paper §III-C: "The LiveParser identifies which stage the change in code
took place in, and confirm that actual behavior was changed, not just
comments or spacing. LiveParser then extracts those sections of the
codebase and sends only those to LiveCompiler."

The decision procedure:

1. Split old and new text into regions (modules / directives).
2. A module region whose *token-stream fingerprint* changed is a
   behavioural change in that module; comment/whitespace edits produce
   identical fingerprints and are ignored.
3. A changed/added/removed directive poisons every module whose region
   starts below the earliest affected directive line ("much more will
   have to be recompiled").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..hdl.lexer import behavioral_fingerprint
from ..hdl.source_regions import (
    DIRECTIVE_REGION,
    MODULE_REGION,
    SourceRegion,
    split_regions,
)


@dataclass
class LiveParseResult:
    """Outcome of one LiveParser pass over an edit."""

    behavioral: bool  # does any region change behaviour?
    changed_modules: Set[str] = field(default_factory=set)
    added_modules: Set[str] = field(default_factory=set)
    removed_modules: Set[str] = field(default_factory=set)
    directive_changed: bool = False
    directive_line: Optional[int] = None  # earliest affected directive
    poisoned_modules: Set[str] = field(default_factory=set)  # below directive
    parse_seconds: float = 0.0

    @property
    def modules_to_recompile(self) -> Set[str]:
        return self.changed_modules | self.added_modules | self.poisoned_modules


class LiveParser:
    """Stateful incremental parser over one evolving source text."""

    def __init__(self, source: str):
        self._source = source
        self._regions = split_regions(source)
        self._fingerprints = self._fingerprint_modules(self._regions)
        self._region_texts = {
            r.name: r.text for r in self._regions if r.kind == MODULE_REGION
        }

    @property
    def source(self) -> str:
        return self._source

    @property
    def regions(self) -> List[SourceRegion]:
        return list(self._regions)

    @staticmethod
    def _fingerprint_modules(regions: List[SourceRegion]) -> Dict[str, str]:
        fps: Dict[str, str] = {}
        for region in regions:
            if region.kind == MODULE_REGION:
                fps[region.name] = behavioral_fingerprint(region.text)
        return fps

    @staticmethod
    def _directive_signature(regions: List[SourceRegion]) -> List[str]:
        return [
            region.name for region in regions if region.kind == DIRECTIVE_REGION
        ]

    def module_names(self) -> Set[str]:
        return set(self._fingerprints)

    def fingerprint(self, module_name: str) -> str:
        """The committed behavioural fingerprint of one module.

        Includes the *preprocessor context*: every directive above the
        module's region.  A ``\\`define`` edit therefore changes the
        fingerprint of each module below it, even though the modules'
        own text (which references the macro by name) is unchanged —
        this is what keeps the compile cache honest across directive
        edits (the paper's "much more will have to be recompiled").
        """
        import hashlib

        fp = self._fingerprints.get(module_name)
        if fp is None:
            # Module was merged into the design without a region (e.g.
            # generated programmatically): hash on demand.
            return behavioral_fingerprint(module_name)
        region = self.region_of_module(module_name)
        context = [
            r.name
            for r in self._regions
            if r.kind == DIRECTIVE_REGION
            and (region is None or r.start_line < region.start_line)
        ]
        if not context:
            return fp
        digest = hashlib.sha256(fp.encode())
        for directive in context:
            digest.update(b"\x00")
            digest.update(directive.encode())
        return digest.hexdigest()

    def region_of_module(self, name: str) -> Optional[SourceRegion]:
        for region in self._regions:
            if region.kind == MODULE_REGION and region.name == name:
                return region
        return None

    def analyze(self, new_source: str) -> LiveParseResult:
        """Compare ``new_source`` against the current text.

        Does **not** commit; call :meth:`commit` with the same text once
        the downstream compile succeeded, so a failed edit can be
        retried without corrupting the baseline.
        """
        started = time.perf_counter()
        new_regions = split_regions(new_source)
        # Fast path: textually identical regions keep their fingerprint
        # (lexing is only paid for regions that actually changed).
        new_fps: Dict[str, str] = {}
        for region in new_regions:
            if region.kind != MODULE_REGION:
                continue
            if self._region_texts.get(region.name) == region.text:
                new_fps[region.name] = self._fingerprints[region.name]
            else:
                new_fps[region.name] = behavioral_fingerprint(region.text)
        old_fps = self._fingerprints

        result = LiveParseResult(behavioral=False)
        old_names = set(old_fps)
        new_names = set(new_fps)
        result.added_modules = new_names - old_names
        result.removed_modules = old_names - new_names
        result.changed_modules = {
            name
            for name in old_names & new_names
            if old_fps[name] != new_fps[name]
        }

        old_directives = self._directive_signature(self._regions)
        new_directives = self._directive_signature(new_regions)
        if old_directives != new_directives:
            result.directive_changed = True
            result.directive_line = self._earliest_directive_divergence(
                new_regions, old_directives, new_directives
            )
            # Everything below the earliest affected directive is
            # poisoned (paper: "this could affect any code below").
            line = result.directive_line or 0
            result.poisoned_modules = {
                region.name
                for region in new_regions
                if region.kind == MODULE_REGION and region.start_line >= line
            }

        result.behavioral = bool(
            result.changed_modules
            or result.added_modules
            or result.removed_modules
            or result.directive_changed
        )
        result.parse_seconds = time.perf_counter() - started
        return result

    def _earliest_directive_divergence(
        self,
        new_regions: List[SourceRegion],
        old_directives: List[str],
        new_directives: List[str],
    ) -> int:
        new_directive_regions = [
            r for r in new_regions if r.kind == DIRECTIVE_REGION
        ]
        old_directive_regions = [
            r for r in self._regions if r.kind == DIRECTIVE_REGION
        ]
        for i in range(max(len(old_directives), len(new_directives))):
            old = old_directives[i] if i < len(old_directives) else None
            new = new_directives[i] if i < len(new_directives) else None
            if old != new:
                candidates = []
                if i < len(new_directive_regions):
                    candidates.append(new_directive_regions[i].start_line)
                if i < len(old_directive_regions):
                    candidates.append(old_directive_regions[i].start_line)
                return min(candidates) if candidates else 1
        return 1

    def commit(self, new_source: str) -> None:
        """Accept ``new_source`` as the new baseline."""
        self._source = new_source
        new_regions = split_regions(new_source)
        fingerprints: Dict[str, str] = {}
        for region in new_regions:
            if region.kind != MODULE_REGION:
                continue
            if self._region_texts.get(region.name) == region.text:
                fingerprints[region.name] = self._fingerprints[region.name]
            else:
                fingerprints[region.name] = behavioral_fingerprint(region.text)
        self._regions = new_regions
        self._fingerprints = fingerprints
        self._region_texts = {
            r.name: r.text for r in new_regions if r.kind == MODULE_REGION
        }
