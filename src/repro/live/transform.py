"""Register transformation rules and history (paper Tables V and VI).

A checkpoint records the entire state of a pipeline.  After a code
change the register topology may differ, so checkpoints cannot be
blindly transferred.  LiveSim applies deterministic rules:

========================  =========================================
Scenario                  Action
========================  =========================================
Register created          Initialize to 0 (or another given value)
Register deleted          Ignore data from the checkpoint
Single register renamed   Map old-name to new-name
========================  =========================================

When the mapping is ambiguous, LiveSim "will make its best guess based
on the similarities of names and types" — implemented here with width
matching plus difflib name similarity.  The user can override the guess
by editing the history, which supports branching (Table VI) so design
exploration is not limited to a linear sequence of changes.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..hdl.errors import SimulationError

CREATE = "create"
DELETE = "delete"
RENAME = "rename"


@dataclass(frozen=True)
class TransformOp:
    """One operation in a register transform (a Table VI row entry)."""

    kind: str  # CREATE | DELETE | RENAME
    name: str
    new_name: str = ""
    init_value: int = 0

    def __post_init__(self) -> None:
        if self.kind not in (CREATE, DELETE, RENAME):
            raise ValueError(f"unknown transform op kind {self.kind!r}")
        if self.kind == RENAME and not self.new_name:
            raise ValueError("rename op needs new_name")

    def describe(self) -> str:
        if self.kind == CREATE:
            return f"create {self.name}"
        if self.kind == DELETE:
            return f"delete {self.name}"
        return f"rename {self.name}, {self.new_name}"


@dataclass
class RegisterTransform:
    """The register-topology delta between two design versions."""

    ops: List[TransformOp] = field(default_factory=list)

    def apply(self, values: Mapping[str, int]) -> Dict[str, int]:
        """Translate a name->value map from the old version's namespace
        into the new version's namespace."""
        result: Dict[str, int] = dict(values)
        for op in self.ops:
            if op.kind == DELETE:
                result.pop(op.name, None)
            elif op.kind == RENAME:
                if op.name in result:
                    result[op.new_name] = result.pop(op.name)
            elif op.kind == CREATE:
                result[op.name] = op.init_value
        return result

    def compose(self, later: "RegisterTransform") -> "RegisterTransform":
        return RegisterTransform(ops=self.ops + later.ops)

    def is_identity(self) -> bool:
        return not self.ops


def guess_transforms(
    old_regs: Mapping[str, int],
    new_regs: Mapping[str, int],
    rename_cutoff: float = 0.6,
) -> RegisterTransform:
    """Best-guess transform between two register-width tables.

    ``old_regs``/``new_regs`` map register name -> width.  Registers
    present in both keep their data implicitly (no op).  A deleted and a
    created register of the *same width* whose names are similar are
    paired as a rename; everything else becomes delete/create.
    """
    old_only = [n for n in old_regs if n not in new_regs]
    new_only = [n for n in new_regs if n not in old_regs]
    ops: List[TransformOp] = []
    matched_new: set = set()
    for old_name in old_only:
        candidates = [
            n
            for n in new_only
            if n not in matched_new and new_regs[n] == old_regs[old_name]
        ]
        best = difflib.get_close_matches(old_name, candidates, n=1,
                                         cutoff=rename_cutoff)
        if best:
            ops.append(TransformOp(kind=RENAME, name=old_name, new_name=best[0]))
            matched_new.add(best[0])
        else:
            ops.append(TransformOp(kind=DELETE, name=old_name))
    for new_name in new_only:
        if new_name not in matched_new:
            ops.append(TransformOp(kind=CREATE, name=new_name))
    return RegisterTransform(ops=ops)


def translate_snapshot(
    snap,
    module_name_of: "Mapping[str, str]",
    transform_for: "Mapping[str, RegisterTransform]",
):
    """Rewrite a :class:`~repro.sim.stage.StateSnapshot` tree into a new
    version's register namespace.

    ``module_name_of`` maps spec key -> module name; ``transform_for``
    maps module name -> transform (missing entries mean identity).
    Used by the session to retarget stored checkpoints right after a
    hot reload, so every checkpoint in the store always speaks the
    current version's naming.
    """
    from ..sim.stage import StateSnapshot

    module = module_name_of.get(snap.key, snap.key)
    transform = transform_for.get(module)
    reg_poison = set(getattr(snap, "reg_poison", ()))
    mem_poison = dict(getattr(snap, "mem_poison", {}))
    if transform is None or transform.is_identity():
        regs = dict(snap.regs)
        mems = {name: list(words) for name, words in snap.mems.items()}
    else:
        regs = transform.apply(snap.regs)
        name_map = {name: name for name in snap.mems}
        for op in transform.ops:
            if op.kind == RENAME and op.name in name_map:
                name_map[op.name] = op.new_name
            elif op.kind == DELETE:
                name_map.pop(op.name, None)
        mems = {
            new_name: list(snap.mems[old_name])
            for old_name, new_name in name_map.items()
        }
        # Sanitizer shadow state follows the rename/delete/create ops:
        # a *created* register holds a value the simulation never
        # computed, so it reads as poisoned until first written.
        for op in transform.ops:
            if op.kind == RENAME:
                if op.name in reg_poison:
                    reg_poison.discard(op.name)
                    reg_poison.add(op.new_name)
                if op.name in mem_poison:
                    mem_poison[op.new_name] = mem_poison.pop(op.name)
            elif op.kind == DELETE:
                reg_poison.discard(op.name)
                mem_poison.pop(op.name, None)
            elif op.kind == CREATE:
                reg_poison.add(op.name)
    return StateSnapshot(
        key=snap.key,
        name=snap.name,
        regs=regs,
        mems=mems,
        children=[
            translate_snapshot(child, module_name_of, transform_for)
            for child in snap.children
        ],
        reg_poison=tuple(sorted(reg_poison & set(regs))),
        mem_poison=mem_poison,
    )


@dataclass
class _VersionNode:
    version: str
    parent: Optional[str]
    transforms: Dict[str, RegisterTransform]  # module name -> transform


class RegisterTransformHistory:
    """The branching Register Transform History (paper Table VI).

    Versions form a tree rooted at the initial version.  Each node
    stores, per module, the transform needed to carry state *from its
    parent version to itself*.  Translating a checkpoint from version A
    to version B composes the transforms along the tree path A -> B
    (A must be an ancestor of B; LiveSim never transforms backwards).
    """

    def __init__(self, root_version: str = "1.0"):
        self._nodes: Dict[str, _VersionNode] = {
            root_version: _VersionNode(root_version, None, {})
        }
        self._root = root_version

    @property
    def root(self) -> str:
        return self._root

    def versions(self) -> List[str]:
        return list(self._nodes)

    def __contains__(self, version: str) -> bool:
        return version in self._nodes

    def parent_of(self, version: str) -> Optional[str]:
        return self._node(version).parent

    def _node(self, version: str) -> _VersionNode:
        node = self._nodes.get(version)
        if node is None:
            raise SimulationError(f"unknown design version {version!r}")
        return node

    def add_version(
        self,
        version: str,
        parent: str,
        transforms: Optional[Mapping[str, RegisterTransform]] = None,
    ) -> None:
        if version in self._nodes:
            raise SimulationError(f"version {version!r} already exists")
        self._node(parent)  # validate
        self._nodes[version] = _VersionNode(
            version, parent, dict(transforms or {})
        )

    def set_transform(
        self, version: str, module: str, transform: RegisterTransform
    ) -> None:
        """Manual override — the paper's "user can manually edit the
        Register Transform History if the mapping is incorrect"."""
        self._node(version).transforms[module] = transform

    def transform_for(self, version: str, module: str) -> RegisterTransform:
        return self._node(version).transforms.get(module, RegisterTransform())

    def _path_to_root(self, version: str) -> List[str]:
        path = [version]
        node = self._node(version)
        while node.parent is not None:
            path.append(node.parent)
            node = self._node(node.parent)
        return path

    def path(self, old_version: str, new_version: str) -> List[str]:
        """Versions from (exclusive) old to (inclusive) new.

        Raises if ``old_version`` is not an ancestor of (or equal to)
        ``new_version`` — a checkpoint cannot cross branches.
        """
        chain = self._path_to_root(new_version)
        if old_version not in chain:
            raise SimulationError(
                f"version {old_version!r} is not an ancestor of "
                f"{new_version!r}; checkpoints cannot cross branches"
            )
        index = chain.index(old_version)
        return list(reversed(chain[:index]))

    def composed_transform(
        self, old_version: str, new_version: str, module: str
    ) -> RegisterTransform:
        """Transform translating ``module`` state across versions."""
        composed = RegisterTransform()
        for version in self.path(old_version, new_version):
            composed = composed.compose(self.transform_for(version, module))
        return composed

    def rows(self) -> List[Tuple[str, str, str]]:
        """(version, operations, parent) rows mirroring Table VI."""
        rows: List[Tuple[str, str, str]] = []
        for node in self._nodes.values():
            ops: List[str] = []
            for module, transform in node.transforms.items():
                for op in transform.ops:
                    prefix = f"{module}." if module else ""
                    ops.append(prefix + op.describe())
            rows.append(
                (node.version, "; ".join(ops) or "-", node.parent or "null")
            )
        return rows
