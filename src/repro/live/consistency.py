"""Checkpoint consistency verification (paper §III-F, Fig. 6).

After a code change the stored checkpoints — produced by the *old*
code — may no longer describe states the *new* code would reach.
Instead of re-running from cycle 0, LiveSim verifies checkpoint deltas
independently: for each interval ``[cp_k, cp_{k+1}]``, reload ``cp_k``
under the patched design, replay the recorded operations to
``cp_{k+1}``'s cycle, and compare the resulting state against the
stored ``cp_{k+1}`` (translated through the register transforms).

Because every segment is independent, the work parallelizes across as
many cores as there are checkpoints.  When the checkpoints are not
consistent, the earliest divergent segment localizes where the
divergence occurred — "which may also be useful for debugging".
"""

from __future__ import annotations

import importlib
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..hdl.errors import SimulationError
from ..sim.pipeline import Pipe, PipeSnapshot
from ..sim.testbench import Testbench
from .checkpoint import Checkpoint
from .replay import SessionOp, replay_ops
from .transform import RegisterTransform

TransformLookup = Callable[[str], Optional[RegisterTransform]]


@dataclass
class SegmentResult:
    """Outcome of verifying one checkpoint delta."""

    index: int
    start_cycle: int
    end_cycle: int
    consistent: bool
    seconds: float = 0.0
    detail: str = ""


@dataclass
class ConsistencyReport:
    """Fig. 6 outcome: per-segment verdicts plus aggregate timing."""

    segments: List[SegmentResult] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0

    @property
    def all_consistent(self) -> bool:
        return all(s.consistent for s in self.segments)

    @property
    def cpu_seconds(self) -> float:
        return sum(s.seconds for s in self.segments)

    @property
    def first_divergent(self) -> Optional[SegmentResult]:
        for segment in sorted(self.segments, key=lambda s: s.start_cycle):
            if not segment.consistent:
                return segment
        return None

    @property
    def divergence_cycle(self) -> Optional[int]:
        """Earliest cycle known-good state ends (start of the first bad
        segment); simulation must be re-established from there."""
        bad = self.first_divergent
        return bad.start_cycle if bad is not None else None


@dataclass
class _Segment:
    index: int
    start_snapshot: Optional[PipeSnapshot]  # None => power-on reset state
    start_cycle: int
    end_snapshot: PipeSnapshot
    end_cycle: int


class ConsistencyChecker:
    """Verifies checkpoint deltas under the current (patched) design."""

    def __init__(
        self,
        build_pipe: Callable[[], Pipe],
        tb_lookup: Callable[[str], Testbench],
        transform_for: TransformLookup = lambda module: None,
    ):
        self._build_pipe = build_pipe
        self._tb_lookup = tb_lookup
        self._transform_for = transform_for

    # -- segment construction ---------------------------------------------------

    @staticmethod
    def make_segments(checkpoints: Sequence[Checkpoint]) -> List[_Segment]:
        ordered = sorted(checkpoints, key=lambda c: c.cycle)
        segments: List[_Segment] = []
        previous: Optional[Checkpoint] = None
        for i, checkpoint in enumerate(ordered):
            segments.append(
                _Segment(
                    index=i,
                    start_snapshot=previous.snapshot if previous else None,
                    start_cycle=previous.cycle if previous else 0,
                    end_snapshot=checkpoint.snapshot,
                    end_cycle=checkpoint.cycle,
                )
            )
            previous = checkpoint
        return segments

    # -- serial verification --------------------------------------------------------

    def verify(
        self,
        checkpoints: Sequence[Checkpoint],
        ops: Sequence[SessionOp],
        workers: int = 1,
        worker_context: "Optional[WorkerContext]" = None,
    ) -> ConsistencyReport:
        """Verify every checkpoint delta.

        ``workers > 1`` runs segments in separate processes and needs a
        :class:`WorkerContext` (everything a fresh process requires to
        rebuild the simulator); otherwise segments run serially in this
        process.
        """
        started = time.perf_counter()
        with obs.span("consistency.verify", workers=max(workers, 1)):
            segments = self.make_segments(checkpoints)
            report = ConsistencyReport(workers=max(workers, 1))
            if not segments:
                report.wall_seconds = time.perf_counter() - started
                return report
            if workers > 1 and worker_context is not None:
                report.segments = self._verify_parallel(
                    segments, ops, workers, worker_context
                )
            else:
                report.workers = 1
                report.segments = [
                    self._verify_segment(segment, ops) for segment in segments
                ]
            report.wall_seconds = time.perf_counter() - started
        obs.incr("consistency.segments_verified", len(report.segments))
        divergent = sum(1 for s in report.segments if not s.consistent)
        if divergent:
            obs.incr("consistency.divergences", divergent)
        return report

    def _verify_segment(
        self, segment: _Segment, ops: Sequence[SessionOp]
    ) -> SegmentResult:
        seg_started = time.perf_counter()
        with obs.span("consistency.segment", index=segment.index,
                      end_cycle=segment.end_cycle):
            pipe = self._build_pipe()
            result = _run_segment(
                pipe, segment, ops, self._tb_lookup, self._transform_for
            )
        result.seconds = time.perf_counter() - seg_started
        return result

    # -- parallel verification ---------------------------------------------------------

    def _verify_parallel(
        self,
        segments: List[_Segment],
        ops: Sequence[SessionOp],
        workers: int,
        context: "WorkerContext",
    ) -> List[SegmentResult]:
        payload = pickle.dumps((context, list(ops)))
        futures = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # Round-robin segments across workers, one batch per worker
            # (paper: divide the simulation into n-1 parts with roughly
            # the same number of checkpoints in each).
            batches: List[List[_Segment]] = [[] for _ in range(workers)]
            for i, segment in enumerate(segments):
                batches[i % workers].append(segment)
            for batch in batches:
                if batch:
                    futures.append(
                        pool.submit(_verify_segments_worker, payload,
                                    pickle.dumps(batch))
                    )
            results: List[SegmentResult] = []
            for worker_index, future in enumerate(futures):
                batch_results = future.result()
                # Workers time their own segments; surface each as a
                # completed span under the verify span so the trace
                # shows the per-worker breakdown.
                for result in batch_results:
                    obs.record(
                        "consistency.segment",
                        int(result.seconds * 1e9),
                        index=result.index,
                        worker=worker_index,
                    )
                results.extend(batch_results)
        results.sort(key=lambda r: r.index)
        return results


def _run_segment(
    pipe: Pipe,
    segment: _Segment,
    ops: Sequence[SessionOp],
    tb_lookup: Callable[[str], Testbench],
    transform_for: TransformLookup,
) -> SegmentResult:
    """Replay one delta and compare final state to the stored end."""
    if segment.start_snapshot is None:
        pipe.reset_state()
    else:
        pipe.restore_transformed(segment.start_snapshot, transform_for)
    replay_ops(pipe, list(ops), segment.end_cycle, tb_lookup)
    actual = pipe.top.snapshot()
    # Canonicalize the stored end snapshot into the current version's
    # namespace by loading it through the same transform path.
    pipe.restore_transformed(segment.end_snapshot, transform_for)
    expected = pipe.top.snapshot()
    consistent = actual.equal_state(expected)
    detail = ""
    if not consistent:
        detail = _describe_divergence(actual, expected)
    return SegmentResult(
        index=segment.index,
        start_cycle=segment.start_cycle,
        end_cycle=segment.end_cycle,
        consistent=consistent,
        detail=detail,
    )


def _describe_divergence(actual, expected, path: str = "top") -> str:
    for name in actual.regs:
        if actual.regs.get(name) != expected.regs.get(name):
            return (
                f"{path}.{name}: replayed={actual.regs.get(name)} "
                f"stored={expected.regs.get(name)}"
            )
    for name in actual.mems:
        a = actual.mems.get(name)
        b = expected.mems.get(name)
        if a != b:
            for i, (x, y) in enumerate(zip(a or [], b or [])):
                if x != y:
                    return f"{path}.{name}[{i}]: replayed={x} stored={y}"
            return f"{path}.{name}: length mismatch"
    for child_a, child_b in zip(actual.children, expected.children):
        if not child_a.equal_state(child_b):
            return _describe_divergence(
                child_a, child_b, f"{path}.{child_a.name}"
            )
    return "states differ"


# ----------------------------------------------------------------------------
# Process-parallel worker support
# ----------------------------------------------------------------------------


@dataclass
class WorkerContext:
    """Everything a fresh process needs to rebuild the simulator.

    ``tb_specs`` maps testbench handle -> ("package.module:factory",
    kwargs); the factory is imported and called in the worker to
    recreate the testbench.  ``transforms`` maps module name -> the
    old-version -> current-version register transform.
    """

    source: str
    top: str
    params: Dict[str, int]
    mux_style: str
    tb_specs: Dict[str, Tuple[str, Dict]]
    transforms: Dict[str, RegisterTransform] = field(default_factory=dict)


def _build_from_context(context: WorkerContext):
    from ..codegen.pygen import compile_netlist
    from ..hdl.elaborate import elaborate
    from ..hdl.parser import parse

    design = parse(context.source)
    netlist = elaborate(design, context.top, context.params)
    library = compile_netlist(netlist, context.mux_style)
    testbenches: Dict[str, Testbench] = {}
    for handle, (factory_path, kwargs) in context.tb_specs.items():
        module_name, _, attr = factory_path.partition(":")
        factory = getattr(importlib.import_module(module_name), attr)
        testbenches[handle] = factory(**kwargs)

    def build_pipe() -> Pipe:
        return Pipe(netlist.top, library)

    def tb_lookup(handle: str) -> Testbench:
        testbench = testbenches.get(handle)
        if testbench is None:
            raise SimulationError(f"worker has no testbench {handle!r}")
        return testbench

    def transform_for(module: str) -> Optional[RegisterTransform]:
        return context.transforms.get(module)

    return build_pipe, tb_lookup, transform_for


def _verify_segments_worker(
    context_payload: bytes, segments_payload: bytes
) -> List[SegmentResult]:
    context, ops = pickle.loads(context_payload)  # noqa: S301
    segments: List[_Segment] = pickle.loads(segments_payload)  # noqa: S301
    build_pipe, tb_lookup, transform_for = _build_from_context(context)
    results = []
    for segment in segments:
        seg_started = time.perf_counter()
        pipe = build_pipe()
        result = _run_segment(pipe, segment, ops, tb_lookup, transform_for)
        result.seconds = time.perf_counter() - seg_started
        results.append(result)
    return results
