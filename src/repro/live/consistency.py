"""Checkpoint consistency verification (paper §III-F, Fig. 6).

After a code change the stored checkpoints — produced by the *old*
code — may no longer describe states the *new* code would reach.
Instead of re-running from cycle 0, LiveSim verifies checkpoint deltas
independently: for each interval ``[cp_k, cp_{k+1}]``, reload ``cp_k``
under the patched design, replay the recorded operations to
``cp_{k+1}``'s cycle, and compare the resulting state against the
stored ``cp_{k+1}`` (translated through the register transforms).

Because every segment is independent, the work parallelizes across as
many cores as there are checkpoints.  When the checkpoints are not
consistent, the earliest divergent segment localizes where the
divergence occurred — "which may also be useful for debugging".

Verification is a managed subsystem, not a one-shot function:

* :class:`VerifierPool` — a persistent process pool that survives
  across verify calls *and* across edits.  Each worker process keeps a
  compiled-design cache keyed by a design fingerprint (source hash +
  top + params + mux style), so verifying again — or verifying the
  next edit of an unchanged specialization — skips the parse /
  elaborate / compile that otherwise dominates worker startup.
* Per-segment futures with dynamic scheduling: a straggler segment no
  longer serializes a whole statically-assigned batch; idle workers
  pull the next segment.
* :class:`BackgroundVerifier` — runs a verify without blocking the
  session.  Results stream in via a completion callback on a collector
  thread; a superseding edit cancels in-flight segments.

The paper §III-F: stored checkpoints are re-verified *in the
background* while the user keeps simulating.
"""

from __future__ import annotations

import hashlib
import importlib
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import (
    CancelledError,
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..hdl.errors import SimulationError
from ..sim.pipeline import Pipe, PipeSnapshot
from ..sim.testbench import Testbench
from .checkpoint import Checkpoint
from .replay import SessionOp, replay_ops
from .transform import RegisterTransform

TransformLookup = Callable[[str], Optional[RegisterTransform]]

# How many compiled designs one worker process keeps around.  Edits
# ping-pong between a handful of fingerprints (inject/fix pairs), so a
# small bound holds the useful set without unbounded memory growth.
WORKER_DESIGN_CACHE_SIZE = 8


@dataclass
class SegmentResult:
    """Outcome of verifying one checkpoint delta."""

    index: int
    start_cycle: int
    end_cycle: int
    consistent: bool
    seconds: float = 0.0
    detail: str = ""
    # Dense worker index assigned by the parent from the worker's pid
    # (-1 = verified in-process).  Dynamic scheduling means any worker
    # may pick up any segment.
    worker: int = -1
    # True when handling this segment made the worker compile the
    # design (a fingerprint cache miss).
    compiled: bool = False


@dataclass
class ConsistencyReport:
    """Fig. 6 outcome: per-segment verdicts plus aggregate timing."""

    segments: List[SegmentResult] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0
    # Segments cancelled before they ran (superseding edit); they have
    # no SegmentResult.
    cancelled_segments: int = 0
    status: str = "complete"  # "complete" | "cancelled"

    @property
    def all_consistent(self) -> bool:
        return all(s.consistent for s in self.segments)

    @property
    def cpu_seconds(self) -> float:
        return sum(s.seconds for s in self.segments)

    @property
    def first_divergent(self) -> Optional[SegmentResult]:
        for segment in sorted(self.segments, key=lambda s: s.start_cycle):
            if not segment.consistent:
                return segment
        return None

    @property
    def divergence_cycle(self) -> Optional[int]:
        """Earliest cycle known-good state ends (start of the first bad
        segment); simulation must be re-established from there."""
        bad = self.first_divergent
        return bad.start_cycle if bad is not None else None


@dataclass
class VerifyStatus:
    """Point-in-time view of a (possibly in-flight) verification."""

    state: str  # "idle" | "running" | "consistent" | "divergent" | "cancelled"
    total_segments: int = 0
    completed_segments: int = 0
    cancelled_segments: int = 0
    consistent: Optional[bool] = None
    divergence_cycle: Optional[int] = None
    wall_seconds: float = 0.0


@dataclass
class _Segment:
    index: int
    start_snapshot: Optional[PipeSnapshot]  # None => power-on reset state
    start_cycle: int
    end_snapshot: PipeSnapshot
    end_cycle: int


class ConsistencyChecker:
    """Verifies checkpoint deltas under the current (patched) design."""

    def __init__(
        self,
        build_pipe: Callable[[], Pipe],
        tb_lookup: Callable[[str], Testbench],
        transform_for: TransformLookup = lambda module: None,
    ):
        self._build_pipe = build_pipe
        self._tb_lookup = tb_lookup
        self._transform_for = transform_for

    # -- segment construction ---------------------------------------------------

    @staticmethod
    def make_segments(checkpoints: Sequence[Checkpoint]) -> List[_Segment]:
        ordered = sorted(checkpoints, key=lambda c: c.cycle)
        segments: List[_Segment] = []
        previous: Optional[Checkpoint] = None
        for i, checkpoint in enumerate(ordered):
            segments.append(
                _Segment(
                    index=i,
                    start_snapshot=previous.snapshot if previous else None,
                    start_cycle=previous.cycle if previous else 0,
                    end_snapshot=checkpoint.snapshot,
                    end_cycle=checkpoint.cycle,
                )
            )
            previous = checkpoint
        return segments

    # -- serial verification --------------------------------------------------------

    def verify(
        self,
        checkpoints: Sequence[Checkpoint],
        ops: Sequence[SessionOp],
        workers: int = 1,
        worker_context: "Optional[WorkerContext]" = None,
        pool: "Optional[VerifierPool]" = None,
    ) -> ConsistencyReport:
        """Verify every checkpoint delta, blocking until done.

        ``workers > 1`` runs segments in worker processes and needs a
        :class:`WorkerContext` (everything a fresh process requires to
        rebuild the simulator); otherwise segments run serially in this
        process.  Passing ``pool`` reuses a persistent
        :class:`VerifierPool` (warm workers, warm design caches);
        without one a transient pool is spun up and torn down.
        """
        started = time.perf_counter()
        with obs.span("consistency.verify", workers=max(workers, 1)):
            segments = self.make_segments(checkpoints)
            report = ConsistencyReport(workers=max(workers, 1))
            if not segments:
                report.wall_seconds = time.perf_counter() - started
                return report
            if workers > 1 and worker_context is not None:
                report.segments = self._verify_parallel(
                    segments, ops, workers, worker_context, pool
                )
            else:
                report.workers = 1
                report.segments = [
                    self._verify_segment(segment, ops) for segment in segments
                ]
            report.wall_seconds = time.perf_counter() - started
        obs.incr("consistency.segments_verified", len(report.segments))
        divergent = sum(1 for s in report.segments if not s.consistent)
        if divergent:
            obs.incr("consistency.divergences", divergent)
        return report

    def _verify_segment(
        self, segment: _Segment, ops: Sequence[SessionOp]
    ) -> SegmentResult:
        seg_started = time.perf_counter()
        with obs.span("consistency.segment", index=segment.index,
                      end_cycle=segment.end_cycle):
            pipe = self._build_pipe()
            result = _run_segment(
                pipe, segment, ops, self._tb_lookup, self._transform_for
            )
        result.seconds = time.perf_counter() - seg_started
        return result

    # -- parallel verification ---------------------------------------------------------

    def _verify_parallel(
        self,
        segments: List[_Segment],
        ops: Sequence[SessionOp],
        workers: int,
        context: "WorkerContext",
        pool: "Optional[VerifierPool]" = None,
    ) -> List[SegmentResult]:
        owned = pool is None
        if pool is None:
            pool = VerifierPool(workers)
        try:
            futures = pool.submit_segments(context, ops, segments)
            results: List[SegmentResult] = []
            for future in as_completed(futures):
                result, pid = future.result()
                result.worker = pool.worker_index(pid)
                _note_segment_result(result)
                results.append(result)
        finally:
            if owned:
                pool.shutdown()
        results.sort(key=lambda r: r.index)
        return results


def _run_segment(
    pipe: Pipe,
    segment: _Segment,
    ops: Sequence[SessionOp],
    tb_lookup: Callable[[str], Testbench],
    transform_for: TransformLookup,
) -> SegmentResult:
    """Replay one delta and compare final state to the stored end."""
    if segment.start_snapshot is None:
        pipe.reset_state()
    else:
        pipe.restore_transformed(segment.start_snapshot, transform_for)
    replay_ops(pipe, list(ops), segment.end_cycle, tb_lookup)
    actual = pipe.top.snapshot()
    # Canonicalize the stored end snapshot into the current version's
    # namespace by loading it through the same transform path.
    pipe.restore_transformed(segment.end_snapshot, transform_for)
    expected = pipe.top.snapshot()
    consistent = actual.equal_state(expected)
    detail = ""
    if not consistent:
        detail = _describe_divergence(actual, expected)
    return SegmentResult(
        index=segment.index,
        start_cycle=segment.start_cycle,
        end_cycle=segment.end_cycle,
        consistent=consistent,
        detail=detail,
    )


def _ordered_union(first, second) -> List[str]:
    return list(first) + [name for name in second if name not in first]


def _describe_divergence(actual, expected, path: str = "top") -> str:
    # Registers/memories present in either side count: a name only in
    # `expected` means the replayed design dropped state (and vice
    # versa), which is exactly the divergence worth naming.
    for name in _ordered_union(actual.regs, expected.regs):
        a = actual.regs.get(name)
        b = expected.regs.get(name)
        if a != b:
            return f"{path}.{name}: replayed={a} stored={b}"
    for name in _ordered_union(actual.mems, expected.mems):
        a = actual.mems.get(name)
        b = expected.mems.get(name)
        if a == b:
            continue
        if a is None or b is None:
            return (
                f"{path}.{name}: memory "
                f"{'missing from replayed state' if a is None else 'missing from stored state'}"
            )
        for i, (x, y) in enumerate(zip(a, b)):
            if x != y:
                return f"{path}.{name}[{i}]: replayed={x} stored={y}"
        return (
            f"{path}.{name}: length mismatch "
            f"replayed={len(a)} stored={len(b)}"
        )
    if len(actual.children) != len(expected.children):
        return (
            f"{path}: child count replayed={len(actual.children)} "
            f"stored={len(expected.children)}"
        )
    for child_a, child_b in zip(actual.children, expected.children):
        if child_a.name != child_b.name:
            return (
                f"{path}: child name replayed={child_a.name!r} "
                f"stored={child_b.name!r}"
            )
        if not child_a.equal_state(child_b):
            return _describe_divergence(
                child_a, child_b, f"{path}.{child_a.name}"
            )
    return "states differ"


def _note_segment_result(result: SegmentResult) -> None:
    """Surface a worker-verified segment in the parent's obs stream."""
    if result.compiled:
        obs.incr("consistency.worker_compiles")
    else:
        obs.incr("consistency.worker_cache_hits")
    obs.record(
        "consistency.segment",
        int(result.seconds * 1e9),
        index=result.index,
        worker=result.worker,
    )


# ----------------------------------------------------------------------------
# Process-parallel worker support
# ----------------------------------------------------------------------------


@dataclass
class WorkerContext:
    """Everything a fresh process needs to rebuild the simulator.

    ``tb_specs`` maps testbench handle -> ("package.module:factory",
    kwargs); the factory is imported and called in the worker to
    recreate the testbench.  Factories must build replay-safe
    testbenches (stimulus a pure function of the rebased cycle) —
    workers cache them across verify calls.  ``transforms`` maps module
    name -> the old-version -> current-version register transform.
    """

    source: str
    top: str
    params: Dict[str, int]
    mux_style: str
    tb_specs: Dict[str, Tuple[str, Dict]]
    transforms: Dict[str, RegisterTransform] = field(default_factory=dict)

    def fingerprint(self) -> str:
        """Design identity for the worker-side compiled cache."""
        digest = hashlib.sha256(self.source.encode("utf-8"))
        digest.update(b"\x00" + self.top.encode("utf-8"))
        digest.update(
            b"\x00" + repr(sorted(self.params.items())).encode("utf-8")
        )
        digest.update(b"\x00" + self.mux_style.encode("utf-8"))
        return digest.hexdigest()


class VerifierPool:
    """A process pool that outlives individual verify calls.

    The executor is created lazily on first submit and reused until
    :meth:`shutdown` (or :meth:`resize`).  Keeping the workers alive is
    what makes the per-worker design cache effective: a verify after an
    edit ships only the context (cheap) and each worker compiles the
    new fingerprint once, instead of every verify paying a process
    spawn plus a full recompile per worker.
    """

    def __init__(self, workers: int):
        self.workers = max(int(workers), 1)
        self._executor: Optional[Executor] = None
        self._lock = threading.Lock()
        self._worker_indices: Dict[int, int] = {}

    @property
    def alive(self) -> bool:
        return self._executor is not None

    def _ensure_executor(self) -> Executor:
        with self._lock:
            if self._executor is None:
                if multiprocessing.current_process().daemon:
                    # A daemonic process (a sharded server worker) may
                    # not fork children; run segments on threads in
                    # this process instead.  Same payload protocol —
                    # only the parallelism degrades (GIL-serialized).
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="livesim-verify",
                    )
                else:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.workers
                    )
                self._worker_indices.clear()
                obs.incr("consistency.pool_spawns")
            else:
                obs.incr("consistency.pool_reuses")
            return self._executor

    def submit_segments(
        self,
        context: WorkerContext,
        ops: Sequence[SessionOp],
        segments: Sequence[_Segment],
    ) -> List[Future]:
        """One future per segment — dynamic scheduling.

        The context and ops are pickled once and shared by every
        submission; segments are pickled individually so a worker only
        deserializes the snapshots it actually verifies.
        """
        executor = self._ensure_executor()
        context_payload = pickle.dumps(context)
        ops_payload = pickle.dumps(list(ops))
        return [
            executor.submit(
                _pool_verify_segment,
                context_payload,
                ops_payload,
                pickle.dumps(segment),
            )
            for segment in segments
        ]

    def worker_index(self, pid: int) -> int:
        """Dense index for a worker process id (stable for the pool's
        lifetime; assigned in order of first completed result)."""
        with self._lock:
            if pid not in self._worker_indices:
                self._worker_indices[pid] = len(self._worker_indices)
            return self._worker_indices[pid]

    def resize(self, workers: int) -> None:
        """Change the worker count; tears down the old executor (and
        with it the worker-side caches) lazily."""
        workers = max(int(workers), 1)
        if workers == self.workers and self._executor is not None:
            return
        self.shutdown()
        self.workers = workers
        obs.incr("consistency.pool_resizes")

    def shutdown(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
            self._worker_indices.clear()
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)


class VerifyJob:
    """Handle to one background verification run."""

    def __init__(self, total_segments: int, workers: int):
        self.total_segments = total_segments
        self.workers = workers
        self.started = time.perf_counter()
        self.superseded = False
        self._futures: List[Future] = []
        self._results: List[SegmentResult] = []
        self._cancelled = 0
        self._errors: List[str] = []
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._report: Optional[ConsistencyReport] = None
        self._thread: Optional[threading.Thread] = None

    # -- control -------------------------------------------------------------

    def cancel(self) -> int:
        """Cancel segments that have not started (a superseding edit).

        Running segments finish but the job is marked superseded, so
        its verdict must not be acted on.  Returns the number of
        segments cancelled.
        """
        with self._lock:
            if self._done.is_set():
                return 0
            self.superseded = True
            cancelled = sum(1 for f in self._futures if f.cancel())
            self._cancelled += cancelled
        if cancelled:
            obs.incr("consistency.segments_cancelled", cancelled)
        obs.incr("consistency.jobs_superseded")
        return cancelled

    # -- observation ---------------------------------------------------------

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> Optional[ConsistencyReport]:
        """Block until the job completes; None on timeout."""
        if not self._done.wait(timeout):
            return None
        return self._report

    def status(self) -> VerifyStatus:
        with self._lock:
            completed = len(self._results)
            cancelled = self._cancelled
            report = self._report
        if not self._done.is_set():
            return VerifyStatus(
                state="running",
                total_segments=self.total_segments,
                completed_segments=completed,
                cancelled_segments=cancelled,
                wall_seconds=time.perf_counter() - self.started,
            )
        assert report is not None
        if self.superseded:
            state = "cancelled"
        elif report.all_consistent:
            state = "consistent"
        else:
            state = "divergent"
        return VerifyStatus(
            state=state,
            total_segments=self.total_segments,
            completed_segments=completed,
            cancelled_segments=cancelled,
            consistent=report.all_consistent if not self.superseded else None,
            divergence_cycle=report.divergence_cycle,
            wall_seconds=report.wall_seconds,
        )

    # -- collection (runs on the collector thread) ---------------------------

    def _collect(self, pool: VerifierPool, on_complete) -> None:
        for future in as_completed(list(self._futures)):
            try:
                result, pid = future.result()
            except CancelledError:
                continue  # counted when cancel() revoked it
            except Exception as exc:  # worker died / unpicklable state
                with self._lock:
                    self._errors.append(str(exc))
                obs.incr("consistency.worker_errors")
                continue
            result.worker = pool.worker_index(pid)
            _note_segment_result(result)
            with self._lock:
                self._results.append(result)
        self._finish(on_complete)

    def _finish(self, on_complete) -> None:
        with self._lock:
            results = sorted(self._results, key=lambda r: r.index)
            report = ConsistencyReport(
                segments=results,
                workers=self.workers,
                wall_seconds=time.perf_counter() - self.started,
                cancelled_segments=self._cancelled,
                status="cancelled" if self.superseded else "complete",
            )
            self._report = report
        obs.record(
            "consistency.background",
            int(report.wall_seconds * 1e9),
            segments=len(results),
            cancelled=report.cancelled_segments,
        )
        obs.incr("consistency.segments_verified", len(results))
        divergent = sum(1 for s in results if not s.consistent)
        if divergent:
            obs.incr("consistency.divergences", divergent)
        self._done.set()
        if on_complete is not None:
            try:
                on_complete(self, report)
            except Exception:
                obs.incr("consistency.callback_errors")


class BackgroundVerifier:
    """Streams a verification through a :class:`VerifierPool` without
    blocking the caller (§III-F's "re-verified in the background")."""

    def __init__(self, pool: VerifierPool):
        self._pool = pool

    @property
    def pool(self) -> VerifierPool:
        return self._pool

    def start(
        self,
        segments: Sequence[_Segment],
        ops: Sequence[SessionOp],
        context: WorkerContext,
        on_complete=None,
        label: str = "verify",
    ) -> VerifyJob:
        """Submit every segment and return immediately.

        ``on_complete(job, report)`` fires on a collector thread once
        all segments completed or were cancelled.
        """
        job = VerifyJob(total_segments=len(segments), workers=self._pool.workers)
        obs.incr("consistency.background_jobs")
        if not segments:
            job._finish(on_complete)
            return job
        job._futures = self._pool.submit_segments(context, ops, segments)
        thread = threading.Thread(
            target=job._collect,
            args=(self._pool, on_complete),
            name=f"livesim-{label}",
            daemon=True,
        )
        job._thread = thread
        thread.start()
        return job


# -- worker-process side -----------------------------------------------------

# Per-process caches; populated lazily, survive across verify calls for
# as long as the pool keeps the worker alive.
_WORKER_DESIGNS: "Dict[str, Tuple[str, Dict]]" = {}
_WORKER_TESTBENCHES: Dict[Tuple, Testbench] = {}


def _cached_design(context: WorkerContext) -> Tuple[str, Dict, bool]:
    """(top key, compiled library, compiled-now flag) for the context's
    fingerprint, compiling at most once per fingerprint per worker."""
    from ..codegen.pygen import compile_netlist
    from ..hdl.elaborate import elaborate
    from ..hdl.parser import parse

    fingerprint = context.fingerprint()
    entry = _WORKER_DESIGNS.get(fingerprint)
    if entry is not None:
        return entry[0], entry[1], False
    design = parse(context.source)
    netlist = elaborate(design, context.top, context.params)
    library = compile_netlist(netlist, context.mux_style)
    while len(_WORKER_DESIGNS) >= WORKER_DESIGN_CACHE_SIZE:
        _WORKER_DESIGNS.pop(next(iter(_WORKER_DESIGNS)))
    _WORKER_DESIGNS[fingerprint] = (netlist.top, library)
    return netlist.top, library, True


def _cached_testbench(handle: str, factory_path: str, kwargs: Dict) -> Testbench:
    key = (handle, factory_path, repr(sorted(kwargs.items())))
    testbench = _WORKER_TESTBENCHES.get(key)
    if testbench is None:
        module_name, _, attr = factory_path.partition(":")
        factory = getattr(importlib.import_module(module_name), attr)
        testbench = factory(**kwargs)
        _WORKER_TESTBENCHES[key] = testbench
    return testbench


def _build_from_context(context: WorkerContext):
    """Build (build_pipe, tb_lookup, transform_for, compiled) closures,
    serving the design and testbenches from the worker caches."""
    top_key, library, compiled = _cached_design(context)
    testbenches: Dict[str, Testbench] = {
        handle: _cached_testbench(handle, factory_path, kwargs)
        for handle, (factory_path, kwargs) in context.tb_specs.items()
    }

    def build_pipe() -> Pipe:
        return Pipe(top_key, library)

    def tb_lookup(handle: str) -> Testbench:
        testbench = testbenches.get(handle)
        if testbench is None:
            raise SimulationError(f"worker has no testbench {handle!r}")
        return testbench

    def transform_for(module: str) -> Optional[RegisterTransform]:
        return context.transforms.get(module)

    return build_pipe, tb_lookup, transform_for, compiled


def _pool_verify_segment(
    context_payload: bytes, ops_payload: bytes, segment_payload: bytes
) -> Tuple[SegmentResult, int]:
    """Verify one segment inside a pool worker.

    Returns the result plus ``os.getpid()`` so the parent can attribute
    the work to the process that actually ran it (dynamic scheduling
    means submission order says nothing about worker identity).
    """
    context: WorkerContext = pickle.loads(context_payload)  # noqa: S301
    ops: List[SessionOp] = pickle.loads(ops_payload)  # noqa: S301
    segment: _Segment = pickle.loads(segment_payload)  # noqa: S301
    started = time.perf_counter()
    build_pipe, tb_lookup, transform_for, compiled = _build_from_context(context)
    pipe = build_pipe()
    result = _run_segment(pipe, segment, ops, tb_lookup, transform_for)
    result.seconds = time.perf_counter() - started
    result.compiled = compiled
    return result, os.getpid()
