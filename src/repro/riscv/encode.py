"""RV64I machine-code encoders (R/I/S/B/U/J formats)."""

from __future__ import annotations

from . import isa


class EncodeError(ValueError):
    pass


def _check_reg(reg: int) -> int:
    if not 0 <= reg < 32:
        raise EncodeError(f"register x{reg} out of range")
    return reg


def _check_signed(value: int, bits: int, what: str) -> int:
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not lo <= value <= hi:
        raise EncodeError(f"{what} {value} does not fit in {bits} bits")
    return value & ((1 << bits) - 1)


def encode_r(opcode: int, rd: int, funct3: int, rs1: int, rs2: int,
             funct7: int) -> int:
    return (
        (funct7 << 25)
        | (_check_reg(rs2) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | (_check_reg(rd) << 7)
        | opcode
    )


def encode_i(opcode: int, rd: int, funct3: int, rs1: int, imm: int) -> int:
    imm12 = _check_signed(imm, 12, "I-immediate")
    return (
        (imm12 << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | (_check_reg(rd) << 7)
        | opcode
    )


def encode_shift_i(opcode: int, rd: int, funct3: int, rs1: int, shamt: int,
                   funct6: int, word: bool = False) -> int:
    limit = 32 if word else 64
    if not 0 <= shamt < limit:
        raise EncodeError(f"shift amount {shamt} out of range")
    return (
        (funct6 << 26)
        | (shamt << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | (_check_reg(rd) << 7)
        | opcode
    )


def encode_s(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    imm12 = _check_signed(imm, 12, "S-immediate")
    return (
        ((imm12 >> 5) << 25)
        | (_check_reg(rs2) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | ((imm12 & 0x1F) << 7)
        | opcode
    )


def encode_b(opcode: int, funct3: int, rs1: int, rs2: int, offset: int) -> int:
    if offset % 2:
        raise EncodeError("branch offset must be even")
    imm13 = _check_signed(offset, 13, "B-immediate")
    return (
        (((imm13 >> 12) & 1) << 31)
        | (((imm13 >> 5) & 0x3F) << 25)
        | (_check_reg(rs2) << 20)
        | (_check_reg(rs1) << 15)
        | (funct3 << 12)
        | (((imm13 >> 1) & 0xF) << 8)
        | (((imm13 >> 11) & 1) << 7)
        | opcode
    )


def encode_u(opcode: int, rd: int, imm: int) -> int:
    if not -(1 << 31) <= imm < (1 << 32):
        raise EncodeError(f"U-immediate {imm} out of range")
    return (((imm >> 12) & 0xFFFFF) << 12) | (_check_reg(rd) << 7) | opcode


def encode_j(opcode: int, rd: int, offset: int) -> int:
    if offset % 2:
        raise EncodeError("jump offset must be even")
    imm21 = _check_signed(offset, 21, "J-immediate")
    return (
        (((imm21 >> 20) & 1) << 31)
        | (((imm21 >> 1) & 0x3FF) << 21)
        | (((imm21 >> 11) & 1) << 20)
        | (((imm21 >> 12) & 0xFF) << 12)
        | (_check_reg(rd) << 7)
        | opcode
    )


# ---------------------------------------------------------------------------
# Decoders (used by the golden ISS and tests)
# ---------------------------------------------------------------------------


def imm_i(instr: int) -> int:
    return isa.sign_extend(instr >> 20, 12)


def imm_s(instr: int) -> int:
    return isa.sign_extend(((instr >> 25) << 5) | ((instr >> 7) & 0x1F), 12)


def imm_b(instr: int) -> int:
    value = (
        (((instr >> 31) & 1) << 12)
        | (((instr >> 7) & 1) << 11)
        | (((instr >> 25) & 0x3F) << 5)
        | (((instr >> 8) & 0xF) << 1)
    )
    return isa.sign_extend(value, 13)


def imm_u(instr: int) -> int:
    return isa.sign_extend(instr & 0xFFFFF000, 32)


def imm_j(instr: int) -> int:
    value = (
        (((instr >> 31) & 1) << 20)
        | (((instr >> 12) & 0xFF) << 12)
        | (((instr >> 20) & 1) << 11)
        | (((instr >> 21) & 0x3FF) << 1)
    )
    return isa.sign_extend(value, 21)


def fields(instr: int) -> dict:
    return {
        "opcode": instr & 0x7F,
        "rd": (instr >> 7) & 0x1F,
        "funct3": (instr >> 12) & 0x7,
        "rs1": (instr >> 15) & 0x1F,
        "rs2": (instr >> 20) & 0x1F,
        "funct7": (instr >> 25) & 0x7F,
    }
