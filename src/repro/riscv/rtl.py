"""LHDL source of the 5-stage RV64I core (the paper's PGAS node CPU).

The core follows the paper's structure (§IV): each pipeline stage is
its own module, instantiated by a single parent (``rv_core``), so
LiveSim places each in its own hot-swappable compiled unit.  A node
couples the core with 32 KB of unified local memory (``rv_memory``);
the mesh (see :mod:`repro.riscv.pgas`) replicates nodes and connects
their remote-store channels.

Microarchitecture summary:

* classic IF / ID / EX / MEM / WB with full forwarding
  (EX<-MEM via the ex/mem latch, EX<-WB via the writeback bus),
  one-cycle load-use stall, branches/jumps resolved in EX
  (2-cycle redirect penalty);
* ``ecall``/``ebreak`` halt the hart (sets the sticky ``halted`` flag);
* unified little-endian memory, word (64-bit) organized, with a fetch
  port, a data port (sub-word read-modify-write stores), and an
  external write port for remote PGAS stores;
* remote stores leave through a one-entry request register with
  backpressure (the core stalls only when a second remote store issues
  before the first is accepted by the interconnect); remote loads are
  architecturally unsupported (PGAS software polls local memory).
"""

from __future__ import annotations

RV_IF = r"""
module rv_if (
  input clk,
  input rst,
  input stall,
  input redirect_valid,
  input [63:0] redirect_pc,
  output [63:0] pc
);
  reg [63:0] pc_q;
  assign pc = pc_q;
  always @(posedge clk) begin
    if (rst)
      pc_q <= 64'd0;
    else if (redirect_valid)
      pc_q <= redirect_pc;
    else if (!stall)
      pc_q <= pc_q + 64'd4;
  end
endmodule
"""

RV_MEMORY = r"""
module rv_memory #(parameter WORDS = 4096) (
  input clk,
  input [63:0] fetch_addr,
  output [31:0] fetch_data,
  input [63:0] d_addr,
  input [63:0] d_wdata,
  input [1:0] d_size,
  input d_we,
  output [63:0] d_rdata,
  input ext_we,
  input [63:0] ext_addr,
  input [63:0] ext_data
);
  reg [63:0] mem [0:WORDS-1];
  wire [63:0] fetch_dword;
  assign fetch_dword = mem[fetch_addr[14:3]];
  assign fetch_data = fetch_addr[2] ? fetch_dword[63:32] : fetch_dword[31:0];
  assign d_rdata = mem[d_addr[14:3]];
  wire [5:0] wsh;
  assign wsh = {d_addr[2:0], 3'b000};
  wire [63:0] wmask;
  assign wmask = (d_size == 2'd0) ? 64'hff
               : (d_size == 2'd1) ? 64'hffff
               : (d_size == 2'd2) ? 64'hffffffff
               : 64'hffffffffffffffff;
  wire [63:0] merged;
  assign merged = (d_rdata & ~(wmask << wsh)) | ((d_wdata & wmask) << wsh);
  always @(posedge clk) begin
    if (d_we)
      mem[d_addr[14:3]] <= merged;
    if (ext_we)
      mem[ext_addr[14:3]] <= ext_data;
  end
endmodule
"""

RV_ID = r"""
module rv_id (
  input clk,
  input rst,
  input stall,
  input flush,
  input in_valid,
  input [31:0] in_instr,
  input [63:0] in_pc,
  input wb_we,
  input [4:0] wb_rd,
  input [63:0] wb_data,
  output out_valid,
  output [63:0] out_pc,
  output [4:0] rs1,
  output [4:0] rs2,
  output [4:0] rd,
  output [63:0] rs1_val,
  output [63:0] rs2_val,
  output [63:0] imm,
  output [3:0] alu_op,
  output alu_src_imm,
  output alu_src_pc,
  output is_jal,
  output is_jalr,
  output is_branch,
  output [2:0] branch_op,
  output mem_read,
  output mem_write,
  output [1:0] mem_size,
  output mem_unsigned,
  output reg_write,
  output is_w_op,
  output is_halt
);
  reg ifid_valid;
  reg [31:0] ifid_instr;
  reg [63:0] ifid_pc;
  reg [63:0] rf [0:31];

  always @(posedge clk) begin
    if (rst || flush)
      ifid_valid <= 1'b0;
    else if (!stall) begin
      ifid_valid <= in_valid;
      ifid_instr <= in_instr;
      ifid_pc <= in_pc;
    end
    if (wb_we && (wb_rd != 5'd0))
      rf[wb_rd] <= wb_data;
  end

  wire [6:0] opcode;
  assign opcode = ifid_instr[6:0];
  wire [2:0] funct3;
  assign funct3 = ifid_instr[14:12];
  wire bit30;
  assign bit30 = ifid_instr[30];

  assign out_valid = ifid_valid;
  assign out_pc = ifid_pc;
  assign rs1 = ifid_instr[19:15];
  assign rs2 = ifid_instr[24:20];
  assign rd = ifid_instr[11:7];

  // Register read with write-back bypass; x0 is hardwired to zero.
  wire [63:0] rf_rs1;
  assign rf_rs1 = rf[rs1];
  wire [63:0] rf_rs2;
  assign rf_rs2 = rf[rs2];
  assign rs1_val = (rs1 == 5'd0) ? 64'd0
                 : (wb_we && (wb_rd == rs1)) ? wb_data
                 : rf_rs1;
  assign rs2_val = (rs2 == 5'd0) ? 64'd0
                 : (wb_we && (wb_rd == rs2)) ? wb_data
                 : rf_rs2;

  // Immediates per format.
  wire [63:0] imm_i;
  assign imm_i = {{52{ifid_instr[31]}}, ifid_instr[31:20]};
  wire [63:0] imm_s;
  assign imm_s = {{52{ifid_instr[31]}}, ifid_instr[31:25], ifid_instr[11:7]};
  wire [63:0] imm_b;
  assign imm_b = {{51{ifid_instr[31]}}, ifid_instr[31], ifid_instr[7],
                  ifid_instr[30:25], ifid_instr[11:8], 1'b0};
  wire [63:0] imm_u;
  assign imm_u = {{32{ifid_instr[31]}}, ifid_instr[31:12], 12'b000000000000};
  wire [63:0] imm_j;
  assign imm_j = {{43{ifid_instr[31]}}, ifid_instr[31], ifid_instr[19:12],
                  ifid_instr[20], ifid_instr[30:21], 1'b0};

  // ALU operation encoding:
  // 0 add, 1 sub, 2 sll, 3 slt, 4 sltu, 5 xor, 6 srl, 7 sra,
  // 8 or, 9 and, 10 pass-b (lui).
  reg [3:0] dec_alu_op;
  reg dec_src_imm;
  reg dec_src_pc;
  reg dec_jal;
  reg dec_jalr;
  reg dec_branch;
  reg dec_mem_read;
  reg dec_mem_write;
  reg dec_mem_unsigned;
  reg [1:0] dec_mem_size;
  reg dec_reg_write;
  reg dec_w_op;
  reg dec_halt;
  reg [63:0] dec_imm;

  always @(*) begin
    case (opcode)
      7'b0110111: begin  // LUI
        dec_reg_write = 1'b1;
        dec_alu_op = 4'd10;
        dec_src_imm = 1'b1;
        dec_imm = imm_u;
      end
      7'b0010111: begin  // AUIPC
        dec_reg_write = 1'b1;
        dec_alu_op = 4'd0;
        dec_src_imm = 1'b1;
        dec_src_pc = 1'b1;
        dec_imm = imm_u;
      end
      7'b1101111: begin  // JAL
        dec_reg_write = 1'b1;
        dec_jal = 1'b1;
        dec_imm = imm_j;
      end
      7'b1100111: begin  // JALR
        dec_reg_write = 1'b1;
        dec_jalr = 1'b1;
        dec_imm = imm_i;
      end
      7'b1100011: begin  // branches
        dec_branch = 1'b1;
        dec_imm = imm_b;
      end
      7'b0000011: begin  // loads
        dec_reg_write = 1'b1;
        dec_mem_read = 1'b1;
        dec_src_imm = 1'b1;
        dec_imm = imm_i;
        dec_mem_size = funct3[1:0];
        dec_mem_unsigned = funct3[2];
      end
      7'b0100011: begin  // stores
        dec_mem_write = 1'b1;
        dec_src_imm = 1'b1;
        dec_imm = imm_s;
        dec_mem_size = funct3[1:0];
      end
      7'b0010011: begin  // OP-IMM
        dec_reg_write = 1'b1;
        dec_src_imm = 1'b1;
        dec_imm = imm_i;
        case (funct3)
          3'b000: dec_alu_op = 4'd0;
          3'b001: dec_alu_op = 4'd2;
          3'b010: dec_alu_op = 4'd3;
          3'b011: dec_alu_op = 4'd4;
          3'b100: dec_alu_op = 4'd5;
          3'b101: dec_alu_op = bit30 ? 4'd7 : 4'd6;
          3'b110: dec_alu_op = 4'd8;
          3'b111: dec_alu_op = 4'd9;
        endcase
      end
      7'b0110011: begin  // OP
        dec_reg_write = 1'b1;
        case (funct3)
          3'b000: dec_alu_op = bit30 ? 4'd1 : 4'd0;
          3'b001: dec_alu_op = 4'd2;
          3'b010: dec_alu_op = 4'd3;
          3'b011: dec_alu_op = 4'd4;
          3'b100: dec_alu_op = 4'd5;
          3'b101: dec_alu_op = bit30 ? 4'd7 : 4'd6;
          3'b110: dec_alu_op = 4'd8;
          3'b111: dec_alu_op = 4'd9;
        endcase
      end
      7'b0011011: begin  // OP-IMM-32
        dec_reg_write = 1'b1;
        dec_src_imm = 1'b1;
        dec_w_op = 1'b1;
        dec_imm = imm_i;
        case (funct3)
          3'b000: dec_alu_op = 4'd0;
          3'b001: dec_alu_op = 4'd2;
          3'b101: dec_alu_op = bit30 ? 4'd7 : 4'd6;
          default: dec_alu_op = 4'd0;
        endcase
      end
      7'b0111011: begin  // OP-32
        dec_reg_write = 1'b1;
        dec_w_op = 1'b1;
        case (funct3)
          3'b000: dec_alu_op = bit30 ? 4'd1 : 4'd0;
          3'b001: dec_alu_op = 4'd2;
          3'b101: dec_alu_op = bit30 ? 4'd7 : 4'd6;
          default: dec_alu_op = 4'd0;
        endcase
      end
      7'b1110011: begin  // SYSTEM: ecall/ebreak halt the hart
        dec_halt = 1'b1;
      end
      default: begin  // fence and unknown opcodes retire as no-ops
        dec_alu_op = 4'd0;
      end
    endcase
  end

  assign alu_op = dec_alu_op;
  assign alu_src_imm = dec_src_imm;
  assign alu_src_pc = dec_src_pc;
  assign is_jal = dec_jal;
  assign is_jalr = dec_jalr;
  assign is_branch = dec_branch;
  assign branch_op = funct3;
  assign mem_read = dec_mem_read;
  assign mem_write = dec_mem_write;
  assign mem_size = dec_mem_size;
  assign mem_unsigned = dec_mem_unsigned;
  assign reg_write = dec_reg_write;
  assign is_w_op = dec_w_op;
  assign is_halt = dec_halt;
  assign imm = dec_imm;
endmodule
"""

RV_EX = r"""
module rv_ex (
  input clk,
  input rst,
  input hold,
  input flush,
  input bubble,
  input in_valid,
  input [63:0] in_pc,
  input [4:0] in_rs1,
  input [4:0] in_rs2,
  input [4:0] in_rd,
  input [63:0] in_rs1_val,
  input [63:0] in_rs2_val,
  input [63:0] in_imm,
  input [3:0] in_alu_op,
  input in_src_imm,
  input in_src_pc,
  input in_jal,
  input in_jalr,
  input in_branch,
  input [2:0] in_branch_op,
  input in_mem_read,
  input in_mem_write,
  input [1:0] in_mem_size,
  input in_mem_unsigned,
  input in_reg_write,
  input in_w_op,
  input in_halt,
  input wb_we,
  input [4:0] wb_rd,
  input [63:0] wb_data,
  output redirect_valid,
  output [63:0] redirect_pc,
  output ex_is_load,
  output [4:0] ex_rd,
  output m_valid,
  output m_reg_write,
  output m_mem_read,
  output m_mem_write,
  output [1:0] m_mem_size,
  output m_mem_unsigned,
  output [4:0] m_rd,
  output [63:0] m_alu,
  output [63:0] m_sdata,
  output m_halt
);
  // ID/EX latch.
  reg e_valid;
  reg [63:0] e_pc;
  reg [4:0] e_rs1;
  reg [4:0] e_rs2;
  reg [4:0] e_rd;
  reg [63:0] e_rs1_val;
  reg [63:0] e_rs2_val;
  reg [63:0] e_imm;
  reg [3:0] e_alu_op;
  reg e_src_imm;
  reg e_src_pc;
  reg e_jal;
  reg e_jalr;
  reg e_branch;
  reg [2:0] e_branch_op;
  reg e_mem_read;
  reg e_mem_write;
  reg [1:0] e_mem_size;
  reg e_mem_unsigned;
  reg e_reg_write;
  reg e_w_op;
  reg e_halt;

  // EX/MEM latch.
  reg x_valid;
  reg x_reg_write;
  reg x_mem_read;
  reg x_mem_write;
  reg [1:0] x_mem_size;
  reg x_mem_unsigned;
  reg [4:0] x_rd;
  reg [63:0] x_alu;
  reg [63:0] x_sdata;
  reg x_halt;

  assign ex_is_load = e_valid && e_mem_read;
  assign ex_rd = e_rd;

  // Forwarding: EX/MEM ALU result has priority over the WB bus.
  wire fwd_a_mem;
  assign fwd_a_mem = x_valid && x_reg_write && !x_mem_read
                   && (x_rd != 5'd0) && (x_rd == e_rs1);
  wire fwd_a_wb;
  assign fwd_a_wb = wb_we && (wb_rd != 5'd0) && (wb_rd == e_rs1);
  wire [63:0] op_a;
  assign op_a = (e_rs1 == 5'd0) ? 64'd0
              : fwd_a_mem ? x_alu
              : fwd_a_wb ? wb_data
              : e_rs1_val;
  wire fwd_b_mem;
  assign fwd_b_mem = x_valid && x_reg_write && !x_mem_read
                   && (x_rd != 5'd0) && (x_rd == e_rs2);
  wire fwd_b_wb;
  assign fwd_b_wb = wb_we && (wb_rd != 5'd0) && (wb_rd == e_rs2);
  wire [63:0] op_b_reg;
  assign op_b_reg = (e_rs2 == 5'd0) ? 64'd0
                  : fwd_b_mem ? x_alu
                  : fwd_b_wb ? wb_data
                  : e_rs2_val;

  wire [63:0] alu_a;
  assign alu_a = e_src_pc ? e_pc : op_a;
  wire [63:0] alu_b;
  assign alu_b = e_src_imm ? e_imm : op_b_reg;

  // ALU.
  wire [5:0] sh64;
  assign sh64 = alu_b[5:0];
  wire [4:0] sh32;
  assign sh32 = alu_b[4:0];
  wire [31:0] a32;
  assign a32 = alu_a[31:0];
  reg [63:0] alu_full;
  always @(*) begin
    case (e_alu_op)
      4'd0: alu_full = alu_a + alu_b;
      4'd1: alu_full = alu_a - alu_b;
      4'd2: alu_full = e_w_op ? {32'd0, (a32 << sh32)} : (alu_a << sh64);
      4'd3: alu_full = ($signed(alu_a) < $signed(alu_b)) ? 64'd1 : 64'd0;
      4'd4: alu_full = (alu_a < alu_b) ? 64'd1 : 64'd0;
      4'd5: alu_full = alu_a ^ alu_b;
      4'd6: alu_full = e_w_op ? {32'd0, (a32 >> sh32)} : (alu_a >> sh64);
      4'd7: alu_full = e_w_op
          ? {32'd0, ($signed(a32) >>> sh32)}
          : ($signed(alu_a) >>> sh64);
      4'd8: alu_full = alu_a | alu_b;
      4'd9: alu_full = alu_a & alu_b;
      4'd10: alu_full = alu_b;
      default: alu_full = 64'd0;
    endcase
  end
  wire [63:0] alu_w;
  assign alu_w = {{32{alu_full[31]}}, alu_full[31:0]};
  wire [63:0] alu_result;
  assign alu_result = e_w_op ? alu_w : alu_full;

  // Branch resolution.
  wire [63:0] sub_ab;
  assign sub_ab = op_a - op_b_reg;
  wire cmp_eq;
  assign cmp_eq = op_a == op_b_reg;
  wire cmp_lt;
  assign cmp_lt = $signed(op_a) < $signed(op_b_reg);
  wire cmp_ltu;
  assign cmp_ltu = op_a < op_b_reg;
  reg branch_taken;
  always @(*) begin
    case (e_branch_op)
      3'b000: branch_taken = cmp_eq;
      3'b001: branch_taken = !cmp_eq;
      3'b100: branch_taken = cmp_lt;
      3'b101: branch_taken = !cmp_lt;
      3'b110: branch_taken = cmp_ltu;
      3'b111: branch_taken = !cmp_ltu;
      default: branch_taken = 1'b0;
    endcase
  end

  wire do_branch;
  assign do_branch = e_valid && e_branch && branch_taken;
  assign redirect_valid = (e_valid && (e_jal || e_jalr)) || do_branch;
  assign redirect_pc = e_jalr ? ((op_a + e_imm) & ~64'd1) : (e_pc + e_imm);

  wire [63:0] link;
  assign link = e_pc + 64'd4;
  wire [63:0] result;
  assign result = (e_jal || e_jalr) ? link : alu_result;

  always @(posedge clk) begin
    if (rst || flush)
      e_valid <= 1'b0;
    else if (!hold) begin
      if (bubble)
        e_valid <= 1'b0;
      else begin
        e_valid <= in_valid;
        e_pc <= in_pc;
        e_rs1 <= in_rs1;
        e_rs2 <= in_rs2;
        e_rd <= in_rd;
        e_rs1_val <= in_rs1_val;
        e_rs2_val <= in_rs2_val;
        e_imm <= in_imm;
        e_alu_op <= in_alu_op;
        e_src_imm <= in_src_imm;
        e_src_pc <= in_src_pc;
        e_jal <= in_jal;
        e_jalr <= in_jalr;
        e_branch <= in_branch;
        e_branch_op <= in_branch_op;
        e_mem_read <= in_mem_read;
        e_mem_write <= in_mem_write;
        e_mem_size <= in_mem_size;
        e_mem_unsigned <= in_mem_unsigned;
        e_reg_write <= in_reg_write;
        e_w_op <= in_w_op;
        e_halt <= in_halt;
      end
    end
    if (rst) begin
      x_valid <= 1'b0;
    end else if (!hold) begin
      x_valid <= e_valid;
      x_reg_write <= e_reg_write;
      x_mem_read <= e_mem_read;
      x_mem_write <= e_mem_write;
      x_mem_size <= e_mem_size;
      x_mem_unsigned <= e_mem_unsigned;
      x_rd <= e_rd;
      x_alu <= e_mem_write ? (op_a + e_imm) : result;
      x_sdata <= op_b_reg;
      x_halt <= e_halt;
    end
  end

  assign m_valid = x_valid;
  assign m_reg_write = x_reg_write;
  assign m_mem_read = x_mem_read;
  assign m_mem_write = x_mem_write;
  assign m_mem_size = x_mem_size;
  assign m_mem_unsigned = x_mem_unsigned;
  assign m_rd = x_rd;
  assign m_alu = x_alu;
  assign m_sdata = x_sdata;
  assign m_halt = x_halt;
endmodule
"""

RV_MEM = r"""
module rv_mem (
  input m_valid,
  input m_reg_write,
  input m_mem_read,
  input m_mem_write,
  input [1:0] m_mem_size,
  input m_mem_unsigned,
  input [4:0] m_rd,
  input [63:0] m_alu,
  input [63:0] m_sdata,
  input m_halt,
  input [63:0] d_rdata,
  output [63:0] d_addr,
  output [63:0] d_wdata,
  output [1:0] d_size,
  output d_we,
  output w_valid,
  output w_reg_write,
  output [4:0] w_rd,
  output [63:0] w_value,
  output w_halt
);
  assign d_addr = m_alu;
  assign d_wdata = m_sdata;
  assign d_size = m_mem_size;
  assign d_we = m_valid && m_mem_write;

  wire [5:0] rsh;
  assign rsh = {m_alu[2:0], 3'b000};
  wire [63:0] raw;
  assign raw = d_rdata >> rsh;
  wire sb;
  assign sb = m_mem_unsigned ? 1'b0 : raw[7];
  wire sh;
  assign sh = m_mem_unsigned ? 1'b0 : raw[15];
  wire sw;
  assign sw = m_mem_unsigned ? 1'b0 : raw[31];
  wire [63:0] load_b;
  assign load_b = {{56{sb}}, raw[7:0]};
  wire [63:0] load_h;
  assign load_h = {{48{sh}}, raw[15:0]};
  wire [63:0] load_w;
  assign load_w = {{32{sw}}, raw[31:0]};
  wire [63:0] load_value;
  assign load_value = (m_mem_size == 2'd0) ? load_b
                    : (m_mem_size == 2'd1) ? load_h
                    : (m_mem_size == 2'd2) ? load_w
                    : d_rdata;

  assign w_valid = m_valid;
  assign w_reg_write = m_valid && m_reg_write;
  assign w_rd = m_rd;
  assign w_value = m_mem_read ? load_value : m_alu;
  assign w_halt = m_valid && m_halt;
endmodule
"""

RV_WB = r"""
module rv_wb (
  input clk,
  input rst,
  input hold,
  input in_valid,
  input in_reg_write,
  input [4:0] in_rd,
  input [63:0] in_value,
  input in_halt,
  output wb_we,
  output [4:0] wb_rd,
  output [63:0] wb_data,
  output halted,
  output [63:0] retired
);
  reg w_valid;
  reg w_we;
  reg [4:0] w_rd;
  reg [63:0] w_value;
  reg halted_q;
  reg [63:0] retired_q;

  always @(posedge clk) begin
    if (rst) begin
      w_valid <= 1'b0;
      w_we <= 1'b0;
      halted_q <= 1'b0;
      retired_q <= 64'd0;
    end else if (!hold) begin
      w_valid <= in_valid;
      w_we <= in_reg_write;
      w_rd <= in_rd;
      w_value <= in_value;
      if (in_halt)
        halted_q <= 1'b1;
      if (in_valid)
        retired_q <= retired_q + 64'd1;
    end
  end

  assign wb_we = w_valid && w_we;
  assign wb_rd = w_rd;
  assign wb_data = w_value;
  assign halted = halted_q;
  assign retired = retired_q;
endmodule
"""

RV_CORE = r"""
module rv_core (
  input clk,
  input rst,
  input ext_stall,
  input [31:0] fetch_data,
  input [63:0] d_rdata,
  output [63:0] fetch_addr,
  output [63:0] d_addr,
  output [63:0] d_wdata,
  output [1:0] d_size,
  output d_we,
  output halted,
  output [63:0] dbg_pc,
  output [63:0] retired
);
  wire [63:0] pc;
  wire redirect_valid;
  wire [63:0] redirect_pc;
  wire ex_is_load;
  wire [4:0] ex_rd;
  wire id_valid;
  wire [63:0] id_pc;
  wire [4:0] id_rs1;
  wire [4:0] id_rs2;
  wire [4:0] id_rd;
  wire [63:0] id_rs1_val;
  wire [63:0] id_rs2_val;
  wire [63:0] id_imm;
  wire [3:0] id_alu_op;
  wire id_src_imm;
  wire id_src_pc;
  wire id_jal;
  wire id_jalr;
  wire id_branch;
  wire [2:0] id_branch_op;
  wire id_mem_read;
  wire id_mem_write;
  wire [1:0] id_mem_size;
  wire id_mem_unsigned;
  wire id_reg_write;
  wire id_w_op;
  wire id_halt;
  wire m_valid;
  wire m_reg_write;
  wire m_mem_read;
  wire m_mem_write;
  wire [1:0] m_mem_size;
  wire m_mem_unsigned;
  wire [4:0] m_rd;
  wire [63:0] m_alu;
  wire [63:0] m_sdata;
  wire m_halt;
  wire w_valid;
  wire w_reg_write;
  wire [4:0] w_rd;
  wire [63:0] w_value;
  wire w_halt;
  wire wb_we;
  wire [4:0] wb_rd;
  wire [63:0] wb_data;

  // Hazard network: one-cycle load-use stall; remote-store
  // backpressure and a sticky halt freeze the whole pipe.
  wire load_use;
  assign load_use = ex_is_load && id_valid && (ex_rd != 5'd0)
                  && ((ex_rd == id_rs1) || (ex_rd == id_rs2));
  wire freeze;
  assign freeze = ext_stall || halted;
  wire stall_front;
  assign stall_front = load_use || freeze;
  wire redirect_eff;
  assign redirect_eff = redirect_valid && !freeze;

  rv_if u_if (
    .clk(clk), .rst(rst),
    .stall(stall_front),
    .redirect_valid(redirect_eff),
    .redirect_pc(redirect_pc),
    .pc(pc)
  );
  assign fetch_addr = pc;
  assign dbg_pc = pc;

  rv_id u_id (
    .clk(clk), .rst(rst),
    .stall(stall_front),
    .flush(redirect_eff),
    .in_valid(1'b1),
    .in_instr(fetch_data),
    .in_pc(pc),
    .wb_we(wb_we), .wb_rd(wb_rd), .wb_data(wb_data),
    .out_valid(id_valid), .out_pc(id_pc),
    .rs1(id_rs1), .rs2(id_rs2), .rd(id_rd),
    .rs1_val(id_rs1_val), .rs2_val(id_rs2_val),
    .imm(id_imm), .alu_op(id_alu_op),
    .alu_src_imm(id_src_imm), .alu_src_pc(id_src_pc),
    .is_jal(id_jal), .is_jalr(id_jalr),
    .is_branch(id_branch), .branch_op(id_branch_op),
    .mem_read(id_mem_read), .mem_write(id_mem_write),
    .mem_size(id_mem_size), .mem_unsigned(id_mem_unsigned),
    .reg_write(id_reg_write), .is_w_op(id_w_op), .is_halt(id_halt)
  );

  rv_ex u_ex (
    .clk(clk), .rst(rst),
    .hold(freeze),
    .flush(redirect_eff),
    .bubble(load_use),
    .in_valid(id_valid), .in_pc(id_pc),
    .in_rs1(id_rs1), .in_rs2(id_rs2), .in_rd(id_rd),
    .in_rs1_val(id_rs1_val), .in_rs2_val(id_rs2_val),
    .in_imm(id_imm), .in_alu_op(id_alu_op),
    .in_src_imm(id_src_imm), .in_src_pc(id_src_pc),
    .in_jal(id_jal), .in_jalr(id_jalr),
    .in_branch(id_branch), .in_branch_op(id_branch_op),
    .in_mem_read(id_mem_read), .in_mem_write(id_mem_write),
    .in_mem_size(id_mem_size), .in_mem_unsigned(id_mem_unsigned),
    .in_reg_write(id_reg_write), .in_w_op(id_w_op), .in_halt(id_halt),
    .wb_we(wb_we), .wb_rd(wb_rd), .wb_data(wb_data),
    .redirect_valid(redirect_valid), .redirect_pc(redirect_pc),
    .ex_is_load(ex_is_load), .ex_rd(ex_rd),
    .m_valid(m_valid), .m_reg_write(m_reg_write),
    .m_mem_read(m_mem_read), .m_mem_write(m_mem_write),
    .m_mem_size(m_mem_size), .m_mem_unsigned(m_mem_unsigned),
    .m_rd(m_rd), .m_alu(m_alu), .m_sdata(m_sdata), .m_halt(m_halt)
  );

  wire [63:0] mem_d_addr;
  wire mem_d_we;
  rv_mem u_mem (
    .m_valid(m_valid), .m_reg_write(m_reg_write),
    .m_mem_read(m_mem_read), .m_mem_write(m_mem_write),
    .m_mem_size(m_mem_size), .m_mem_unsigned(m_mem_unsigned),
    .m_rd(m_rd), .m_alu(m_alu), .m_sdata(m_sdata), .m_halt(m_halt),
    .d_rdata(d_rdata),
    .d_addr(mem_d_addr), .d_wdata(d_wdata), .d_size(d_size),
    .d_we(mem_d_we),
    .w_valid(w_valid), .w_reg_write(w_reg_write),
    .w_rd(w_rd), .w_value(w_value), .w_halt(w_halt)
  );
  assign d_addr = mem_d_addr;
  assign d_we = mem_d_we && !halted;

  rv_wb u_wb (
    .clk(clk), .rst(rst),
    .hold(freeze),
    .in_valid(w_valid), .in_reg_write(w_reg_write),
    .in_rd(w_rd), .in_value(w_value), .in_halt(w_halt),
    .wb_we(wb_we), .wb_rd(wb_rd), .wb_data(wb_data),
    .halted(halted), .retired(retired)
  );
endmodule
"""

CORE_MODULES_SOURCE = (
    RV_IF + RV_MEMORY + RV_ID + RV_EX + RV_MEM + RV_WB + RV_CORE
)


def core_source() -> str:
    """The complete core (all stage modules + rv_core)."""
    return CORE_MODULES_SOURCE
