"""PGAS node and NxN multicore top (paper §IV).

Each node couples one RV64I core with 32 KB of local memory and a
remote-store port.  Nodes are joined by a slotted unidirectional ring
NoC: one registered slot per node, one hop per cycle, delivery when the
slot's destination matches.

Substitution note (recorded in DESIGN.md): the paper arranges nodes in
a 2-D mesh.  The interconnect topology is irrelevant to every result we
reproduce — compile-time scaling, code-footprint behaviour, hot-reload
latency — all of which depend only on module reuse across N**2 nodes
and on remote stores working.  The ring keeps the interconnect RTL to
one small shared module (which *strengthens* the code-reuse story the
same way the paper's mesh does).

Global address map::

    [0x0000, 0x8000)                 this node's local 32 KB
    0x100_0000 | (node << 15) | off  node's window in the global space
                                     (bit 24 = global flag, bits
                                     [23:15] select the node)

A global address whose node field matches the issuing node is served
locally, so position-independent code can always use global addresses.

Remote stores must be 8-byte (``sd``) and 8-byte aligned; remote loads
are architecturally unsupported (software polls local memory), exactly
the Parallella/Celerity-style discipline the paper cites.
"""

from __future__ import annotations

from typing import List

from .rtl import CORE_MODULES_SOURCE

LOCAL_MEM_BYTES = 32 * 1024
LOCAL_MEM_WORDS = LOCAL_MEM_BYTES // 8
NODE_SHIFT = 15
NODE_FIELD_MSB = 23
GLOBAL_FLAG = 1 << 24


def global_address(node: int, offset: int) -> int:
    """Address of ``offset`` within ``node``'s window, as seen from any
    node (including itself — matching node fields are served locally)."""
    if not 0 <= offset < LOCAL_MEM_BYTES:
        raise ValueError(f"offset {offset:#x} outside local memory")
    if node < 0 or node > 511:
        raise ValueError(f"node {node} out of range")
    return GLOBAL_FLAG | (node << NODE_SHIFT) | offset


PGAS_NODE = r"""
module pgas_node #(parameter WORDS = 4096) (
  input clk,
  input rst,
  input [63:0] node_id,
  output req_valid,
  output [63:0] req_dest,
  output [63:0] req_addr,
  output [63:0] req_data,
  input req_ack,
  input ext_we,
  input [63:0] ext_addr,
  input [63:0] ext_data,
  output halted,
  output [63:0] dbg_pc,
  output [63:0] retired
);
  wire [63:0] fetch_addr;
  wire [31:0] fetch_data;
  wire [63:0] d_addr;
  wire [63:0] d_wdata;
  wire [1:0] d_size;
  wire d_we;
  wire [63:0] d_rdata;

  // Remote decode: global addresses (bit 24 set) whose node field
  // differs from ours leave the node; everything else is local.
  wire addr_global;
  assign addr_global = d_addr[24];
  wire [8:0] dest_field;
  assign dest_field = d_addr[23:15];
  wire is_remote;
  assign is_remote = addr_global && (dest_field != node_id[8:0]);
  wire remote_store;
  assign remote_store = d_we && is_remote;
  wire local_we;
  assign local_we = d_we && !is_remote;

  // One-entry outgoing request register with backpressure.
  reg rq_valid;
  reg [63:0] rq_dest;
  reg [63:0] rq_addr;
  reg [63:0] rq_data;
  wire can_accept;
  assign can_accept = !rq_valid || req_ack;
  wire ext_stall;
  assign ext_stall = remote_store && !can_accept;
  always @(posedge clk) begin
    if (rst)
      rq_valid <= 1'b0;
    else begin
      if (req_ack)
        rq_valid <= 1'b0;
      if (remote_store && can_accept) begin
        rq_valid <= 1'b1;
        rq_dest <= {55'd0, dest_field};
        rq_addr <= {49'd0, d_addr[14:0]};
        rq_data <= d_wdata;
      end
    end
  end
  assign req_valid = rq_valid;
  assign req_dest = rq_dest;
  assign req_addr = rq_addr;
  assign req_data = rq_data;

  rv_memory #(.WORDS(WORDS)) u_mem (
    .clk(clk),
    .fetch_addr(fetch_addr),
    .fetch_data(fetch_data),
    .d_addr(d_addr),
    .d_wdata(d_wdata),
    .d_size(d_size),
    .d_we(local_we),
    .d_rdata(d_rdata),
    .ext_we(ext_we),
    .ext_addr(ext_addr),
    .ext_data(ext_data)
  );

  rv_core u_core (
    .clk(clk),
    .rst(rst),
    .ext_stall(ext_stall),
    .fetch_data(fetch_data),
    .d_rdata(d_rdata),
    .fetch_addr(fetch_addr),
    .d_addr(d_addr),
    .d_wdata(d_wdata),
    .d_size(d_size),
    .d_we(d_we),
    .halted(halted),
    .dbg_pc(dbg_pc),
    .retired(retired)
  );
endmodule
"""

RING_STOP = r"""
module ring_stop (
  input clk,
  input rst,
  input [63:0] my_id,
  input rin_valid,
  input [63:0] rin_dest,
  input [63:0] rin_addr,
  input [63:0] rin_data,
  output rout_valid,
  output [63:0] rout_dest,
  output [63:0] rout_addr,
  output [63:0] rout_data,
  input req_valid,
  input [63:0] req_dest,
  input [63:0] req_addr,
  input [63:0] req_data,
  output req_ack,
  output ext_we,
  output [63:0] ext_addr,
  output [63:0] ext_data
);
  reg r_valid;
  reg [63:0] r_dest;
  reg [63:0] r_addr;
  reg [63:0] r_data;

  wire deliver;
  assign deliver = rin_valid && (rin_dest == my_id);
  assign ext_we = deliver;
  assign ext_addr = rin_addr;
  assign ext_data = rin_data;

  // The outgoing slot is free when the incoming one is empty or being
  // delivered here; local injection wins the free slot.
  wire slot_free;
  assign slot_free = !rin_valid || deliver;
  assign req_ack = req_valid && slot_free;

  always @(posedge clk) begin
    if (rst)
      r_valid <= 1'b0;
    else if (req_ack) begin
      r_valid <= 1'b1;
      r_dest <= req_dest;
      r_addr <= req_addr;
      r_data <= req_data;
    end else if (rin_valid && !deliver) begin
      r_valid <= 1'b1;
      r_dest <= rin_dest;
      r_addr <= rin_addr;
      r_data <= rin_data;
    end else
      r_valid <= 1'b0;
  end

  assign rout_valid = r_valid;
  assign rout_dest = r_dest;
  assign rout_addr = r_addr;
  assign rout_data = r_data;
endmodule
"""


def mesh_top_name(n: int) -> str:
    return f"pgas_mesh_{n}x{n}"


def _mesh_top_source(n: int) -> str:
    """Generate the NxN top module: N**2 nodes + N**2 ring stops."""
    count = n * n
    lines: List[str] = []
    lines.append(f"module {mesh_top_name(n)} (")
    lines.append("  input clk,")
    lines.append("  input rst,")
    lines.append("  output all_halted,")
    lines.append("  output [63:0] total_retired")
    lines.append(");")
    for i in range(count):
        lines.append(f"  wire h_{i};")
        lines.append(f"  wire [63:0] pc_{i};")
        lines.append(f"  wire [63:0] ret_{i};")
        lines.append(f"  wire rq_v_{i};")
        lines.append(f"  wire [63:0] rq_dest_{i};")
        lines.append(f"  wire [63:0] rq_addr_{i};")
        lines.append(f"  wire [63:0] rq_data_{i};")
        lines.append(f"  wire rq_ack_{i};")
        lines.append(f"  wire xw_{i};")
        lines.append(f"  wire [63:0] xa_{i};")
        lines.append(f"  wire [63:0] xd_{i};")
        lines.append(f"  wire rv_{i};")
        lines.append(f"  wire [63:0] rd_{i};")
        lines.append(f"  wire [63:0] ra_{i};")
        lines.append(f"  wire [63:0] rx_{i};")
    for i in range(count):
        prev = (i - 1) % count
        lines.append(f"  pgas_node n_{i} (")
        lines.append("    .clk(clk), .rst(rst),")
        lines.append(f"    .node_id(64'd{i}),")
        lines.append(f"    .req_valid(rq_v_{i}), .req_dest(rq_dest_{i}),")
        lines.append(f"    .req_addr(rq_addr_{i}), .req_data(rq_data_{i}),")
        lines.append(f"    .req_ack(rq_ack_{i}),")
        lines.append(f"    .ext_we(xw_{i}), .ext_addr(xa_{i}), .ext_data(xd_{i}),")
        lines.append(f"    .halted(h_{i}), .dbg_pc(pc_{i}), .retired(ret_{i})")
        lines.append("  );")
        lines.append(f"  ring_stop r_{i} (")
        lines.append("    .clk(clk), .rst(rst),")
        lines.append(f"    .my_id(64'd{i}),")
        lines.append(
            f"    .rin_valid(rv_{prev}), .rin_dest(rd_{prev}),"
            f" .rin_addr(ra_{prev}), .rin_data(rx_{prev}),"
        )
        lines.append(
            f"    .rout_valid(rv_{i}), .rout_dest(rd_{i}),"
            f" .rout_addr(ra_{i}), .rout_data(rx_{i}),"
        )
        lines.append(
            f"    .req_valid(rq_v_{i}), .req_dest(rq_dest_{i}),"
            f" .req_addr(rq_addr_{i}), .req_data(rq_data_{i}),"
        )
        lines.append(f"    .req_ack(rq_ack_{i}),")
        lines.append(f"    .ext_we(xw_{i}), .ext_addr(xa_{i}), .ext_data(xd_{i})")
        lines.append("  );")
    halted_terms = " & ".join(f"h_{i}" for i in range(count))
    lines.append(f"  assign all_halted = {halted_terms};")
    retired_terms = " + ".join(f"ret_{i}" for i in range(count))
    lines.append(f"  assign total_retired = {retired_terms};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def build_pgas_source(n: int) -> str:
    """Full LHDL source of the NxN PGAS multicore (paper sizes: 1, 2,
    4, 8, 16)."""
    if n < 1:
        raise ValueError("mesh size must be >= 1")
    return (
        CORE_MODULES_SOURCE
        + PGAS_NODE
        + RING_STOP
        + "\n"
        + _mesh_top_source(n)
    )
