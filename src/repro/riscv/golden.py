"""Golden-model RV64I interpreter (instruction-set simulator).

A straightforward, obviously-correct executor used for differential
testing of the RTL core: both run the same program; architectural state
(registers, memory, pc) must match at every retired instruction.

Supports the same subset as the RTL: RV64I base integer, ``ecall`` as
halt, byte-addressed little-endian memory of configurable size.  Remote
(PGAS) stores are surfaced through a callback instead of being applied
locally, mirroring the node's behaviour.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from . import encode, isa
from .isa import MASK64


class GoldenCore:
    """One RV64I hart with private little-endian memory."""

    def __init__(
        self,
        mem_bytes: int = 32 * 1024,
        remote_store: Optional[Callable[[int, int, int], None]] = None,
        local_base_mask: int = 0x7FFF,
        node_id: int = 0,
    ):
        self.regs: List[int] = [0] * 32
        self.pc = 0
        self.mem = bytearray(mem_bytes)
        self.halted = False
        self.instret = 0
        self._remote_store = remote_store
        self._local_mask = local_base_mask
        self.node_id = node_id

    # -- memory helpers ---------------------------------------------------------

    def load_program(self, words: List[int], base: int = 0) -> None:
        for i, word in enumerate(words):
            self.mem[base + 4 * i : base + 4 * i + 4] = word.to_bytes(4, "little")

    def read(self, addr: int, size: int) -> int:
        addr &= self._local_mask
        return int.from_bytes(self.mem[addr : addr + size], "little")

    def write(self, addr: int, value: int, size: int) -> None:
        self.mem[addr & self._local_mask : (addr & self._local_mask) + size] = (
            value & ((1 << (8 * size)) - 1)
        ).to_bytes(size, "little")

    def is_remote(self, addr: int) -> bool:
        """Global (bit-24) addresses targeting another node (see
        :mod:`repro.riscv.pgas` for the address map)."""
        if not (addr >> 24) & 1:
            return False
        return ((addr >> 15) & 0x1FF) != self.node_id

    # -- register helpers ----------------------------------------------------------

    def reg(self, index: int) -> int:
        return self.regs[index]

    def set_reg(self, index: int, value: int) -> None:
        if index:
            self.regs[index] = value & MASK64

    # -- execution ---------------------------------------------------------------------

    def step(self, max_instructions: int = 1) -> int:
        """Execute up to N instructions; returns the count retired."""
        executed = 0
        for _ in range(max_instructions):
            if self.halted:
                break
            self._execute_one()
            executed += 1
        return executed

    def run(self, max_instructions: int = 1_000_000) -> int:
        return self.step(max_instructions)

    def _execute_one(self) -> None:
        instr = self.read(self.pc, 4)
        f = encode.fields(instr)
        opcode = f["opcode"]
        rd, rs1, rs2 = f["rd"], f["rs1"], f["rs2"]
        funct3, funct7 = f["funct3"], f["funct7"]
        a = self.regs[rs1]
        b = self.regs[rs2]
        next_pc = (self.pc + 4) & MASK64

        if opcode == isa.OP_LUI:
            self.set_reg(rd, encode.imm_u(instr))
        elif opcode == isa.OP_AUIPC:
            self.set_reg(rd, self.pc + encode.imm_u(instr))
        elif opcode == isa.OP_JAL:
            self.set_reg(rd, next_pc)
            next_pc = (self.pc + encode.imm_j(instr)) & MASK64
        elif opcode == isa.OP_JALR:
            self.set_reg(rd, next_pc)
            next_pc = (a + encode.imm_i(instr)) & MASK64 & ~1
        elif opcode == isa.OP_BRANCH:
            if self._branch_taken(funct3, a, b):
                next_pc = (self.pc + encode.imm_b(instr)) & MASK64
        elif opcode == isa.OP_LOAD:
            self._load(rd, funct3, (a + encode.imm_i(instr)) & MASK64)
        elif opcode == isa.OP_STORE:
            self._store(funct3, (a + encode.imm_s(instr)) & MASK64, b)
        elif opcode == isa.OP_IMM:
            self.set_reg(rd, self._alu_imm(funct3, instr, a))
        elif opcode == isa.OP_IMM32:
            self.set_reg(rd, self._alu_imm32(funct3, instr, a))
        elif opcode == isa.OP_OP:
            self.set_reg(rd, self._alu(funct3, funct7, a, b))
        elif opcode == isa.OP_OP32:
            self.set_reg(rd, self._alu32(funct3, funct7, a, b))
        elif opcode == isa.OP_SYSTEM:
            self.halted = True  # ecall/ebreak: stop the hart
        elif opcode == isa.OP_MISC_MEM:
            pass  # fence: no-op
        else:
            # Unknown opcodes retire as no-ops (the RTL does the same).
            pass

        self.pc = next_pc
        self.instret += 1

    @staticmethod
    def _branch_taken(funct3: int, a: int, b: int) -> bool:
        sa, sb = isa.to_signed64(a), isa.to_signed64(b)
        if funct3 == isa.F3_BEQ:
            return a == b
        if funct3 == isa.F3_BNE:
            return a != b
        if funct3 == isa.F3_BLT:
            return sa < sb
        if funct3 == isa.F3_BGE:
            return sa >= sb
        if funct3 == isa.F3_BLTU:
            return a < b
        if funct3 == isa.F3_BGEU:
            return a >= b
        return False

    def _load(self, rd: int, funct3: int, addr: int) -> None:
        if self.is_remote(addr):
            self.set_reg(rd, 0)  # remote loads are unsupported (PGAS)
            return
        size = {0: 1, 1: 2, 2: 4, 3: 8, 4: 1, 5: 2, 6: 4}.get(funct3)
        if size is None:
            return
        raw = self.read(addr, size)
        if funct3 in (isa.F3_LB, isa.F3_LH, isa.F3_LW):
            raw = isa.sign_extend(raw, 8 * size) & MASK64
        if funct3 == isa.F3_LD:
            raw &= MASK64
        self.set_reg(rd, raw)

    def _store(self, funct3: int, addr: int, value: int) -> None:
        size = {0: 1, 1: 2, 2: 4, 3: 8}.get(funct3)
        if size is None:
            return
        if self.is_remote(addr):
            if self._remote_store is not None:
                self._remote_store(addr, value & MASK64, size)
            return
        self.write(addr, value, size)

    @staticmethod
    def _alu(funct3: int, funct7: int, a: int, b: int) -> int:
        sa = isa.to_signed64(a)
        sb = isa.to_signed64(b)
        shamt = b & 63
        if funct3 == isa.F3_ADD_SUB:
            return (a - b if funct7 == 0b0100000 else a + b) & MASK64
        if funct3 == isa.F3_SLL:
            return (a << shamt) & MASK64
        if funct3 == isa.F3_SLT:
            return int(sa < sb)
        if funct3 == isa.F3_SLTU:
            return int(a < b)
        if funct3 == isa.F3_XOR:
            return a ^ b
        if funct3 == isa.F3_SRL_SRA:
            if funct7 == 0b0100000:
                return (sa >> shamt) & MASK64
            return a >> shamt
        if funct3 == isa.F3_OR:
            return a | b
        if funct3 == isa.F3_AND:
            return a & b
        return 0

    def _alu_imm(self, funct3: int, instr: int, a: int) -> int:
        imm = encode.imm_i(instr) & MASK64
        funct7 = (instr >> 25) & 0x7F
        if funct3 == isa.F3_ADD_SUB:
            return (a + imm) & MASK64
        if funct3 == isa.F3_SLL:
            return (a << ((instr >> 20) & 63)) & MASK64
        if funct3 == isa.F3_SRL_SRA:
            shamt = (instr >> 20) & 63
            if funct7 & 0b0100000:
                return (isa.to_signed64(a) >> shamt) & MASK64
            return a >> shamt
        return self._alu(funct3, 0, a, imm)

    @staticmethod
    def _alu32(funct3: int, funct7: int, a: int, b: int) -> int:
        a32 = a & isa.MASK32
        shamt = b & 31
        if funct3 == isa.F3_ADD_SUB:
            result = (a - b if funct7 == 0b0100000 else a + b) & isa.MASK32
        elif funct3 == isa.F3_SLL:
            result = (a32 << shamt) & isa.MASK32
        elif funct3 == isa.F3_SRL_SRA:
            if funct7 == 0b0100000:
                result = (isa.sign_extend(a32, 32) >> shamt) & isa.MASK32
            else:
                result = a32 >> shamt
        else:
            return 0
        return isa.sign_extend(result, 32) & MASK64

    def _alu_imm32(self, funct3: int, instr: int, a: int) -> int:
        funct7 = (instr >> 25) & 0x7F
        if funct3 == isa.F3_ADD_SUB:
            imm = encode.imm_i(instr)
            return isa.sign_extend((a + imm) & isa.MASK32, 32) & MASK64
        shamt = (instr >> 20) & 31
        return self._alu32(funct3, funct7, a, shamt)

    # -- inspection -----------------------------------------------------------------

    def dump_regs(self) -> Dict[str, int]:
        return {isa.Reg(i).name: self.regs[i] for i in range(32)}
