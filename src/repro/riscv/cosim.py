"""Lockstep co-simulation: the RTL core against the golden ISS.

The end-state differential tests tell you *that* the core diverged;
lockstep cosim tells you *where*: it steps the pipelined RTL cycle by
cycle, retires the golden model one instruction for every instruction
the RTL's writeback stage retires, and compares full architectural
register state at each retire.  The first mismatch is reported with
the retire index and the offending instruction word.

This is the kind of harness the paper's "debugging a single
simulation" use case assumes the developer has: combined with
checkpoint rewind, it pinpoints a bug to one instruction without
rerunning anything from cycle 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..hdl.errors import SimulationError
from ..sim.pipeline import Pipe
from .assembler import Program
from .golden import GoldenCore
from .pgas import LOCAL_MEM_WORDS


@dataclass
class Divergence:
    """First architectural mismatch between RTL and the golden model."""

    retire_index: int
    cycle: int
    pc: int
    instruction: int
    register: str
    rtl_value: int
    golden_value: int

    def __str__(self) -> str:
        return (
            f"divergence at retire #{self.retire_index} "
            f"(cycle {self.cycle}, pc {self.pc:#x}, "
            f"instr {self.instruction:#010x}): "
            f"{self.register} rtl={self.rtl_value:#x} "
            f"golden={self.golden_value:#x}"
        )


@dataclass
class CosimResult:
    retired: int
    cycles: int
    halted: bool
    divergence: Optional[Divergence] = None

    @property
    def matched(self) -> bool:
        return self.divergence is None


class Cosim:
    """Drives one PGAS node's core in lockstep with a GoldenCore."""

    def __init__(self, pipe: Pipe, node: int = 0):
        self._pipe = pipe
        self._node = node
        self._core = pipe.find(f"n_{node}.u_core")
        self._wb = self._core.find("u_wb")
        self._id = self._core.find("u_id")
        self.golden = GoldenCore(node_id=node)
        self._last_retired = 0

    def load_program(self, program: Program) -> None:
        """Install the program in both models and reset both."""
        self._pipe.reset_state()
        words = program.as_mem64(LOCAL_MEM_WORDS)
        self._pipe.find(f"n_{self._node}.u_mem").write_memory("mem", 0, words)
        self.golden = GoldenCore(node_id=self._node)
        self.golden.load_program(program.words)
        self._pipe.set_inputs(rst=1)
        self._pipe.step(2)
        self._pipe.set_inputs(rst=0)
        self._last_retired = 0

    # -- stepping ----------------------------------------------------------

    def _rtl_retired(self) -> int:
        return self._wb.peek_reg("retired_q")

    def _rtl_regs(self) -> List[int]:
        rf = self._id.memory("rf")
        return [0] + list(rf[1:32])

    def _compare(self, retire_index: int, pc: int,
                 instruction: int) -> Optional[Divergence]:
        rtl = self._rtl_regs()
        for i in range(32):
            if rtl[i] != self.golden.regs[i]:
                return Divergence(
                    retire_index=retire_index,
                    cycle=self._pipe.cycle,
                    pc=pc,
                    instruction=instruction,
                    register=f"x{i}",
                    rtl_value=rtl[i],
                    golden_value=self.golden.regs[i],
                )
        return None

    def run(self, max_cycles: int = 100_000,
            stop_on_divergence: bool = True) -> CosimResult:
        """Run to halt (or divergence, or the cycle bound).

        The RTL's register-file write lands one cycle after the
        instruction retires (WB latches, then writes), so comparisons
        run one cycle behind the retire counter; a short drain after
        halt flushes the tail.
        """
        divergence: Optional[Divergence] = None
        start_cycle = self._pipe.cycle
        drain = 0
        while self._pipe.cycle - start_cycle < max_cycles:
            retired_before = self._rtl_retired()
            self._pipe.step(1)
            # Writes for instructions retired up to *last* cycle are
            # now architecturally visible in the regfile.
            while self._last_retired < retired_before:
                self._last_retired += 1
                pc = self.golden.pc
                instruction = self.golden.read(pc, 4)
                self.golden.step(1)
                found = self._compare(self._last_retired, pc, instruction)
                if found is not None and divergence is None:
                    divergence = found
                    if stop_on_divergence:
                        return CosimResult(
                            retired=self._last_retired,
                            cycles=self._pipe.cycle,
                            halted=False,
                            divergence=divergence,
                        )
            if self._halted():
                drain += 1
                if drain > 2:
                    break
        return CosimResult(
            retired=self._last_retired,
            cycles=self._pipe.cycle,
            halted=self._halted(),
            divergence=divergence,
        )

    def _halted(self) -> bool:
        return bool(self._wb.peek_reg("halted_q"))


def cosim_program(pipe: Pipe, program: Program,
                  max_cycles: int = 100_000) -> CosimResult:
    """One-call lockstep check of ``program`` on ``pipe``'s node 0."""
    cosim = Cosim(pipe)
    cosim.load_program(program)
    result = cosim.run(max_cycles=max_cycles)
    if not result.halted and result.matched:
        raise SimulationError(
            f"cosim hit the {max_cycles}-cycle bound without halting"
        )
    return result
