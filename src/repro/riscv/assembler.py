"""A small two-pass RV64I assembler.

Supports the RV64I base set, the usual pseudo-instructions (``li``,
``la``, ``mv``, ``j``, ``jr``, ``ret``, ``nop``, ``beqz``, ``bnez``,
``call`` as ``jal ra``), labels, and a few directives (``.org``,
``.word``, ``.dword``, ``.equ``, ``.zero``).

Example::

    .equ COUNT, 10
        li   t0, COUNT
        li   t1, 0
    loop:
        addi t1, t1, 3
        addi t0, t0, -1
        bnez t0, loop
        sd   t1, 0x100(zero)
        ecall
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from . import encode, isa
from .isa import (
    F3_ADD_SUB, F3_AND, F3_BEQ, F3_BGE, F3_BGEU, F3_BLT, F3_BLTU, F3_BNE,
    F3_LB, F3_LBU, F3_LD, F3_LH, F3_LHU, F3_LW, F3_LWU, F3_OR, F3_SB, F3_SD,
    F3_SH, F3_SLL, F3_SLT, F3_SLTU, F3_SRL_SRA, F3_SW, F3_XOR,
    OP_AUIPC, OP_BRANCH, OP_IMM, OP_IMM32, OP_JAL, OP_JALR, OP_LOAD, OP_LUI,
    OP_OP, OP_OP32, OP_STORE, REG_NAMES,
)


class AsmError(ValueError):
    def __init__(self, message: str, line: int = 0):
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)
        self.line = line


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_MEM_OPERAND_RE = re.compile(r"^(-?\w+)\(([\w.$]+)\)$")

# (mnemonic) -> (funct3, funct7) for OP/OP32 R-type instructions.
_R_TYPE = {
    "add": (OP_OP, F3_ADD_SUB, 0b0000000),
    "sub": (OP_OP, F3_ADD_SUB, 0b0100000),
    "sll": (OP_OP, F3_SLL, 0b0000000),
    "slt": (OP_OP, F3_SLT, 0b0000000),
    "sltu": (OP_OP, F3_SLTU, 0b0000000),
    "xor": (OP_OP, F3_XOR, 0b0000000),
    "srl": (OP_OP, F3_SRL_SRA, 0b0000000),
    "sra": (OP_OP, F3_SRL_SRA, 0b0100000),
    "or": (OP_OP, F3_OR, 0b0000000),
    "and": (OP_OP, F3_AND, 0b0000000),
    "addw": (OP_OP32, F3_ADD_SUB, 0b0000000),
    "subw": (OP_OP32, F3_ADD_SUB, 0b0100000),
    "sllw": (OP_OP32, F3_SLL, 0b0000000),
    "srlw": (OP_OP32, F3_SRL_SRA, 0b0000000),
    "sraw": (OP_OP32, F3_SRL_SRA, 0b0100000),
}

_I_TYPE = {
    "addi": (OP_IMM, F3_ADD_SUB),
    "slti": (OP_IMM, F3_SLT),
    "sltiu": (OP_IMM, F3_SLTU),
    "xori": (OP_IMM, F3_XOR),
    "ori": (OP_IMM, F3_OR),
    "andi": (OP_IMM, F3_AND),
    "addiw": (OP_IMM32, F3_ADD_SUB),
}

_SHIFT_I = {
    "slli": (OP_IMM, F3_SLL, 0b000000, False),
    "srli": (OP_IMM, F3_SRL_SRA, 0b000000, False),
    "srai": (OP_IMM, F3_SRL_SRA, 0b010000, False),
    "slliw": (OP_IMM32, F3_SLL, 0b000000, True),
    "srliw": (OP_IMM32, F3_SRL_SRA, 0b000000, True),
    "sraiw": (OP_IMM32, F3_SRL_SRA, 0b010000, True),
}

_LOADS = {
    "lb": F3_LB, "lh": F3_LH, "lw": F3_LW, "ld": F3_LD,
    "lbu": F3_LBU, "lhu": F3_LHU, "lwu": F3_LWU,
}

_STORES = {"sb": F3_SB, "sh": F3_SH, "sw": F3_SW, "sd": F3_SD}

_BRANCHES = {
    "beq": F3_BEQ, "bne": F3_BNE, "blt": F3_BLT,
    "bge": F3_BGE, "bltu": F3_BLTU, "bgeu": F3_BGEU,
}


@dataclass
class _Item:
    """One pass-1 item: either resolved words or a pending encoder."""

    address: int
    size: int  # bytes
    line: int
    words: Optional[List[int]] = None
    encoder: Optional[Callable[["Assembler"], List[int]]] = None


@dataclass
class Program:
    """Assembled machine code."""

    words: List[int]  # 32-bit words, index = address/4
    labels: Dict[str, int]
    size_bytes: int

    def as_mem64(self, depth: int) -> List[int]:
        """Pack into 64-bit little-endian words for the RTL memory."""
        mem = [0] * depth
        for i, word in enumerate(self.words):
            index = i // 2
            if index >= depth:
                raise AsmError(
                    f"program ({len(self.words) * 4} bytes) exceeds memory"
                )
            if i % 2 == 0:
                mem[index] |= word
            else:
                mem[index] |= word << 32
        return mem


class Assembler:
    def __init__(self) -> None:
        self.labels: Dict[str, int] = {}
        self.constants: Dict[str, int] = {}
        self._items: List[_Item] = []
        self._pc = 0

    # -- operand parsing ------------------------------------------------------

    def _reg(self, token: str, line: int) -> int:
        reg = REG_NAMES.get(token.strip())
        if reg is None:
            raise AsmError(f"unknown register {token.strip()!r}", line)
        return reg

    def _int(self, token: str, line: int) -> int:
        token = token.strip()
        if token in self.constants:
            return self.constants[token]
        try:
            return int(token, 0)
        except ValueError:
            raise AsmError(f"expected integer, got {token!r}", line) from None

    def _symbol_or_int(self, token: str, line: int) -> int:
        token = token.strip()
        if token in self.labels:
            return self.labels[token]
        return self._int(token, line)

    # -- pass 1 -----------------------------------------------------------------

    def assemble(self, source: str) -> Program:
        for lineno, raw in enumerate(source.splitlines(), start=1):
            line = raw.split("#")[0].split(";")[0].strip()
            while True:
                match = _LABEL_RE.match(line)
                if not match:
                    break
                self._define_label(match.group(1), lineno)
                line = line[match.end():].strip()
            if not line:
                continue
            self._statement(line, lineno)
        return self._finish()

    def _define_label(self, name: str, line: int) -> None:
        if name in self.labels:
            raise AsmError(f"duplicate label {name!r}", line)
        self.labels[name] = self._pc

    def _emit_words(self, words: List[int], line: int) -> None:
        self._items.append(
            _Item(address=self._pc, size=4 * len(words), line=line, words=words)
        )
        self._pc += 4 * len(words)

    def _emit_pending(
        self, size_words: int, line: int,
        encoder: Callable[["Assembler"], List[int]],
    ) -> None:
        self._items.append(
            _Item(address=self._pc, size=4 * size_words, line=line,
                  encoder=encoder)
        )
        self._pc += 4 * size_words

    def _statement(self, line: str, lineno: int) -> None:
        if line.startswith("."):
            self._directive(line, lineno)
            return
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        operands = [p.strip() for p in parts[1].split(",")] if len(parts) > 1 else []
        self._instruction(mnemonic, operands, lineno)

    def _directive(self, line: str, lineno: int) -> None:
        parts = line.split(None, 1)
        name = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".org":
            target = self._int(rest, lineno)
            if target < self._pc:
                raise AsmError(".org cannot move backwards", lineno)
            if target % 4:
                raise AsmError(".org must be 4-byte aligned", lineno)
            pad = (target - self._pc) // 4
            if pad:
                self._emit_words([0] * pad, lineno)
        elif name == ".word":
            values = [self._int(v, lineno) & 0xFFFFFFFF for v in rest.split(",")]
            self._emit_words(values, lineno)
        elif name == ".dword":
            words: List[int] = []
            for token in rest.split(","):
                value = self._int(token, lineno) & isa.MASK64
                words.append(value & 0xFFFFFFFF)
                words.append(value >> 32)
            self._emit_words(words, lineno)
        elif name == ".zero":
            count = self._int(rest, lineno)
            if count % 4:
                raise AsmError(".zero must be a multiple of 4 bytes", lineno)
            self._emit_words([0] * (count // 4), lineno)
        elif name == ".equ":
            name_token, _, value_token = rest.partition(",")
            if not value_token:
                raise AsmError(".equ needs NAME, value", lineno)
            self.constants[name_token.strip()] = self._int(value_token, lineno)
        else:
            raise AsmError(f"unknown directive {name!r}", lineno)

    # -- instructions --------------------------------------------------------------

    def _instruction(self, m: str, ops: List[str], line: int) -> None:
        handler = getattr(self, f"_ins_{m}", None)
        if handler is not None:
            handler(ops, line)
            return
        if m in _R_TYPE:
            self._need(ops, 3, m, line)
            opcode, f3, f7 = _R_TYPE[m]
            rd, rs1, rs2 = (self._reg(o, line) for o in ops)
            self._emit_words([encode.encode_r(opcode, rd, f3, rs1, rs2, f7)], line)
        elif m in _I_TYPE:
            self._need(ops, 3, m, line)
            opcode, f3 = _I_TYPE[m]
            rd, rs1 = self._reg(ops[0], line), self._reg(ops[1], line)
            imm = self._int(ops[2], line)
            self._emit_words([encode.encode_i(opcode, rd, f3, rs1, imm)], line)
        elif m in _SHIFT_I:
            self._need(ops, 3, m, line)
            opcode, f3, f6, word = _SHIFT_I[m]
            rd, rs1 = self._reg(ops[0], line), self._reg(ops[1], line)
            shamt = self._int(ops[2], line)
            self._emit_words(
                [encode.encode_shift_i(opcode, rd, f3, rs1, shamt, f6, word)],
                line,
            )
        elif m in _LOADS:
            self._need(ops, 2, m, line)
            rd = self._reg(ops[0], line)
            imm, rs1 = self._mem_operand(ops[1], line)
            self._emit_words(
                [encode.encode_i(OP_LOAD, rd, _LOADS[m], rs1, imm)], line
            )
        elif m in _STORES:
            self._need(ops, 2, m, line)
            rs2 = self._reg(ops[0], line)
            imm, rs1 = self._mem_operand(ops[1], line)
            self._emit_words(
                [encode.encode_s(OP_STORE, _STORES[m], rs1, rs2, imm)], line
            )
        elif m in _BRANCHES:
            self._need(ops, 3, m, line)
            rs1, rs2 = self._reg(ops[0], line), self._reg(ops[1], line)
            target = ops[2]
            pc = self._pc

            def enc(asm: "Assembler") -> List[int]:
                offset = asm._symbol_or_int(target, line) - pc
                return [encode.encode_b(OP_BRANCH, _BRANCHES[m], rs1, rs2, offset)]

            self._emit_pending(1, line, enc)
        else:
            raise AsmError(f"unknown instruction {m!r}", line)

    @staticmethod
    def _need(ops: List[str], count: int, m: str, line: int) -> None:
        if len(ops) != count:
            raise AsmError(f"{m} expects {count} operands, got {len(ops)}", line)

    def _mem_operand(self, token: str, line: int) -> Tuple[int, int]:
        match = _MEM_OPERAND_RE.match(token.strip())
        if not match:
            raise AsmError(f"expected offset(reg), got {token!r}", line)
        return self._int(match.group(1), line), self._reg(match.group(2), line)

    # -- individual instructions / pseudos ---------------------------------------

    def _ins_lui(self, ops: List[str], line: int) -> None:
        self._need(ops, 2, "lui", line)
        rd = self._reg(ops[0], line)
        imm = self._int(ops[1], line)
        self._emit_words([encode.encode_u(OP_LUI, rd, imm << 12)], line)

    def _ins_auipc(self, ops: List[str], line: int) -> None:
        self._need(ops, 2, "auipc", line)
        rd = self._reg(ops[0], line)
        imm = self._int(ops[1], line)
        self._emit_words([encode.encode_u(OP_AUIPC, rd, imm << 12)], line)

    def _ins_jal(self, ops: List[str], line: int) -> None:
        if len(ops) == 1:
            ops = ["ra", ops[0]]
        self._need(ops, 2, "jal", line)
        rd = self._reg(ops[0], line)
        target = ops[1]
        pc = self._pc

        def enc(asm: "Assembler") -> List[int]:
            offset = asm._symbol_or_int(target, line) - pc
            return [encode.encode_j(OP_JAL, rd, offset)]

        self._emit_pending(1, line, enc)

    def _ins_jalr(self, ops: List[str], line: int) -> None:
        if len(ops) == 1:
            ops = ["ra", ops[0], "0"]
        self._need(ops, 3, "jalr", line)
        rd, rs1 = self._reg(ops[0], line), self._reg(ops[1], line)
        imm = self._int(ops[2], line)
        self._emit_words([encode.encode_i(OP_JALR, rd, 0, rs1, imm)], line)

    def _ins_ecall(self, ops: List[str], line: int) -> None:
        self._emit_words([isa.ECALL], line)

    def _ins_ebreak(self, ops: List[str], line: int) -> None:
        self._emit_words([isa.EBREAK], line)

    def _ins_nop(self, ops: List[str], line: int) -> None:
        self._emit_words([isa.NOP], line)

    def _ins_mv(self, ops: List[str], line: int) -> None:
        self._need(ops, 2, "mv", line)
        self._instruction("addi", [ops[0], ops[1], "0"], line)

    def _ins_not(self, ops: List[str], line: int) -> None:
        self._need(ops, 2, "not", line)
        self._instruction("xori", [ops[0], ops[1], "-1"], line)

    def _ins_neg(self, ops: List[str], line: int) -> None:
        self._need(ops, 2, "neg", line)
        self._instruction("sub", [ops[0], "zero", ops[1]], line)

    def _ins_seqz(self, ops: List[str], line: int) -> None:
        self._need(ops, 2, "seqz", line)
        self._instruction("sltiu", [ops[0], ops[1], "1"], line)

    def _ins_snez(self, ops: List[str], line: int) -> None:
        self._need(ops, 2, "snez", line)
        self._instruction("sltu", [ops[0], "zero", ops[1]], line)

    def _ins_j(self, ops: List[str], line: int) -> None:
        self._need(ops, 1, "j", line)
        self._instruction("jal", ["zero", ops[0]], line)

    def _ins_jr(self, ops: List[str], line: int) -> None:
        self._need(ops, 1, "jr", line)
        self._instruction("jalr", ["zero", ops[0], "0"], line)

    def _ins_ret(self, ops: List[str], line: int) -> None:
        self._instruction("jalr", ["zero", "ra", "0"], line)

    def _ins_call(self, ops: List[str], line: int) -> None:
        self._need(ops, 1, "call", line)
        self._instruction("jal", ["ra", ops[0]], line)

    def _ins_beqz(self, ops: List[str], line: int) -> None:
        self._need(ops, 2, "beqz", line)
        self._instruction("beq", [ops[0], "zero", ops[1]], line)

    def _ins_bnez(self, ops: List[str], line: int) -> None:
        self._need(ops, 2, "bnez", line)
        self._instruction("bne", [ops[0], "zero", ops[1]], line)

    def _ins_bgez(self, ops: List[str], line: int) -> None:
        self._need(ops, 2, "bgez", line)
        self._instruction("bge", [ops[0], "zero", ops[1]], line)

    def _ins_bltz(self, ops: List[str], line: int) -> None:
        self._need(ops, 2, "bltz", line)
        self._instruction("blt", [ops[0], "zero", ops[1]], line)

    def _ins_li(self, ops: List[str], line: int) -> None:
        self._need(ops, 2, "li", line)
        rd = self._reg(ops[0], line)
        value = isa.sign_extend(self._int(ops[1], line), 64)
        self._emit_words(self._li_sequence(rd, value, line), line)

    def _li_sequence(self, rd: int, value: int, line: int) -> List[int]:
        if -2048 <= value <= 2047:
            return [encode.encode_i(OP_IMM, rd, F3_ADD_SUB, 0, value)]
        if -(1 << 31) <= value < (1 << 31):
            hi = (value + 0x800) >> 12
            lo = value - (hi << 12)
            words = [encode.encode_u(OP_LUI, rd, (hi << 12) & 0xFFFFFFFF)]
            if lo:
                words.append(encode.encode_i(OP_IMM32, rd, F3_ADD_SUB, rd, lo))
            return words
        # General 64-bit constant: materialize the upper 32 bits, then
        # shift in the lower bits 11 at a time (worst case 8 words).
        upper = value >> 32
        lower = value & 0xFFFFFFFF
        words = self._li_sequence(rd, isa.sign_extend(upper, 32), line)
        remaining = 32
        chunk_bits = [11, 11, 10]
        for bits in chunk_bits:
            remaining -= bits
            chunk = (lower >> remaining) & ((1 << bits) - 1)
            words.append(
                encode.encode_shift_i(OP_IMM, rd, F3_SLL, rd, bits, 0)
            )
            if chunk:
                words.append(
                    encode.encode_i(OP_IMM, rd, F3_ADD_SUB, rd, chunk)
                )
        return words

    def _ins_la(self, ops: List[str], line: int) -> None:
        """Load address: fixed two-word lui+addiw form (addresses in
        this system fit comfortably in 31 bits)."""
        self._need(ops, 2, "la", line)
        rd = self._reg(ops[0], line)
        target = ops[1]

        def enc(asm: "Assembler") -> List[int]:
            value = asm._symbol_or_int(target, line)
            hi = (value + 0x800) >> 12
            lo = value - (hi << 12)
            return [
                encode.encode_u(OP_LUI, rd, (hi << 12) & 0xFFFFFFFF),
                encode.encode_i(OP_IMM32, rd, F3_ADD_SUB, rd, lo),
            ]

        self._emit_pending(2, line, enc)

    # -- pass 2 ---------------------------------------------------------------------

    def _finish(self) -> Program:
        words: List[int] = []
        for item in self._items:
            assert item.address == 4 * len(words)
            if item.words is not None:
                words.extend(w & 0xFFFFFFFF for w in item.words)
            else:
                encoded = item.encoder(self)  # type: ignore[misc]
                if 4 * len(encoded) != item.size:
                    raise AsmError("pass-2 size mismatch", item.line)
                words.extend(w & 0xFFFFFFFF for w in encoded)
        return Program(
            words=words, labels=dict(self.labels), size_bytes=4 * len(words)
        )


def assemble(source: str) -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    return Assembler().assemble(source)
