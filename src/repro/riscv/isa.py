"""RV64I instruction-set definitions shared by the assembler, the
golden-model ISS, and the RTL tests."""

from __future__ import annotations

from enum import IntEnum
from typing import Dict

XLEN = 64
MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1


class Reg(IntEnum):
    """ABI register names."""

    zero = 0
    ra = 1
    sp = 2
    gp = 3
    tp = 4
    t0 = 5
    t1 = 6
    t2 = 7
    s0 = 8
    s1 = 9
    a0 = 10
    a1 = 11
    a2 = 12
    a3 = 13
    a4 = 14
    a5 = 15
    a6 = 16
    a7 = 17
    s2 = 18
    s3 = 19
    s4 = 20
    s5 = 21
    s6 = 22
    s7 = 23
    s8 = 24
    s9 = 25
    s10 = 26
    s11 = 27
    t3 = 28
    t4 = 29
    t5 = 30
    t6 = 31


REG_NAMES: Dict[str, int] = {r.name: r.value for r in Reg}
REG_NAMES.update({f"x{i}": i for i in range(32)})
REG_NAMES["fp"] = Reg.s0.value


# Major opcodes.
OP_LUI = 0b0110111
OP_AUIPC = 0b0010111
OP_JAL = 0b1101111
OP_JALR = 0b1100111
OP_BRANCH = 0b1100011
OP_LOAD = 0b0000011
OP_STORE = 0b0100011
OP_IMM = 0b0010011
OP_OP = 0b0110011
OP_IMM32 = 0b0011011
OP_OP32 = 0b0111011
OP_SYSTEM = 0b1110011
OP_MISC_MEM = 0b0001111

# funct3 codes.
F3_BEQ, F3_BNE = 0b000, 0b001
F3_BLT, F3_BGE, F3_BLTU, F3_BGEU = 0b100, 0b101, 0b110, 0b111
F3_LB, F3_LH, F3_LW, F3_LD = 0b000, 0b001, 0b010, 0b011
F3_LBU, F3_LHU, F3_LWU = 0b100, 0b101, 0b110
F3_SB, F3_SH, F3_SW, F3_SD = 0b000, 0b001, 0b010, 0b011
F3_ADD_SUB, F3_SLL, F3_SLT, F3_SLTU = 0b000, 0b001, 0b010, 0b011
F3_XOR, F3_SRL_SRA, F3_OR, F3_AND = 0b100, 0b101, 0b110, 0b111

NOP = 0x00000013  # addi x0, x0, 0
ECALL = 0x00000073
EBREAK = 0x00100073


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as two's complement."""
    value &= (1 << bits) - 1
    sign = 1 << (bits - 1)
    return (value ^ sign) - sign


def to_signed64(value: int) -> int:
    return sign_extend(value, 64)


def to_unsigned64(value: int) -> int:
    return value & MASK64
