"""RISC-V PGAS workload (the paper's benchmark substrate, §IV).

A 5-stage RV64I core written in LHDL, replicated into an NxN
partitioned-global-address-space mesh (each node: one core + 32 KB of
local memory, remote stores routed over an XY mesh).  Plus everything
needed to drive it: an assembler, test programs, a golden-model ISS for
differential testing, and the curated bug/fix patch library used by the
Fig. 8 hot-reload bench.
"""

from .assembler import AsmError, assemble
from .cosim import Cosim, CosimResult, Divergence, cosim_program
from .golden import GoldenCore
from .isa import Reg
from .pgas import (
    LOCAL_MEM_BYTES,
    build_pgas_source,
    global_address,
    mesh_top_name,
)
from .rtl import CORE_MODULES_SOURCE, core_source

__all__ = [
    "Reg",
    "assemble",
    "AsmError",
    "GoldenCore",
    "Cosim",
    "CosimResult",
    "Divergence",
    "cosim_program",
    "CORE_MODULES_SOURCE",
    "core_source",
    "build_pgas_source",
    "global_address",
    "mesh_top_name",
    "LOCAL_MEM_BYTES",
]
