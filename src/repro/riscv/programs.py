"""Workload programs for the PGAS mesh, plus testbench factories.

Program helpers return assembly text; ``load_node_program`` assembles
and installs into a node's memory.  Testbench factories live at module
level so the process-parallel consistency workers can rebuild them from
a ``"repro.riscv.programs:factory"`` spec.

Result-mailbox convention used by every program here::

    0x200   final result (doubleword)
    0x100   incoming-message mailbox (token/neighbour programs)
    0x208   scratch / secondary result
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..sim.pipeline import Pipe
from ..sim.testbench import CallbackTestbench, Testbench
from .assembler import Program, assemble
from .pgas import LOCAL_MEM_WORDS, global_address

RESULT_ADDR = 0x200
MAILBOX_ADDR = 0x100
SCRATCH_ADDR = 0x208


def fibonacci(n: int = 10) -> str:
    """Iterative Fibonacci; stores fib(n) to the result mailbox."""
    return f"""
    li   t0, {n}
    li   t1, 0
    li   t2, 1
loop:
    beqz t0, done
    add  t3, t1, t2
    mv   t1, t2
    mv   t2, t3
    addi t0, t0, -1
    j    loop
done:
    sd   t1, {RESULT_ADDR}(zero)
    ecall
"""


def vector_sum(values: Sequence[int], base: int = 0x400) -> str:
    """Sums an in-memory vector (loaded via .dword data)."""
    data = ", ".join(str(v) for v in values) if values else "0"
    count = len(values)
    return f"""
    li   t0, {base}
    li   t1, {count}
    li   t2, 0
loop:
    beqz t1, done
    ld   t3, 0(t0)
    add  t2, t2, t3
    addi t0, t0, 8
    addi t1, t1, -1
    j    loop
done:
    sd   t2, {RESULT_ADDR}(zero)
    ecall

.org {base}
.dword {data}
"""


def sieve(limit: int = 50) -> str:
    """Counts primes below ``limit`` with a byte-array sieve."""
    return f"""
    .equ LIMIT, {limit}
    .equ FLAGS, 0x1000
    li   s0, FLAGS
    li   t0, 0
clear:
    add  t1, s0, t0
    sb   zero, 0(t1)
    addi t0, t0, 1
    li   t2, LIMIT
    blt  t0, t2, clear

    li   s1, 2          # candidate
    li   s2, 0          # prime count
outer:
    li   t2, LIMIT
    bge  s1, t2, finish
    add  t1, s0, s1
    lbu  t3, 0(t1)
    bnez t3, next       # composite
    addi s2, s2, 1      # found a prime
    add  t4, s1, s1     # first multiple
mark:
    li   t2, LIMIT
    bge  t4, t2, next
    add  t1, s0, t4
    li   t5, 1
    sb   t5, 0(t1)
    add  t4, t4, s1
    j    mark
next:
    addi s1, s1, 1
    j    outer
finish:
    sd   s2, {RESULT_ADDR}(zero)
    ecall
"""


def memcopy(words: int = 32, src: int = 0x800, dst: int = 0x1800) -> str:
    """Copies a block of doublewords and checksums it."""
    return f"""
    li   s0, {src}
    li   s1, {dst}
    li   s2, {words}
    li   s3, 0
loop:
    beqz s2, done
    ld   t0, 0(s0)
    sd   t0, 0(s1)
    add  s3, s3, t0
    addi s0, s0, 8
    addi s1, s1, 8
    addi s2, s2, -1
    j    loop
done:
    sd   s3, {RESULT_ADDR}(zero)
    ecall
"""


def token_ring(node: int, count: int, token_base: int = 1000) -> str:
    """Node program for the neighbour-message test: send a token to the
    next node's mailbox, poll own mailbox, record what arrived."""
    dest = (node + 1) % count
    mailbox = global_address(dest, MAILBOX_ADDR)
    return f"""
    li   t0, {token_base + node}
    li   t1, {mailbox}
    sd   t0, 0(t1)
poll:
    ld   t2, {MAILBOX_ADDR}(zero)
    beqz t2, poll
    sd   t2, {RESULT_ADDR}(zero)
    ecall
"""


def hop_count_ring(node: int, count: int) -> str:
    """One token circles the ring, incremented at each hop.

    Node 0 seeds the token with 1 and waits for it to come back; every
    other node waits, increments, and forwards.  When all cores halt,
    node 0's result equals ``count`` (the hop count) and node i's
    result equals ``i`` for i > 0.
    """
    dest = (node + 1) % count
    mailbox = global_address(dest, MAILBOX_ADDR)
    if node == 0:
        return f"""
    li   t0, 1
    li   t1, {mailbox}
    sd   t0, 0(t1)
poll:
    ld   t2, {MAILBOX_ADDR}(zero)
    beqz t2, poll
    sd   t2, {RESULT_ADDR}(zero)
    ecall
"""
    return f"""
    li   t1, {mailbox}
poll:
    ld   t2, {MAILBOX_ADDR}(zero)
    beqz t2, poll
    sd   t2, {RESULT_ADDR}(zero)
    addi t2, t2, 1
    sd   t2, 0(t1)
    ecall
"""


def busy_counter(iterations: int = 1_000_000) -> str:
    """A long-running counting loop (for checkpoint-heavy sessions).

    Runs ~4 cycles per iteration and only halts after ``iterations``;
    the running count is continuously stored to the result mailbox so
    any cycle's architectural state is easily checkable.
    """
    return f"""
    li   s0, {iterations}
    li   s1, 0
loop:
    addi s1, s1, 1
    sd   s1, {RESULT_ADDR}(zero)
    blt  s1, s0, loop
    ecall
"""


def bubble_sort(values: Sequence[int], base: int = 0x800) -> str:
    """In-place bubble sort of doublewords; result = checksum of the
    sorted array (sum of value*index)."""
    data = ", ".join(str(v) for v in values) if values else "0"
    count = len(values)
    return f"""
    li   s0, {base}
    li   s1, {count}
outer:
    li   t0, 0              # swapped flag
    li   t1, 0              # index
inner:
    addi t2, s1, -1
    bge  t1, t2, check
    slli t3, t1, 3
    add  t3, t3, s0
    ld   t4, 0(t3)
    ld   t5, 8(t3)
    bge  t5, t4, next       # already ordered (signed)
    sd   t5, 0(t3)
    sd   t4, 8(t3)
    li   t0, 1
next:
    addi t1, t1, 1
    j    inner
check:
    bnez t0, outer
    # checksum = sum(value * (index+1)) via repeated addition
    li   t1, 0
    li   t6, 0
sumloop:
    bge  t1, s1, done
    slli t3, t1, 3
    add  t3, t3, s0
    ld   t4, 0(t3)
    addi t5, t1, 1
mul:
    beqz t5, mulend
    add  t6, t6, t4
    addi t5, t5, -1
    j    mul
mulend:
    addi t1, t1, 1
    j    sumloop
done:
    sd   t6, {RESULT_ADDR}(zero)
    ecall

.org {base}
.dword {data}
"""


def gcd(a: int, b: int) -> str:
    """Euclid's algorithm with a call/ret subroutine (exercises the
    stack, jal/jalr, and the full forwarding network)."""
    return f"""
    li   sp, 0x3000
    li   a0, {a}
    li   a1, {b}
    call gcd_fn
    sd   a0, {RESULT_ADDR}(zero)
    ecall

gcd_fn:
    addi sp, sp, -16
    sd   ra, 0(sp)
loop:
    beqz a1, base_case
    # (a0, a1) <- (a1, a0 % a1) via repeated subtraction
    mv   t0, a0
mod:
    blt  t0, a1, moddone
    sub  t0, t0, a1
    j    mod
moddone:
    mv   a0, a1
    mv   a1, t0
    j    loop
base_case:
    ld   ra, 0(sp)
    addi sp, sp, 16
    ret
"""


def fib_recursive(n: int) -> str:
    """Naive recursive Fibonacci: deep call stacks, heavy jal/jalr and
    load-use traffic — the stress test for the pipeline's hazards."""
    return f"""
    li   sp, 0x7000
    li   a0, {n}
    call fib
    sd   a0, {RESULT_ADDR}(zero)
    ecall

fib:
    li   t0, 2
    blt  a0, t0, leaf
    addi sp, sp, -24
    sd   ra, 0(sp)
    sd   s0, 8(sp)
    mv   s0, a0
    addi a0, a0, -1
    call fib
    sd   a0, 16(sp)
    addi a0, s0, -2
    call fib
    ld   t1, 16(sp)
    add  a0, a0, t1
    ld   ra, 0(sp)
    ld   s0, 8(sp)
    addi sp, sp, 24
    ret
leaf:
    ret
"""


def byte_checksum(text: bytes, base: int = 0xC00) -> str:
    """Byte-granularity loads/stores: sums the bytes of a buffer and
    writes an incrementing pattern back (exercises lb/lbu/sb merging)."""
    words: List[str] = []
    padded = bytes(text) + b"\x00" * ((8 - len(text) % 8) % 8)
    for i in range(0, len(padded), 8):
        words.append(str(int.from_bytes(padded[i : i + 8], "little")))
    return f"""
    li   s0, {base}
    li   s1, {len(text)}
    li   t0, 0              # index
    li   t1, 0              # checksum
loop:
    bge  t0, s1, done
    add  t2, s0, t0
    lbu  t3, 0(t2)
    add  t1, t1, t3
    andi t4, t1, 0xff
    sb   t4, 0x400(t2)
    addi t0, t0, 1
    j    loop
done:
    sd   t1, {RESULT_ADDR}(zero)
    ecall

.org {base}
.dword {', '.join(words) if words else '0'}
"""


# ---------------------------------------------------------------------------
# Loading helpers
# ---------------------------------------------------------------------------


def load_node_program(pipe: Pipe, node: int, source: str) -> Program:
    """Assemble ``source`` and install it in node ``node``'s memory."""
    program = assemble(source)
    inst = pipe.find(f"n_{node}.u_mem")
    inst.write_memory("mem", 0, program.as_mem64(LOCAL_MEM_WORDS))
    return program


def load_same_program(pipe: Pipe, count: int, source: str) -> Program:
    program = assemble(source)
    words = program.as_mem64(LOCAL_MEM_WORDS)
    for i in range(count):
        pipe.find(f"n_{i}.u_mem").write_memory("mem", 0, words)
    return program


def node_result(pipe: Pipe, node: int, addr: int = RESULT_ADDR) -> int:
    return pipe.find(f"n_{node}.u_mem").memory("mem")[addr // 8]


def node_halted(pipe: Pipe, node: int) -> bool:
    return bool(pipe.find(f"n_{node}.u_core.u_wb").peek_reg("halted_q"))


# ---------------------------------------------------------------------------
# Testbench factories (module-level: picklable by spec for workers)
# ---------------------------------------------------------------------------


def boot_program(
    asm: str,
    count: int = 1,
    reset_cycles: int = 2,
    per_node: bool = False,
) -> Testbench:
    """The canonical PGAS testbench: loads the program and drives reset.

    Program loading happens in ``drive`` whenever the pipe sits at
    cycle 0, which makes it *part of the replayable stimulus*: a replay
    from power-on (consistency verification's segment 0, post-repair
    re-execution) reinstalls the program exactly like the original run.

    ``per_node=True`` treats ``asm`` as a ``%NODE%``/``%COUNT%``
    template expanded per node id — enough to express the ring
    workloads without shipping Python callables to worker processes.
    """
    if per_node:
        programs = [
            assemble(
                asm.replace("%NODE%", str(i)).replace("%COUNT%", str(count))
            )
            for i in range(count)
        ]
        words = [p.as_mem64(LOCAL_MEM_WORDS) for p in programs]
    else:
        single = assemble(asm).as_mem64(LOCAL_MEM_WORDS)
        words = [single] * count

    def drive(pipe: Pipe) -> None:
        if pipe.cycle == 0:
            for i in range(count):
                pipe.find(f"n_{i}.u_mem").write_memory("mem", 0, words[i])
        pipe.set_inputs(rst=int(pipe.cycle < reset_cycles), clk=0)

    return CallbackTestbench(name="boot_program", drive=drive)


def boot_program_spec(asm: str, count: int = 1, reset_cycles: int = 2,
                      per_node: bool = False):
    """Factory spec for :func:`boot_program` (for worker processes)."""
    return (
        "repro.riscv.programs:boot_program",
        {"asm": asm, "count": count, "reset_cycles": reset_cycles,
         "per_node": per_node},
    )


def reset_then_run(reset_cycles: int = 2) -> Testbench:
    """Asserts rst while the absolute cycle is below ``reset_cycles``,
    then runs freely.  Replay-safe: stimulus is a pure function of the
    absolute cycle."""

    def drive(pipe: Pipe) -> None:
        pipe.set_inputs(rst=int(pipe.cycle < reset_cycles), clk=0)

    return CallbackTestbench(name="reset_then_run", drive=drive)


def run_until_halted(reset_cycles: int = 2) -> Testbench:
    """Like :func:`reset_then_run` but stops when every core halted."""

    def drive(pipe: Pipe) -> None:
        pipe.set_inputs(rst=int(pipe.cycle < reset_cycles), clk=0)

    def check(pipe: Pipe, outputs: Dict[str, int]) -> bool:
        return outputs.get("all_halted", 0) == 1

    return CallbackTestbench(name="run_until_halted", drive=drive, check=check)


RESET_THEN_RUN_SPEC = ("repro.riscv.programs:reset_then_run", {})
RUN_UNTIL_HALTED_SPEC = ("repro.riscv.programs:run_until_halted", {})
