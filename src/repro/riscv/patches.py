"""Curated bug/fix patch library for the hot-reload benchmarks.

The paper (§IV): "We looked for code changes in the core GitHub
repository to replicate changes actually made in the core and apply
them to the code."  In the same spirit, each patch here is a realistic
single-stage pipeline bug of the kind that appears in RISC-V core
histories (forwarding priority, immediate sign extension, branch target
arithmetic, load extension, x0 writability, ...).

Every patch is an exact-source rewrite pair, so the Fig. 8 bench can
*inject* a bug into the known-good RTL, run, then *fix* it through the
live session and measure the edit-run-debug latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class Patch:
    """One injectable/fixable bug."""

    name: str
    module: str  # the (single) module the change touches
    good: str  # correct source excerpt
    bad: str  # buggy variant
    description: str

    def inject(self, source: str) -> str:
        if self.good not in source:
            raise ValueError(
                f"patch {self.name!r}: good snippet not found in source"
            )
        return source.replace(self.good, self.bad, 1)

    def fix(self, source: str) -> str:
        if self.bad not in source:
            raise ValueError(
                f"patch {self.name!r}: bad snippet not found in source"
            )
        return source.replace(self.bad, self.good, 1)

    def is_injected(self, source: str) -> bool:
        return self.bad in source


PATCHES: Dict[str, Patch] = {}


def _register(patch: Patch) -> None:
    if patch.name in PATCHES:
        raise ValueError(f"duplicate patch {patch.name!r}")
    if patch.good == patch.bad:
        raise ValueError(f"patch {patch.name!r} is a no-op")
    PATCHES[patch.name] = patch


_register(Patch(
    name="ex-forward-priority",
    module="rv_ex",
    good=(
        "  assign op_a = (e_rs1 == 5'd0) ? 64'd0\n"
        "              : fwd_a_mem ? x_alu\n"
        "              : fwd_a_wb ? wb_data\n"
        "              : e_rs1_val;"
    ),
    bad=(
        "  assign op_a = (e_rs1 == 5'd0) ? 64'd0\n"
        "              : fwd_a_wb ? wb_data\n"
        "              : fwd_a_mem ? x_alu\n"
        "              : e_rs1_val;"
    ),
    description=(
        "Operand-A forwarding checks the WB bus before EX/MEM, so a "
        "back-to-back writer pair forwards the older value."
    ),
))

_register(Patch(
    name="id-imm-sign",
    module="rv_id",
    good="  assign imm_i = {{52{ifid_instr[31]}}, ifid_instr[31:20]};",
    bad="  assign imm_i = {{52{1'b0}}, ifid_instr[31:20]};",
    description="I-format immediates zero-extend instead of sign-extend.",
))

_register(Patch(
    name="ex-branch-target",
    module="rv_ex",
    good="  assign redirect_pc = e_jalr ? ((op_a + e_imm) & ~64'd1) : (e_pc + e_imm);",
    bad=(
        "  assign redirect_pc = e_jalr ? ((op_a + e_imm) & ~64'd1)"
        " : (e_pc + 64'd4 + e_imm);"
    ),
    description="Branch/JAL targets are computed from pc+4 instead of pc.",
))

_register(Patch(
    name="mem-load-sign",
    module="rv_mem",
    good="  assign sw = m_mem_unsigned ? 1'b0 : raw[31];",
    bad="  assign sw = 1'b0;",
    description="LW zero-extends: 32-bit loads lose their sign.",
))

_register(Patch(
    name="if-redirect-priority",
    module="rv_if",
    good=(
        "    if (rst)\n"
        "      pc_q <= 64'd0;\n"
        "    else if (redirect_valid)\n"
        "      pc_q <= redirect_pc;\n"
        "    else if (!stall)\n"
        "      pc_q <= pc_q + 64'd4;"
    ),
    bad=(
        "    if (rst)\n"
        "      pc_q <= 64'd0;\n"
        "    else if (!stall)\n"
        "      pc_q <= redirect_valid ? redirect_pc : (pc_q + 64'd4);"
    ),
    description=(
        "Redirects are swallowed while the front-end is stalled, so a "
        "taken branch coinciding with a load-use stall is lost."
    ),
))

_register(Patch(
    name="id-wb-bypass-missing",
    module="rv_id",
    good=(
        "  assign rs1_val = (rs1 == 5'd0) ? 64'd0\n"
        "                 : (wb_we && (wb_rd == rs1)) ? wb_data\n"
        "                 : rf_rs1;"
    ),
    bad=(
        "  assign rs1_val = (rs1 == 5'd0) ? 64'd0\n"
        "                 : rf_rs1;"
    ),
    description=(
        "The regfile read-during-write bypass is dropped: a consumer in "
        "decode while its producer retires reads the stale value "
        "(distance-3 dependency)."
    ),
))

_register(Patch(
    name="ex-sltu-signed",
    module="rv_ex",
    good="      4'd4: alu_full = (alu_a < alu_b) ? 64'd1 : 64'd0;",
    bad=(
        "      4'd4: alu_full = ($signed(alu_a) < $signed(alu_b))"
        " ? 64'd1 : 64'd0;"
    ),
    description="SLTU/SLTIU compare signed, breaking unsigned idioms.",
))

_register(Patch(
    name="node-remote-decode",
    module="pgas_node",
    good="  assign is_remote = addr_global && (dest_field != node_id[8:0]);",
    bad="  assign is_remote = addr_global;",
    description=(
        "The node forwards global addresses targeting *itself* to the "
        "network instead of serving them locally."
    ),
))

_register(Patch(
    name="wb-retire-count",
    module="rv_wb",
    good=(
        "      if (in_valid)\n"
        "        retired_q <= retired_q + 64'd1;"
    ),
    bad=(
        "      retired_q <= retired_q + 64'd1;"
    ),
    description="The retired-instruction counter counts bubbles too.",
))


def patch_names() -> List[str]:
    return list(PATCHES)


def get_patch(name: str) -> Patch:
    patch = PATCHES.get(name)
    if patch is None:
        raise KeyError(f"unknown patch {name!r}; have {sorted(PATCHES)}")
    return patch


def single_stage_patches() -> List[Patch]:
    """Patches touching exactly one pipeline-stage module (the Fig. 8
    population — 'All these bugs affected a single pipeline stage')."""
    stages = {"rv_if", "rv_id", "rv_ex", "rv_mem", "rv_wb"}
    return [p for p in PATCHES.values() if p.module in stages]
