"""Multi-session LiveSim service: many users, one simulator process.

The paper's workflow is one designer in one process; the service turns
that into infrastructure: a threaded JSON-lines socket server where
each *named session* owns a full :class:`~repro.live.session.LiveSession`
(design source, pipes, checkpoints, background verification) behind a
per-session lock, so independent sessions make progress concurrently
while commands within one session stay serialized.

Layering::

    _Connection  -- one socket, reads requests / writes responses+events
    LiveSimServer -- accept loop, dispatch, idle reaper, shutdown
    SessionManager -- named LiveSession + CommandInterpreter registry

All sessions share one on-disk :class:`~repro.server.store.ArtifactStore`
(when configured), so the second session compiling a design the first
one already compiled — or a warm restart of the whole server — loads
artifacts from disk instead of running codegen.

Observability: ``server.requests`` / ``server.request_errors``
counters, ``server.sessions`` / ``server.connections`` gauges, and
``server.request_seconds`` + per-command ``server.cmd.<name>.seconds``
latency histograms.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .. import obs
from ..analyze import AnalysisReport, GateBlockedError, count_by_severity
from ..hdl.errors import HDLError, SimulationError
from ..live.checkpoint import Checkpoint
from ..live.commands import CommandError, CommandInterpreter
from ..live.consistency import ConsistencyReport
from ..live.session import ERDReport, LiveSession
from ..sanitize import SanitizerError
from ..sim.pipeline import Pipe
from ..sim.testbench import reset_sequence
from ..trace.buffer import DEFAULT_SUB_QUEUE as TRACE_SUB_QUEUE
from . import protocol
from .protocol import (
    PROTOCOL_VERSION,
    Event,
    ProtocolError,
    Request,
    Response,
    encode_event,
    encode_response,
    error_response,
    ok_response,
    to_jsonable,
)

DEFAULT_PORT = 7391


class UnknownSessionError(KeyError):
    """Request names a session that does not exist."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it plain
        return self.args[0] if self.args else "unknown session"


class DuplicateSessionError(ValueError):
    """``open`` names a session that already exists."""


# -- result summarization ----------------------------------------------------


def summarize(value: Any) -> Any:
    """Command result -> compact JSON-safe summary for the wire.

    Heavyweight simulator objects shrink to the fields a client acts
    on; small dataclasses pass through :func:`protocol.to_jsonable`.
    """
    if isinstance(value, Pipe):
        return {
            "_type": "Pipe",
            "name": value.name,
            "cycle": value.cycle,
            "outputs": value.outputs(),
        }
    if isinstance(value, Checkpoint):
        return {
            "_type": "Checkpoint",
            "id": value.id,
            "cycle": value.cycle,
            "version": value.version,
            "bytes": value.total_bytes(),
        }
    if isinstance(value, ConsistencyReport):
        return {
            "_type": "ConsistencyReport",
            "all_consistent": value.all_consistent,
            "divergence_cycle": value.divergence_cycle,
            "segments": len(value.segments),
            "cancelled_segments": value.cancelled_segments,
            "status": value.status,
            "workers": value.workers,
            "wall_seconds": value.wall_seconds,
        }
    if isinstance(value, ERDReport):
        return {
            "_type": "ERDReport",
            "behavioral": value.behavioral,
            "version": value.version,
            "parse_seconds": value.parse_seconds,
            "compile_seconds": value.compile_seconds,
            "swap_seconds": value.swap_seconds,
            "reload_seconds": value.reload_seconds,
            "replay_seconds": value.replay_seconds,
            "total_seconds": value.total_seconds,
            "within_two_seconds": value.within_two_seconds,
            "cycles_replayed": value.cycles_replayed,
            "checkpoint_cycle": value.checkpoint_cycle,
            "recompiled_keys": list(value.recompiled_keys),
            "reused_keys": list(value.reused_keys),
            "swapped_instances": value.swapped_instances,
            "pipes_updated": list(value.pipes_updated),
            "background_verifies": list(value.background_verifies),
            "consistency": {
                name: summarize(report)
                for name, report in value.consistency.items()
            },
            "analyze_seconds": value.analyze_seconds,
            "analyzed_keys": list(value.analyzed_keys),
            "analysis_reused_keys": list(value.analysis_reused_keys),
            "findings": [d.to_json() for d in value.diagnostics],
            "new_findings": [d.to_json() for d in value.new_findings],
            "gate_overridden": value.gate_overridden,
            "sanitize": value.sanitize,
            "sanitized_recompiled_keys": list(
                value.sanitized_recompiled_keys
            ),
            "sanitized_reused_keys": list(value.sanitized_reused_keys),
            "opt": value.opt,
            "pass_computed_keys": {
                name: list(keys)
                for name, keys in value.pass_computed_keys.items()
            },
            "pass_reused_keys": {
                name: list(keys)
                for name, keys in value.pass_reused_keys.items()
            },
        }
    if isinstance(value, AnalysisReport):
        return {
            "_type": "AnalysisReport",
            "top": value.top,
            "counts": value.counts,
            "analyzed_keys": list(value.analyzed_keys),
            "reused_keys": list(value.reused_keys),
            "seconds": value.seconds,
            "findings": [d.to_json() for d in value.diagnostics],
        }
    if isinstance(value, list):
        return [summarize(item) for item in value]
    return to_jsonable(value)


# -- error mapping -----------------------------------------------------------


def error_payload(exc: Exception) -> Dict[str, Any]:
    """Map one command exception to its wire-level error object.

    Shared by the threaded server and the sharded session workers so a
    client sees identical errors whichever front-end served it.
    """
    if isinstance(exc, CommandError):
        return {"type": "command", "message": str(exc)}
    if isinstance(exc, UnknownSessionError):
        return {"type": "unknown-session", "message": str(exc)}
    if isinstance(exc, DuplicateSessionError):
        return {"type": "duplicate-session", "message": str(exc)}
    if isinstance(exc, GateBlockedError):
        # Before HDLError (its base): a refused swap is a distinct
        # client-visible outcome carrying the blocking findings.
        return {
            "type": "gate",
            "message": str(exc),
            "findings": [d.to_json() for d in exc.diagnostics],
        }
    if isinstance(exc, HDLError):
        return {"type": "hdl", "message": str(exc)}
    if isinstance(exc, SanitizerError):
        # Before SimulationError (its base): a trap carries the
        # offending site so clients can jump to the source line.
        return {
            "type": "sanitizer",
            "message": str(exc),
            "kind": exc.kind,
            "module": exc.module,
            "signal": exc.signal,
            "line": exc.line,
        }
    if isinstance(exc, SimulationError):
        return {"type": "simulation", "message": str(exc)}
    if isinstance(exc, ProtocolError):
        return {"type": "protocol", "message": str(exc)}
    return {
        "type": "internal",
        "message": f"{type(exc).__name__}: {exc}",
    }


# -- background-verify watching ----------------------------------------------


def watch_verify_loop(
    managed: "ManagedSession",
    pipe: str,
    send_event: Any,
    should_stop: Any,
    poll: float,
) -> None:
    """Poll one pipe's background verification, emitting ``verify_status``
    events until the job leaves the running state.

    ``send_event(data: dict) -> bool`` delivers one event (False stops
    the watch); ``should_stop() -> bool`` is the server/worker shutdown
    flag.  Runs in the caller's thread — spawn one per watch.
    """
    last = None
    while not should_stop():
        try:
            status = managed.session.verify_status(pipe)
        except SimulationError:
            return  # pipe vanished (session closed / renamed)
        snapshot = (
            status.state,
            status.completed_segments,
            status.cancelled_segments,
        )
        if snapshot != last:
            data = to_jsonable(status)
            data["pipe"] = pipe
            if not send_event(data):
                return
            last = snapshot
        if status.state != "running":
            return
        time.sleep(poll)


# -- live-trace value-change streaming ---------------------------------------


def build_trace_line(cmd: str, params: Dict) -> Tuple[str, Optional[Dict]]:
    """Validate a watch/unwatch/trace/replay request and build the
    canonical interpreter command line for it.

    Returns ``(line, watch_opts)`` where ``watch_opts`` (only for
    ``watch``) carries subscription options that exist on the wire but
    not in the command syntax (``max_events``).  Shared by the threaded
    server and the sharded workers so both journal identical lines.
    """

    def need_name(key: str) -> str:
        value = params.get(key)
        if not isinstance(value, str) or not value:
            raise ProtocolError(f"{key!r} must be a non-empty string")
        if any(ch in value for ch in ",\n#"):
            raise ProtocolError(f"{key!r} must not contain ',' '#' or "
                                "newlines")
        return value

    def opt_cycle(key: str) -> Optional[int]:
        value = params.get(key)
        if value is None:
            return None
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ProtocolError(f"{key!r} must be a non-negative integer")
        return value

    pipe = need_name("pipe")
    if cmd == "watch":
        signal = need_name("signal")
        max_events = params.get("max_events")
        if max_events is not None and (
            not isinstance(max_events, int)
            or isinstance(max_events, bool)
            or max_events < 1
        ):
            raise ProtocolError("'max_events' must be a positive integer")
        opts = {"max_events": max_events} if max_events else {}
        return f"watch {pipe}, {signal}", opts
    if cmd == "unwatch":
        signal = need_name("signal")
        return f"unwatch {pipe}, {signal}", None
    if cmd == "trace":
        signal = params.get("signal")
        if signal is None:
            return f"trace {pipe}", None
        signal = need_name("signal")
        start = opt_cycle("start")
        end = opt_cycle("end")
        line = f"trace {pipe}, {signal}"
        if start is not None or end is not None:
            line += f", {start or 0}"
            if end is not None:
                line += f", {end}"
        return line, None
    # replay
    start = opt_cycle("start")
    end = opt_cycle("end")
    if start is None or end is None:
        raise ProtocolError("'start' and 'end' are required for replay")
    line = f"replay {pipe}, {start}, {end}"
    signals = params.get("signals")
    if signals is not None:
        if not isinstance(signals, list) or not all(
            isinstance(s, str) and s for s in signals
        ):
            raise ProtocolError("'signals' must be a list of signal names")
        for signal in signals:
            if any(ch in signal for ch in ",\n#"):
                raise ProtocolError(
                    "signal names must not contain ',' '#' or newlines"
                )
            line += f", {signal}"
    return line, None


def watch_trace_loop(
    managed: "ManagedSession",
    pipe: str,
    signal: str,
    sub,
    send_event: Any,
    should_stop: Any,
    poll: float,
) -> None:
    """Drain one trace subscription, emitting batched ``value_change``
    events until the subscription closes (``unwatch``), the consumer
    goes away, or the pipe vanishes.

    ``sub`` is a :class:`repro.trace.TraceSubscription`;
    ``send_event(data: dict) -> bool`` delivers one event (False stops
    the watch); ``should_stop() -> bool`` is the server/worker shutdown
    flag.  Runs in the caller's thread — spawn one per watch.  The
    simulation side never blocks on this loop: the subscription queue
    drops oldest under backpressure and counts the drops.
    """
    try:
        while not should_stop():
            if sub.closed:
                return
            events, dropped = sub.drain()
            if events:
                data = {
                    "pipe": pipe,
                    "signal": signal,
                    "events": events,
                    "events_dropped": dropped,
                }
                if not send_event(data):
                    return
            try:
                managed.session.pipe(pipe)
            except SimulationError:
                return  # pipe vanished (session closed / renamed)
            time.sleep(poll)
    finally:
        sub.close()


# -- session registry --------------------------------------------------------


class ManagedSession:
    """One named LiveSession plus its interpreter and serialization lock."""

    def __init__(self, name: str, session: LiveSession,
                 tb_handle: Optional[str], clock):
        self.name = name
        self.session = session
        self.interp = CommandInterpreter(session)
        self.tb_handle = tb_handle
        self.lock = threading.RLock()
        self._clock = clock
        self.created = clock()
        self.last_used = self.created
        self.commands = 0

    def touch(self) -> None:
        self.last_used = self._clock()
        self.commands += 1

    def idle_seconds(self) -> float:
        return self._clock() - self.last_used


class SessionManager:
    """Registry of named sessions with idle eviction.

    ``clock`` is injectable (monotonic seconds) so eviction is testable
    without real waiting.
    """

    def __init__(
        self,
        artifact_store=None,
        checkpoint_interval: int = 10_000,
        idle_timeout: Optional[float] = None,
        clock=time.monotonic,
    ):
        self.artifact_store = artifact_store
        self.checkpoint_interval = checkpoint_interval
        self.idle_timeout = idle_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._sessions: Dict[str, ManagedSession] = {}

    # -- lifecycle -----------------------------------------------------------

    def open(
        self,
        name: str,
        source: str,
        reset_cycles: int = 2,
    ) -> Dict[str, Any]:
        """Create a named session from LHDL source text.

        Registers a ``reset_sequence`` testbench (with a factory spec,
        so background verification can rebuild it in worker processes)
        unless ``reset_cycles`` is negative.
        """
        if not name:
            raise DuplicateSessionError("session name must be non-empty")
        with self._lock:
            if name in self._sessions:
                raise DuplicateSessionError(
                    f"session {name!r} already exists"
                )
        session = LiveSession(
            source,
            checkpoint_interval=self.checkpoint_interval,
            artifact_store=self.artifact_store,
        )
        tb_handle = None
        if reset_cycles >= 0:
            tb_handle = session.load_testbench(
                reset_sequence("rst", cycles=reset_cycles),
                factory=(
                    "repro.sim.testbench:reset_sequence",
                    {"reset_name": "rst", "cycles": reset_cycles},
                ),
            )
        managed = ManagedSession(name, session, tb_handle, self._clock)
        with self._lock:
            if name in self._sessions:  # lost a creation race
                session.close()
                raise DuplicateSessionError(
                    f"session {name!r} already exists"
                )
            self._sessions[name] = managed
            count = len(self._sessions)
        obs.incr("server.sessions_opened")
        obs.gauge("server.sessions", count)
        from ..live.tables import STAGE

        handles = {
            str(entry.payload): entry.handle
            for entry in session.objects.by_type(STAGE)
        }
        return {
            "session": name,
            "modules": sorted(session.compiler.design.modules),
            "handles": handles,
            "tb": tb_handle,
            "reset_cycles": reset_cycles,
        }

    def get(self, name: str) -> ManagedSession:
        with self._lock:
            managed = self._sessions.get(name)
        if managed is None:
            raise UnknownSessionError(f"unknown session {name!r}")
        return managed

    def close(self, name: str) -> bool:
        with self._lock:
            managed = self._sessions.pop(name, None)
            count = len(self._sessions)
        if managed is None:
            raise UnknownSessionError(f"unknown session {name!r}")
        with managed.lock:
            managed.session.close()
        obs.incr("server.sessions_closed")
        obs.gauge("server.sessions", count)
        return True

    def close_all(self) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for managed in sessions:
            with managed.lock:
                managed.session.close()
        obs.gauge("server.sessions", 0)

    def evict_idle(self) -> List[str]:
        """Close sessions idle past ``idle_timeout``.

        A session whose lock is held (mid-command) is never evicted,
        whatever its timestamp says.
        """
        if self.idle_timeout is None:
            return []
        evicted = []
        with self._lock:
            candidates = [
                (name, managed)
                for name, managed in self._sessions.items()
                if managed.idle_seconds() > self.idle_timeout
            ]
        for name, managed in candidates:
            if not managed.lock.acquire(blocking=False):
                continue
            try:
                with self._lock:
                    if self._sessions.get(name) is not managed:
                        continue
                    if managed.idle_seconds() <= self.idle_timeout:
                        continue
                    del self._sessions[name]
                managed.session.close()
                evicted.append(name)
            finally:
                managed.lock.release()
        if evicted:
            obs.incr("server.sessions_evicted", len(evicted))
            with self._lock:
                obs.gauge("server.sessions", len(self._sessions))
        return evicted

    # -- introspection -------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._sessions)

    def describe(self) -> List[Dict[str, Any]]:
        with self._lock:
            sessions = list(self._sessions.values())
        return [
            {
                "session": managed.name,
                "modules": len(managed.session.compiler.design.modules),
                "pipes": sorted(managed.session.pipelines.names()),
                "commands": managed.commands,
                "idle_seconds": managed.idle_seconds(),
                "version": managed.session.version,
            }
            for managed in sessions
        ]


# -- connections -------------------------------------------------------------


class _Connection:
    """One client socket: request reader plus thread-safe writer."""

    def __init__(self, sock: socket.socket, peer: str):
        self.sock = sock
        self.peer = peer
        self.closed = False
        self._wlock = threading.Lock()

    def send_line(self, text: str) -> bool:
        with self._wlock:
            if self.closed:
                return False
            try:
                self.sock.sendall(text.encode("utf-8"))
                return True
            except OSError:
                self.closed = True
                return False

    def send_response(self, response: Response) -> bool:
        return self.send_line(encode_response(response))

    def send_event(self, name: str, session: str, data: Dict) -> bool:
        return self.send_line(
            encode_event(Event(name=name, session=session, data=data))
        )

    def close(self) -> None:
        with self._wlock:
            self.closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class LiveSimServer:
    """Threaded JSON-lines socket front-end over a SessionManager."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        artifact_store=None,
        idle_timeout: Optional[float] = None,
        checkpoint_interval: int = 10_000,
        verify_poll: float = 0.05,
        reaper_interval: Optional[float] = None,
    ):
        self.manager = SessionManager(
            artifact_store=artifact_store,
            checkpoint_interval=checkpoint_interval,
            idle_timeout=idle_timeout,
        )
        self._host = host
        self._port = port
        self._verify_poll = verify_poll
        self._reaper_interval = reaper_interval or (
            min(idle_timeout / 2.0, 1.0) if idle_timeout else None
        )
        self._listener: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._conn_lock = threading.Lock()
        self._connections: List[_Connection] = []
        self.address: Optional[Tuple[str, int]] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, listen, and spawn the accept (and reaper) threads."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(32)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        accept = threading.Thread(
            target=self._accept_loop, name="livesim-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        if self._reaper_interval is not None:
            reaper = threading.Thread(
                target=self._reaper_loop, name="livesim-reaper", daemon=True
            )
            reaper.start()
            self._threads.append(reaper)
        return self.address

    def serve_forever(self) -> None:
        if self._listener is None:
            self.start()
        try:
            while not self._stop.wait(0.2):
                pass
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            self.shutdown()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop accepting, close every connection and session, join
        worker threads.  Idempotent; callable from a handler thread."""
        if self._stop.is_set() and self._listener is None:
            return
        self._stop.set()
        listener, self._listener = self._listener, None
        if listener is not None:
            # A blocked accept() is not reliably woken by close() alone;
            # poke it with a throwaway connection first.
            if self.address is not None:
                try:
                    socket.create_connection(self.address, timeout=1).close()
                except OSError:
                    pass
            try:
                listener.close()
            except OSError:
                pass
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            conn.close()
        self.manager.close_all()
        current = threading.current_thread()
        for thread in self._threads:
            if thread is not current:
                thread.join(timeout)
        obs.gauge("server.connections", 0)

    # -- accept / reap -------------------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        while not self._stop.is_set() and listener is not None:
            try:
                sock, addr = listener.accept()
            except OSError:
                return  # listener closed: shutting down
            if self._stop.is_set():  # the shutdown wake-up poke
                try:
                    sock.close()
                except OSError:
                    pass
                return
            conn = _Connection(sock, f"{addr[0]}:{addr[1]}")
            with self._conn_lock:
                self._connections.append(conn)
                obs.gauge("server.connections", len(self._connections))
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name=f"livesim-conn-{conn.peer}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _reaper_loop(self) -> None:
        while not self._stop.wait(self._reaper_interval):
            self.manager.evict_idle()

    # -- per-connection ------------------------------------------------------

    def _serve_connection(self, conn: _Connection) -> None:
        obs.incr("server.connections_accepted")
        rfile = conn.sock.makefile("rb")
        try:
            while not self._stop.is_set():
                line = rfile.readline(protocol.MAX_LINE_BYTES + 2)
                if not line:
                    return
                if len(line) > protocol.MAX_LINE_BYTES:
                    conn.send_response(error_response(
                        -1, "protocol",
                        f"line exceeds {protocol.MAX_LINE_BYTES} bytes",
                    ))
                    return
                if not line.strip():
                    continue
                try:
                    message = protocol.decode(line)
                except ProtocolError as exc:
                    conn.send_response(
                        error_response(-1, "protocol", str(exc))
                    )
                    continue
                if not isinstance(message, Request):
                    conn.send_response(error_response(
                        -1, "protocol", "only requests flow client->server"
                    ))
                    continue
                response, stop_after = self._handle_request(conn, message)
                conn.send_response(response)
                if stop_after:
                    threading.Thread(
                        target=self.shutdown, daemon=True
                    ).start()
                    return
        finally:
            try:
                rfile.close()
            except OSError:
                pass
            conn.close()
            with self._conn_lock:
                if conn in self._connections:
                    self._connections.remove(conn)
                obs.gauge("server.connections", len(self._connections))

    def _handle_request(
        self, conn: _Connection, request: Request
    ) -> Tuple[Response, bool]:
        started = time.perf_counter()
        obs.incr("server.requests")
        stop_after = False
        try:
            value, stop_after = self._dispatch(conn, request)
            response = ok_response(request.id, value)
        except Exception as exc:  # a bug must not kill the connection
            response = Response(
                id=request.id, ok=False, error=error_payload(exc)
            )
        if not response.ok:
            obs.incr("server.request_errors")
        elapsed = time.perf_counter() - started
        obs.histogram("server.request_seconds", elapsed)
        obs.histogram(f"server.cmd.{request.cmd}.seconds", elapsed)
        return response, stop_after

    # -- dispatch ------------------------------------------------------------

    def _dispatch(
        self, conn: _Connection, request: Request
    ) -> Tuple[Any, bool]:
        cmd = request.cmd
        params = request.params
        if cmd == "ping":
            return {"pong": True, "protocol": PROTOCOL_VERSION}, False
        if cmd == "open":
            return self._cmd_open(params), False
        if cmd == "cmd":
            return self._cmd_execute(conn, params), False
        if cmd == "reload":
            return self._cmd_reload(conn, params), False
        if cmd in protocol.TRACE_COMMANDS:
            return self._cmd_trace_verb(conn, cmd, params), False
        if cmd == "sessions":
            return self.manager.describe(), False
        if cmd == "stats":
            return self._cmd_stats(), False
        if cmd == "close":
            name = self._str_param(params, "session")
            self.manager.close(name)
            return {"closed": name}, False
        if cmd == "shutdown":
            return {"stopping": True, "sessions": self.manager.count}, True
        raise ProtocolError(
            f"unknown server command {cmd!r}; expected one of "
            f"{sorted(protocol.BASE_COMMANDS + protocol.TRACE_COMMANDS)}"
        )

    @staticmethod
    def _str_param(params: Dict, name: str) -> str:
        value = params.get(name)
        if not isinstance(value, str) or not value:
            raise ProtocolError(f"{name!r} must be a non-empty string")
        return value

    def _cmd_open(self, params: Dict) -> Dict:
        name = self._str_param(params, "session")
        source = self._str_param(params, "source")
        reset_cycles = params.get("reset_cycles", 2)
        if not isinstance(reset_cycles, int) or isinstance(reset_cycles, bool):
            raise ProtocolError("'reset_cycles' must be an integer")
        return self.manager.open(name, source, reset_cycles=reset_cycles)

    def _cmd_execute(
        self,
        conn: _Connection,
        params: Dict,
        watch_opts: Optional[Dict] = None,
    ) -> Any:
        name = self._str_param(params, "session")
        line = self._str_param(params, "line")
        managed = self.manager.get(name)
        with managed.lock:
            result = managed.interp.execute(line)
            managed.touch()
        verb = result.command.lower()
        if verb == "verify":
            pipe = CommandInterpreter.parse(line)[1][0]
            self._watch_verify(conn, managed, pipe)
        elif verb == "watch":
            operands = CommandInterpreter.parse(line)[1]
            self._watch_trace(
                conn, managed, operands[0], operands[1],
                **(watch_opts or {}),
            )
        return summarize(result.value)

    def _cmd_trace_verb(
        self, conn: _Connection, cmd: str, params: Dict
    ) -> Any:
        """The dedicated watch/unwatch/trace/replay protocol verbs —
        sugar that builds the interpreter command line, so the journal
        and the ``cmd`` path see exactly one canonical form."""
        line, watch_opts = build_trace_line(cmd, params)
        forwarded = {"session": params.get("session"), "line": line}
        return self._cmd_execute(conn, forwarded, watch_opts=watch_opts)

    def _cmd_reload(self, conn: _Connection, params: Dict) -> Any:
        name = self._str_param(params, "session")
        source = self._str_param(params, "source")
        verify = params.get("verify", False)
        if verify not in (False, True, "background"):
            raise ProtocolError(
                "'verify' must be true, false, or \"background\""
            )
        override = params.get("override", False)
        if not isinstance(override, bool):
            raise ProtocolError("'override' must be a boolean")
        managed = self.manager.get(name)
        with managed.lock:
            report = managed.session.apply_change(
                source, verify=verify, override_gate=override
            )
            managed.touch()
        if report.behavioral:
            # Findings stream to the initiating connection like
            # verify_status events do; the response stays compact.
            conn.send_event("lint_findings", name, {
                "version": report.version,
                "counts": count_by_severity(report.diagnostics),
                "findings": [d.to_json() for d in report.diagnostics],
                "new_findings": [d.to_json() for d in report.new_findings],
                "gate_overridden": report.gate_overridden,
            })
        for pipe in report.background_verifies:
            self._watch_verify(conn, managed, pipe)
        return summarize(report)

    @staticmethod
    def _pass_cache_stats(counters: Dict[str, int]) -> Dict[str, Dict]:
        passes: Dict[str, Dict[str, int]] = {}
        for name, value in counters.items():
            if not name.startswith("passes."):
                continue
            parts = name.split(".", 2)
            if len(parts) != 3:
                continue
            _, pass_name, kind = parts
            if kind == "cache_hits":
                passes.setdefault(pass_name, {}).update(hits=value)
            elif kind == "cache_misses":
                passes.setdefault(pass_name, {}).update(misses=value)
        for entry in passes.values():
            entry.setdefault("hits", 0)
            entry.setdefault("misses", 0)
        return passes

    def _cmd_stats(self) -> Dict:
        metrics = obs.get_metrics().as_dict()
        counters = metrics.get("counters", {})
        stats: Dict[str, Any] = {
            "protocol": PROTOCOL_VERSION,
            "sessions": self.manager.count,
            "metrics": metrics,
            # Backpressure is a first-class stat, not something buried
            # in the metrics dump: clients watch these to tell "I am
            # too slow" from "the server is fine".
            "events_dropped": counters.get("server.events_dropped", 0),
            "trace": {
                "cycles_dropped": counters.get("trace.cycles_dropped", 0),
                "events_dropped": counters.get("trace.events_dropped", 0),
            },
            # Per-pass compile-cache counters (repro.passes): one
            # {hits, misses} entry per pass that ran at least once.
            "passes": self._pass_cache_stats(counters),
        }
        store = self.manager.artifact_store
        if store is not None:
            stats["store"] = {
                "root": store.root,
                "artifacts": len(store),
                "bytes": store.total_bytes(),
            }
        return stats

    # -- background-verify event streaming -----------------------------------

    def _watch_verify(
        self, conn: _Connection, managed: ManagedSession, pipe: str
    ) -> None:
        """Stream ``verify_status`` events for one pipe's background
        verification to the connection that started it, until the job
        leaves the running state (or the connection/server dies)."""

        def loop() -> None:
            watch_verify_loop(
                managed,
                pipe,
                lambda data: conn.send_event(
                    "verify_status", managed.name, data
                ),
                lambda: self._stop.is_set() or conn.closed,
                self._verify_poll,
            )

        thread = threading.Thread(
            target=loop, name=f"livesim-verify-{managed.name}", daemon=True
        )
        thread.start()
        self._threads.append(thread)

    # -- value-change event streaming ----------------------------------------

    def _watch_trace(
        self,
        conn: _Connection,
        managed: ManagedSession,
        pipe: str,
        signal: str,
        max_events: Optional[int] = None,
    ) -> None:
        """Stream batched ``value_change`` events for one watched
        signal to the connection that armed the watch, until unwatch
        closes the subscription or the connection/server dies."""
        session = managed.session
        with managed.lock:
            buffer = session.trace_buffer(pipe, create=True)
            sub = buffer.subscribe(
                [signal],
                max_events=max_events or TRACE_SUB_QUEUE,
            )

        def loop() -> None:
            watch_trace_loop(
                managed,
                pipe,
                signal,
                sub,
                lambda data: conn.send_event(
                    "value_change", managed.name, data
                ),
                lambda: self._stop.is_set() or conn.closed,
                self._verify_poll,
            )

        thread = threading.Thread(
            target=loop,
            name=f"livesim-trace-{managed.name}-{pipe}",
            daemon=True,
        )
        thread.start()
        self._threads.append(thread)
