"""Blocking client for the LiveSim server, plus a line-oriented REPL.

Library use::

    from repro.server.client import LiveSimClient

    with LiveSimClient("127.0.0.1", 7391) as client:
        client.open_session("alice", MY_SOURCE)
        client.command("alice", "instPipe p0, stage1")
        client.command("alice", "run tb0, p0, 10000")
        print(client.command("alice", "peek p0"))

One request is in flight at a time per client (the simple model a
scripted session wants); server events that arrive while waiting for a
response are buffered on :attr:`LiveSimClient.events` and can also be
consumed with :meth:`wait_event`.

REPL use (``python -m repro.server.client``)::

    python -m repro.server.client --port 7391 --session alice \
        --design design.v
    alice> instPipe p0, stage1
    alice> run tb0, p0, 10000
"""

from __future__ import annotations

import argparse
import itertools
import socket
import sys
import time
from typing import Any, Callable, List, Optional

from . import protocol
from .protocol import Event, ProtocolError, Request, Response
from .service import DEFAULT_PORT


class ServerError(Exception):
    """The server answered a request with an error response."""

    def __init__(self, kind: str, message: str):
        super().__init__(f"[{kind}] {message}")
        self.kind = kind
        self.message = message


class ReadTimeout(ConnectionError):
    """No bytes from the server within ``read_timeout`` seconds.

    Distinct from :class:`TimeoutError` so a hung worker surfaces as a
    clear, catchable client-side condition instead of blocking forever
    (or masquerading as a protocol failure).  A timeout *between*
    frames is recoverable — responses carry ids, so a late reply is
    simply skipped.  A timeout *mid-frame* (some bytes of a line
    arrived, then silence) is not: the buffered partial line would make
    the next read decode garbage far from the cause, so the client
    marks itself :attr:`~LiveSimClient.broken` and every later request
    demands a reconnect.
    """


class LiveSimClient:
    """One connection to a LiveSim server.

    ``timeout`` bounds the TCP connect; ``read_timeout`` bounds every
    wait for a response or event line.  The read timeout defaults to
    **off** (a REPL happily blocks on a long ``run``); scripted
    harnesses — smoke tests, load benches — should set it so a hung or
    killed worker turns into a :class:`ReadTimeout` instead of a stuck
    process.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: Optional[float] = 30.0,
        on_event: Optional[Callable[[Event], None]] = None,
        read_timeout: Optional[float] = None,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(read_timeout)
        self._rbuf = bytearray()
        self._timeout = read_timeout
        self._ids = itertools.count(1)
        self._on_event = on_event
        self._broken = False
        self.events: List[Event] = []

    @property
    def broken(self) -> bool:
        """True once the read stream is desynchronized (a timeout hit
        mid-frame); the connection must be replaced, not reused."""
        return self._broken

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "LiveSimClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- core request/response ----------------------------------------------

    def request(self, cmd: str, **params: Any) -> Any:
        """Send one request; block until its response arrives.

        Events interleaved with the response are buffered, not lost.
        Raises :class:`ServerError` on an error response and
        :class:`ConnectionError` if the server goes away mid-request.
        """
        if self._broken:
            raise ConnectionError(
                "connection is desynchronized (timeout hit mid-frame); "
                "open a fresh LiveSimClient"
            )
        request_id = next(self._ids)
        line = protocol.encode_request(
            Request(id=request_id, cmd=cmd, params=params)
        )
        self._sock.sendall(line.encode("utf-8"))
        while True:
            message = self._read_message()
            if isinstance(message, Event):
                self._record_event(message)
                continue
            if isinstance(message, Response):
                if message.id != request_id:
                    continue  # stale reply from an aborted exchange
                if message.ok:
                    return message.value
                error = message.error or {}
                raise ServerError(
                    error.get("type", "internal"),
                    error.get("message", "unknown error"),
                )

    def _read_message(self):
        line = self._read_line()
        try:
            return protocol.decode(line)
        except ProtocolError as exc:
            self._broken = True
            raise ConnectionError(f"bad frame from server: {exc}") from exc

    def _read_line(self) -> bytes:
        """Read one ``\\n``-terminated frame with explicit buffering.

        Explicit (rather than ``makefile``) so a timeout can tell
        whether it struck between frames (buffer empty — recoverable)
        or mid-frame (partial line buffered — the stream is
        desynchronized and the client is marked broken).
        """
        while True:
            newline = self._rbuf.find(b"\n")
            if newline >= 0:
                line = bytes(self._rbuf[:newline + 1])
                del self._rbuf[:newline + 1]
                return line
            if len(self._rbuf) > protocol.MAX_LINE_BYTES:
                self._broken = True
                raise ConnectionError(
                    "frame from server exceeds "
                    f"{protocol.MAX_LINE_BYTES} bytes"
                )
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                if self._rbuf:
                    self._broken = True
                    raise ReadTimeout(
                        f"server stalled mid-frame ({len(self._rbuf)} "
                        "bytes of an unterminated line buffered); the "
                        "stream is desynchronized — reconnect"
                    ) from None
                raise ReadTimeout(
                    f"no data from server within {self._timeout}s "
                    "(hung worker or stalled command?)"
                ) from None
            if not chunk:
                raise ConnectionError("server closed the connection")
            self._rbuf += chunk

    def _record_event(self, event: Event) -> None:
        self.events.append(event)
        if self._on_event is not None:
            self._on_event(event)

    # -- events --------------------------------------------------------------

    def wait_event(
        self,
        name: str,
        predicate: Optional[Callable[[Event], bool]] = None,
        timeout: float = 10.0,
    ) -> Event:
        """Return (and consume) the first matching buffered event, or
        read from the socket until one arrives.  Raises TimeoutError."""

        def matches(event: Event) -> bool:
            return event.name == name and (
                predicate is None or predicate(event)
            )

        for i, event in enumerate(self.events):
            if matches(event):
                return self.events.pop(i)
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(f"no {name!r} event within {timeout}s")
            self._sock.settimeout(remaining)
            try:
                message = self._read_message()
            except ReadTimeout:
                raise TimeoutError(
                    f"no {name!r} event within {timeout}s"
                ) from None
            finally:
                self._sock.settimeout(self._timeout)
            if isinstance(message, Event):
                if matches(message):
                    return message
                self._record_event(message)

    # -- conveniences --------------------------------------------------------

    def ping(self) -> Any:
        return self.request("ping")

    def open_session(self, session: str, source: str,
                     reset_cycles: int = 2) -> Any:
        return self.request(
            "open", session=session, source=source,
            reset_cycles=reset_cycles,
        )

    def command(self, session: str, line: str) -> Any:
        return self.request("cmd", session=session, line=line)

    def reload(self, session: str, source: str,
               verify: "bool | str" = False,
               override: bool = False) -> Any:
        return self.request(
            "reload", session=session, source=source, verify=verify,
            override=override,
        )

    def sessions(self) -> Any:
        return self.request("sessions")

    def stats(self) -> Any:
        return self.request("stats")

    def resize(self, workers: int) -> Any:
        """Resize a sharded server's worker pool (admin verb)."""
        return self.request("resize", workers=workers)

    def migrate(self, session: str, worker: int) -> Any:
        """Move one session to an explicit worker (admin verb)."""
        return self.request("migrate", session=session, worker=worker)

    def watch(self, session: str, pipe: str, signal: str,
              max_events: Optional[int] = None) -> Any:
        """Arm a live watch: the server captures ``signal`` every cycle
        and streams batched ``value_change`` events back on this
        connection (buffered on :attr:`events` / :meth:`wait_event`)."""
        params: dict = {"session": session, "pipe": pipe, "signal": signal}
        if max_events is not None:
            params["max_events"] = max_events
        return self.request("watch", **params)

    def unwatch(self, session: str, pipe: str, signal: str) -> Any:
        return self.request(
            "unwatch", session=session, pipe=pipe, signal=signal
        )

    def trace(self, session: str, pipe: str,
              signal: Optional[str] = None,
              start: Optional[int] = None,
              end: Optional[int] = None) -> Any:
        """Read captured samples (or, without ``signal``, the probe
        inventory and drop counters)."""
        params: dict = {"session": session, "pipe": pipe}
        if signal is not None:
            params["signal"] = signal
        if start is not None:
            params["start"] = start
        if end is not None:
            params["end"] = end
        return self.request("trace", **params)

    def replay(self, session: str, pipe: str, start: int, end: int,
               signals: Optional[List[str]] = None) -> Any:
        """Time-travel: re-simulate ``[start, end)`` from the nearest
        checkpoint on a scratch pipe and return the traced window."""
        params: dict = {
            "session": session, "pipe": pipe, "start": start, "end": end,
        }
        if signals is not None:
            params["signals"] = list(signals)
        return self.request("replay", **params)

    def close_session(self, session: str) -> Any:
        return self.request("close", session=session)

    def shutdown_server(self) -> Any:
        return self.request("shutdown")


# -- REPL --------------------------------------------------------------------


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.client",
        description="LiveSim server client REPL (Table I command lines "
                    "over a repro.server/v1 socket)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--session", default="repl",
                        help="server-side session name (default: repl)")
    parser.add_argument("--design", metavar="PATH",
                        help="LHDL source to open the session with "
                             "(omit to attach to an existing session)")
    parser.add_argument("--reset-cycles", type=int, default=2)
    parser.add_argument("--script", metavar="PATH",
                        help="command script to run instead of the REPL")
    return parser


def _print_event(event: Event, out) -> None:
    print(f"  [event {event.name} @{event.session}] {event.data}",
          file=out)


def _trace_verb_request(
    client: LiveSimClient, session: str, line: str
) -> Any:
    """Route a watch/unwatch/trace/replay REPL line through the
    dedicated protocol verbs (rather than generic ``cmd``), so a
    sharded server records the watch for re-arm across crash recovery
    and migration."""
    verb, rest = (line.split(None, 1) + [""])[:2]
    operands = [op.strip() for op in rest.split(",")] if rest else []
    if any(not op for op in operands):
        raise ValueError(f"empty operand in {line!r}")
    verb = verb.lower()
    if verb == "watch":
        if len(operands) != 2:
            raise ValueError("usage: watch pipe-name, signal")
        return client.watch(session, operands[0], operands[1])
    if verb == "unwatch":
        if len(operands) != 2:
            raise ValueError("usage: unwatch pipe-name, signal")
        return client.unwatch(session, operands[0], operands[1])
    if verb == "trace":
        if not 1 <= len(operands) <= 4:
            raise ValueError(
                "usage: trace pipe-name [, signal [, start [, end]]]"
            )
        args = operands + [None] * (4 - len(operands))
        return client.trace(
            session, args[0], args[1],
            int(args[2], 0) if args[2] is not None else None,
            int(args[3], 0) if args[3] is not None else None,
        )
    if len(operands) < 3:
        raise ValueError("usage: replay pipe-name, start, end [, signal...]")
    return client.replay(
        session, operands[0], int(operands[1], 0), int(operands[2], 0),
        operands[3:] or None,
    )


def run_lines(client: LiveSimClient, session: str, lines, out) -> None:
    """Drive one command per line; REPL verbs: quit, stats, sessions,
    resize N, migrate session, worker-id (sharded servers only), plus
    watch/unwatch/trace/replay routed via their protocol verbs."""
    for raw in lines:
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line in ("quit", "exit"):
            return
        verb = line.split(None, 1)[0].lower()
        try:
            if line == "stats":
                value = client.stats()
            elif line == "sessions":
                value = client.sessions()
            elif line.startswith("resize "):
                value = client.resize(int(line.split(None, 1)[1]))
            elif line.startswith("migrate "):
                operands = [
                    op.strip()
                    for op in line.split(None, 1)[1].split(",")
                ]
                if len(operands) != 2:
                    raise ValueError(
                        "usage: migrate session, worker-id"
                    )
                value = client.migrate(operands[0], int(operands[1]))
            elif verb in ("watch", "unwatch", "trace", "replay"):
                value = _trace_verb_request(client, session, line)
            else:
                value = client.command(session, line)
            if value is not None:
                print(f"  {value}", file=out)
        except (ServerError, ValueError) as exc:
            print(f"error: {exc}", file=out)
        while client.events:
            _print_event(client.events.pop(0), out)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    out = sys.stdout
    try:
        client = LiveSimClient(args.host, args.port)
    except OSError as exc:
        print(f"error: cannot connect to {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    with client:
        if args.design:
            try:
                with open(args.design) as fh:
                    source = fh.read()
                info = client.open_session(
                    args.session, source, reset_cycles=args.reset_cycles
                )
            except (OSError, ServerError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            print(f"opened session {args.session!r}: "
                  f"modules {info['modules']}, tb {info['tb']}", file=out)
        if args.script:
            try:
                with open(args.script) as fh:
                    run_lines(client, args.session, fh, out)
            except OSError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            return 0
        print(f"connected to {args.host}:{args.port} "
              f"(session {args.session!r}); Table I commands, "
              "plus stats/sessions/quit", file=out)
        while True:  # pragma: no cover - interactive
            try:
                line = input(f"{args.session}> ")
            except EOFError:
                return 0
            run_lines(client, args.session, [line], out)
            if line.strip() in ("quit", "exit"):
                return 0


if __name__ == "__main__":
    sys.exit(main())
