"""WebSocket gateway for the LiveSim server (``python -m repro.server.ws``).

A thin, stdlib-only bridge so browsers can speak ``repro.server/v1``:
each WebSocket connection is paired with one TCP connection to the
upstream LiveSim server (threaded or sharded — the gateway does not
care), text frames are forwarded as protocol lines, and upstream lines
(responses *and* streamed events such as ``value_change``) come back as
text frames.  The gateway adds no protocol of its own: what a
``LiveSimClient`` would write on the socket, a browser writes in a
frame.

Plain HTTP ``GET /`` serves the bundled single-file page
(``static/livesim.html``) that renders live waveforms from ``watch``
streams and the obs metrics from ``stats`` — the paper's "insert
printfs and replay" loop in a browser tab.

The handshake (RFC 6455 §4) and framing (§5) are implemented here
directly — SHA-1 + GUID accept key, client-masked frames, ping/pong,
close — because the gateway must run with nothing but the standard
library.  The pure helpers (:func:`accept_key`, :func:`encode_frame`,
:class:`FrameParser`) are module-level for unit testing.
"""

from __future__ import annotations

import argparse
import base64
import hashlib
import os
import socket
import struct
import sys
import threading
from typing import Dict, Iterator, List, Optional, Tuple

from .service import DEFAULT_PORT

WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"
DEFAULT_WS_PORT = 7392

OP_CONT = 0x0
OP_TEXT = 0x1
OP_BINARY = 0x2
OP_CLOSE = 0x8
OP_PING = 0x9
OP_PONG = 0xA

# A browser should never need more than one protocol line per frame;
# bound frame payloads like the wire protocol bounds lines.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_STATIC_DIR = os.path.join(os.path.dirname(__file__), "static")


class WsProtocolError(ValueError):
    """Malformed WebSocket handshake or frame."""


# -- handshake ---------------------------------------------------------------


def accept_key(key: str) -> str:
    """``Sec-WebSocket-Accept`` for a client's ``Sec-WebSocket-Key``."""
    digest = hashlib.sha1((key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def parse_http_request(raw: bytes) -> Tuple[str, str, Dict[str, str]]:
    """``(method, path, lower-cased headers)`` from one request head."""
    try:
        head = raw.decode("latin-1")
    except UnicodeDecodeError as exc:
        raise WsProtocolError(f"undecodable request head: {exc}") from exc
    lines = head.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) < 3:
        raise WsProtocolError(f"bad request line {lines[0]!r}")
    method, path = parts[0], parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line or ":" not in line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return method, path, headers


def is_upgrade(headers: Dict[str, str]) -> bool:
    return (
        "websocket" in headers.get("upgrade", "").lower()
        and "upgrade" in headers.get("connection", "").lower()
    )


def handshake_response(headers: Dict[str, str]) -> bytes:
    key = headers.get("sec-websocket-key")
    if not key:
        raise WsProtocolError("upgrade request lacks Sec-WebSocket-Key")
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {accept_key(key)}\r\n"
        "\r\n"
    ).encode("ascii")


# -- framing -----------------------------------------------------------------


def encode_frame(
    payload: bytes, opcode: int = OP_TEXT,
    mask: Optional[bytes] = None, fin: bool = True,
) -> bytes:
    """One frame.  Servers send unmasked (``mask=None``); a test
    client passes a 4-byte mask, as RFC 6455 requires of clients."""
    header = bytearray()
    header.append((0x80 if fin else 0x00) | (opcode & 0x0F))
    mask_bit = 0x80 if mask is not None else 0x00
    length = len(payload)
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask is not None:
        if len(mask) != 4:
            raise WsProtocolError("mask must be 4 bytes")
        header += mask
        payload = bytes(
            b ^ mask[i % 4] for i, b in enumerate(payload)
        )
    return bytes(header) + payload


class FrameParser:
    """Incremental frame decoder: feed bytes, iterate messages.

    Continuation frames are reassembled; control frames (ping/pong/
    close) are yielded as-is (they may interleave with a fragmented
    message).  Yields ``(opcode, payload)`` with the *initial* opcode
    for reassembled messages.
    """

    def __init__(self, require_mask: bool = True):
        self._buf = bytearray()
        self._require_mask = require_mask
        self._assembly_op: Optional[int] = None
        self._assembly = bytearray()

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        self._buf += data
        out: List[Tuple[int, bytes]] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return out
            fin, opcode, payload = frame
            if opcode in (OP_CLOSE, OP_PING, OP_PONG):
                out.append((opcode, payload))
                continue
            if opcode == OP_CONT:
                if self._assembly_op is None:
                    raise WsProtocolError(
                        "continuation frame without a started message"
                    )
                self._assembly += payload
            else:
                if self._assembly_op is not None:
                    raise WsProtocolError(
                        "new data frame inside a fragmented message"
                    )
                self._assembly_op = opcode
                self._assembly += payload
            if len(self._assembly) > MAX_FRAME_BYTES:
                raise WsProtocolError(
                    f"message exceeds {MAX_FRAME_BYTES} bytes"
                )
            if fin:
                out.append((self._assembly_op, bytes(self._assembly)))
                self._assembly_op = None
                self._assembly = bytearray()

    def _next_frame(self) -> Optional[Tuple[bool, int, bytes]]:
        buf = self._buf
        if len(buf) < 2:
            return None
        first, second = buf[0], buf[1]
        fin = bool(first & 0x80)
        if first & 0x70:
            raise WsProtocolError("RSV bits set without an extension")
        opcode = first & 0x0F
        masked = bool(second & 0x80)
        length = second & 0x7F
        offset = 2
        if length == 126:
            if len(buf) < offset + 2:
                return None
            length = struct.unpack_from(">H", buf, offset)[0]
            offset += 2
        elif length == 127:
            if len(buf) < offset + 8:
                return None
            length = struct.unpack_from(">Q", buf, offset)[0]
            offset += 8
        if length > MAX_FRAME_BYTES:
            raise WsProtocolError(
                f"frame exceeds {MAX_FRAME_BYTES} bytes"
            )
        if masked:
            if len(buf) < offset + 4:
                return None
            mask = bytes(buf[offset:offset + 4])
            offset += 4
        elif self._require_mask and opcode != OP_CLOSE:
            raise WsProtocolError("client frames must be masked")
        else:
            mask = None
        if len(buf) < offset + length:
            return None
        payload = bytes(buf[offset:offset + length])
        del buf[:offset + length]
        if mask is not None:
            payload = bytes(
                b ^ mask[i % 4] for i, b in enumerate(payload)
            )
        return fin, opcode, payload


# -- gateway -----------------------------------------------------------------


def _recv_http_head(sock: socket.socket) -> bytes:
    """Read bytes until the blank line ending the request head."""
    data = bytearray()
    while b"\r\n\r\n" not in data:
        if len(data) > 64 * 1024:
            raise WsProtocolError("request head too large")
        chunk = sock.recv(4096)
        if not chunk:
            raise ConnectionError("client closed during handshake")
        data += chunk
    head, _, rest = bytes(data).partition(b"\r\n\r\n")
    if rest:
        # No request body is ever expected; leftover bytes are the
        # first WebSocket frames raced ahead of our 101.
        return head + b"\r\n\r\n" + rest
    return head


def _http_response(
    status: str, body: bytes, content_type: str = "text/plain"
) -> bytes:
    return (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: {content_type}; charset=utf-8\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii") + body


def static_page() -> bytes:
    with open(os.path.join(_STATIC_DIR, "livesim.html"), "rb") as fh:
        return fh.read()


class WsGateway:
    """Threaded WebSocket <-> JSON-lines bridge.

    One daemon thread per browser connection plus one per upstream
    socket; the gateway holds no protocol state, so a dying browser tab
    simply closes its upstream connection (the server then tears down
    that connection's watches exactly as it would for a TCP client).
    """

    def __init__(
        self,
        upstream_host: str = "127.0.0.1",
        upstream_port: int = DEFAULT_PORT,
        host: str = "127.0.0.1",
        port: int = DEFAULT_WS_PORT,
    ):
        self.upstream = (upstream_host, upstream_port)
        self._host = host
        self._port = port
        self._listener: Optional[socket.socket] = None
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self.address: Optional[Tuple[str, int]] = None

    def start(self) -> Tuple[str, int]:
        listener = socket.create_server(
            (self._host, self._port), reuse_port=False
        )
        listener.settimeout(0.5)
        self._listener = listener
        self.address = listener.getsockname()[:2]
        thread = threading.Thread(
            target=self._accept_loop, name="livesim-ws-accept", daemon=True
        )
        thread.start()
        self._threads.append(thread)
        return self.address

    def serve_forever(self) -> None:
        if self._listener is None:
            self.start()
        try:
            while not self._stop.is_set():
                self._stop.wait(0.5)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass

    # -- connection handling -------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="livesim-ws-conn", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            raw = _recv_http_head(conn)
            head, _, leftover = raw.partition(b"\r\n\r\n")
            method, path, headers = parse_http_request(head)
            if not is_upgrade(headers):
                self._serve_http(conn, method, path)
                return
            conn.sendall(handshake_response(headers))
            self._bridge(conn, leftover)
        except (WsProtocolError, ConnectionError, OSError):
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _serve_http(
        self, conn: socket.socket, method: str, path: str
    ) -> None:
        if method != "GET":
            conn.sendall(_http_response(
                "405 Method Not Allowed", b"GET only"
            ))
            return
        if path in ("/", "/index.html", "/livesim.html"):
            conn.sendall(_http_response(
                "200 OK", static_page(), "text/html"
            ))
        elif path == "/healthz":
            conn.sendall(_http_response("200 OK", b"ok"))
        else:
            conn.sendall(_http_response("404 Not Found", b"not found"))

    def _bridge(self, conn: socket.socket, leftover: bytes) -> None:
        """Pump frames <-> lines until either side closes."""
        upstream = socket.create_connection(self.upstream, timeout=30.0)
        upstream.settimeout(None)
        conn.settimeout(None)
        send_lock = threading.Lock()
        done = threading.Event()

        def ws_send(payload: bytes, opcode: int = OP_TEXT) -> bool:
            try:
                with send_lock:
                    conn.sendall(encode_frame(payload, opcode))
                return True
            except OSError:
                done.set()
                return False

        def upstream_to_ws() -> None:
            buf = bytearray()
            try:
                while not done.is_set():
                    chunk = upstream.recv(65536)
                    if not chunk:
                        break
                    buf += chunk
                    while True:
                        newline = buf.find(b"\n")
                        if newline < 0:
                            break
                        line = bytes(buf[:newline])
                        del buf[:newline + 1]
                        if not ws_send(line):
                            return
            except OSError:
                pass
            finally:
                done.set()
                ws_send(b"", OP_CLOSE)

        pump = threading.Thread(
            target=upstream_to_ws, name="livesim-ws-upstream", daemon=True
        )
        pump.start()
        parser = FrameParser(require_mask=True)
        try:
            pending = leftover
            while not done.is_set():
                if pending:
                    data, pending = pending, b""
                else:
                    data = conn.recv(65536)
                    if not data:
                        return
                for opcode, payload in parser.feed(data):
                    if opcode == OP_CLOSE:
                        ws_send(payload[:2], OP_CLOSE)
                        return
                    if opcode == OP_PING:
                        ws_send(payload, OP_PONG)
                        continue
                    if opcode == OP_PONG:
                        continue
                    if opcode != OP_TEXT:
                        raise WsProtocolError(
                            "the repro.server/v1 bridge is text-only"
                        )
                    upstream.sendall(payload.rstrip(b"\n") + b"\n")
        except (WsProtocolError, OSError):
            pass
        finally:
            done.set()
            try:
                upstream.close()
            except OSError:
                pass


# -- test-client helpers -----------------------------------------------------


def client_handshake(sock: socket.socket, host: str = "gateway") -> None:
    """Perform the client side of the upgrade (for tests/tools)."""
    key = base64.b64encode(os.urandom(16)).decode("ascii")
    sock.sendall((
        "GET / HTTP/1.1\r\n"
        f"Host: {host}\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Key: {key}\r\n"
        "Sec-WebSocket-Version: 13\r\n"
        "\r\n"
    ).encode("ascii"))
    head = _recv_http_head(sock)
    status = head.split(b"\r\n", 1)[0]
    if b"101" not in status:
        raise WsProtocolError(f"upgrade refused: {status!r}")
    _, _, headers = parse_http_request(head.partition(b"\r\n\r\n")[0])
    expected = accept_key(key)
    if headers.get("sec-websocket-accept") != expected:
        raise WsProtocolError("bad Sec-WebSocket-Accept from gateway")


def iter_messages(
    sock: socket.socket, parser: FrameParser
) -> Iterator[Tuple[int, bytes]]:
    """Blocking message iterator over a client socket (tests/tools)."""
    while True:
        data = sock.recv(65536)
        if not data:
            return
        yield from parser.feed(data)


# -- entry point -------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server.ws",
        description="WebSocket gateway bridging browsers onto a "
                    "repro.server/v1 LiveSim server",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_WS_PORT)
    parser.add_argument("--upstream-host", default="127.0.0.1")
    parser.add_argument("--upstream-port", type=int, default=DEFAULT_PORT)
    args = parser.parse_args(argv)
    gateway = WsGateway(
        upstream_host=args.upstream_host,
        upstream_port=args.upstream_port,
        host=args.host,
        port=args.port,
    )
    host, port = gateway.start()
    print(f"livesim ws gateway listening on {host}:{port} "
          f"(upstream {args.upstream_host}:{args.upstream_port})",
          flush=True)
    gateway.serve_forever()
    return 0


if __name__ == "__main__":
    sys.exit(main())
