"""Multi-session LiveSim service with a shared compile-artifact store.

The production face of the reproduction: a long-lived process serving
many concurrent edit-run-debug sessions over a JSON-lines socket
protocol, backed by an on-disk content-addressed store of compiled
modules so compile work survives restarts and is shared across users.

* :mod:`repro.server.protocol` — request/response/event framing
  (``repro.server/v1``).
* :mod:`repro.server.store` — the on-disk artifact store
  :class:`~repro.server.store.ArtifactStore` that
  :class:`~repro.live.compiler_live.LiveCompiler` reads through.
* :mod:`repro.server.service` — :class:`SessionManager` (one
  :class:`~repro.live.session.LiveSession` per named session behind a
  per-session lock) and :class:`LiveSimServer` (threaded socket
  front-end with idle eviction and graceful shutdown).
* :mod:`repro.server.client` — blocking :class:`LiveSimClient` and the
  ``python -m repro.server.client`` REPL.

Run a server::

    python -m repro.server --port 7391 --store /var/cache/livesim
"""

from .protocol import (
    PROTOCOL_VERSION,
    Event,
    ProtocolError,
    Request,
    Response,
)
from .service import (
    DEFAULT_PORT,
    DuplicateSessionError,
    LiveSimServer,
    ManagedSession,
    SessionManager,
    UnknownSessionError,
)
from .store import STORE_FORMAT, ArtifactStore, key_digest


def __getattr__(name):
    # Lazy so ``python -m repro.server.client`` does not import the
    # client module twice (once via the package, once as __main__).
    if name in ("LiveSimClient", "ServerError"):
        from . import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ArtifactStore",
    "DEFAULT_PORT",
    "DuplicateSessionError",
    "Event",
    "LiveSimClient",
    "LiveSimServer",
    "ManagedSession",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "Request",
    "Response",
    "STORE_FORMAT",
    "ServerError",
    "SessionManager",
    "UnknownSessionError",
    "key_digest",
]
