"""Multi-session LiveSim service with a shared compile-artifact store.

The production face of the reproduction: a long-lived process serving
many concurrent edit-run-debug sessions over a JSON-lines socket
protocol, backed by an on-disk content-addressed store of compiled
modules so compile work survives restarts and is shared across users.

* :mod:`repro.server.protocol` — request/response/event framing
  (``repro.server/v1``).
* :mod:`repro.server.store` — the on-disk artifact store
  :class:`~repro.server.store.ArtifactStore` that
  :class:`~repro.live.compiler_live.LiveCompiler` reads through.
* :mod:`repro.server.service` — :class:`SessionManager` (one
  :class:`~repro.live.session.LiveSession` per named session behind a
  per-session lock) and :class:`LiveSimServer` (threaded socket
  front-end with idle eviction and graceful shutdown).
* :mod:`repro.server.client` — blocking :class:`LiveSimClient` and the
  ``python -m repro.server.client`` REPL.
* :mod:`repro.server.shard` — consistent-hash ring, per-session crash
  journal, and the worker-process side of sharded mode.
* :mod:`repro.server.frontend` — the asyncio front door that shards
  sessions across worker processes (``--workers N``), restarting and
  rehydrating them on crashes.

Run a server::

    python -m repro.server --port 7391 --store /var/cache/livesim
    python -m repro.server --port 7391 --workers 4 \\
        --store /var/cache/livesim --state-dir /var/cache/livesim.state
"""

from .protocol import (
    PROTOCOL_VERSION,
    Event,
    ProtocolError,
    Request,
    Response,
)
from .service import (
    DEFAULT_PORT,
    DuplicateSessionError,
    LiveSimServer,
    ManagedSession,
    SessionManager,
    UnknownSessionError,
)
from .shard import HashRing, SessionJournal, WorkerConfig
from .store import STORE_FORMAT, ArtifactStore, key_digest


def __getattr__(name):
    # Lazy so ``python -m repro.server.client`` does not import the
    # client module twice (once via the package, once as __main__),
    # and so importing the package never drags in asyncio machinery.
    if name in ("LiveSimClient", "ReadTimeout", "ServerError"):
        from . import client

        return getattr(client, name)
    if name in ("ShardedFrontend", "WorkerCommandError"):
        from . import frontend

        return getattr(frontend, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ArtifactStore",
    "DEFAULT_PORT",
    "DuplicateSessionError",
    "Event",
    "HashRing",
    "LiveSimClient",
    "LiveSimServer",
    "ManagedSession",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReadTimeout",
    "Request",
    "Response",
    "STORE_FORMAT",
    "ServerError",
    "SessionJournal",
    "SessionManager",
    "ShardedFrontend",
    "UnknownSessionError",
    "WorkerCommandError",
    "WorkerConfig",
    "key_digest",
]
