"""Process sharding for the LiveSim server: ring, journal, worker.

The threaded server (:mod:`repro.server.service`) serializes every
session behind one GIL, so aggregate throughput is capped at ~1 core.
Sharded mode splits the session population across a pool of worker
*processes*:

* :class:`HashRing` — consistent hashing of session name -> worker id,
  so a resize moves only ~1/W of the sessions and every frontend
  restart computes the same placement.
* :class:`SessionJournal` — an on-disk, atomically-rewritten log of the
  *structural* operations of one session (open / ldLib / reload /
  instPipe / ...) plus per-pipe checkpoint-store files.  A worker crash
  is recovered by replaying the journal on a fresh worker (compiles hit
  the shared :class:`~repro.server.store.ArtifactStore`, so this is
  cheap) and restoring each pipe from its last saved checkpoint.
* :class:`SessionWorker` / :func:`worker_main` — the worker process: a
  :class:`~repro.server.service.SessionManager` slice driven by framed
  messages over a :class:`multiprocessing.connection.Connection`, with
  command execution on a small thread pool (per-session locks keep one
  session serialized) and ``verify_status`` / ``lint_findings`` events
  streamed back tagged with the originating request id.

The asyncio front door that owns the workers lives in
:mod:`repro.server.frontend`.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import os
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..live.commands import CommandInterpreter
from .service import (
    TRACE_SUB_QUEUE,
    ManagedSession,
    SessionManager,
    build_trace_line,
    error_payload,
    summarize,
    watch_trace_loop,
    watch_verify_loop,
)
from .store import ArtifactStore

JOURNAL_FORMAT = "repro.journal/v1"

# Command verbs whose effect on session *structure* must survive a
# worker crash.  They are replayed verbatim through the interpreter on
# rehydration; ``run`` is deliberately absent — simulated state is
# recovered from the checkpoint files instead of re-simulating.
# ``watch``/``unwatch`` are structural too: replaying them recreates
# the trace probes (``session.watch`` is idempotent), while the live
# subscriptions are re-armed by the frontend after the route settles.
STRUCTURAL_VERBS = frozenset(
    {"instpipe", "inststage", "copypipe", "swapstage", "san", "ldch",
     "watch", "unwatch"}
)


# -- consistent hashing ------------------------------------------------------


def _ring_point(label: str) -> int:
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys onto nodes.

    Each node owns ``replicas`` points on a 64-bit ring; a key belongs
    to the first node point clockwise from its own hash.  Adding or
    removing one node therefore remaps only the keys that fell in the
    arcs it owned (~1/W of them), which is what lets a worker-pool
    resize keep most sessions in place.
    """

    def __init__(self, nodes: Sequence = (), replicas: int = 64):
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []  # (point, node key)
        self._nodes: Dict[str, Any] = {}
        for node in nodes:
            self.add(node)

    @staticmethod
    def _key(node: Any) -> str:
        return str(node)

    def add(self, node: Any) -> None:
        key = self._key(node)
        if key in self._nodes:
            return
        self._nodes[key] = node
        for replica in range(self.replicas):
            point = _ring_point(f"{key}#{replica}")
            bisect.insort(self._points, (point, key))

    def remove(self, node: Any) -> None:
        key = self._key(node)
        if key not in self._nodes:
            return
        del self._nodes[key]
        self._points = [
            entry for entry in self._points if entry[1] != key
        ]

    def lookup(self, key: str):
        if not self._points:
            raise LookupError("hash ring has no nodes")
        point = _ring_point(key)
        index = bisect.bisect_right(self._points, (point, "￿"))
        if index == len(self._points):
            index = 0
        return self._nodes[self._points[index][1]]

    def nodes(self) -> List:
        return [self._nodes[key] for key in sorted(self._nodes)]

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Any) -> bool:
        return self._key(node) in self._nodes


# -- session journal ---------------------------------------------------------


def _session_digest(name: str) -> str:
    return hashlib.sha256(name.encode("utf-8")).hexdigest()[:16]


class SessionJournal:
    """Durable structural history of one session, for crash recovery.

    The journal is a small JSON file (atomic tmp+rename rewrite on
    every append — structural ops are rare) holding the ordered op
    list, plus one pickled checkpoint-store file per pipe.  Recovery
    semantics: replaying the ops rebuilds the design (at its *current*
    version, including every reload and its register-transform
    history), then each pipe is restored from the newest checkpoint in
    its saved store.  Simulation since the last checkpoint save is
    lost — that is the documented recovery point.
    """

    def __init__(self, root: str, name: str):
        self.root = root
        self.name = name
        self._digest = _session_digest(name)
        self.path = os.path.join(root, f"{self._digest}.json")
        self._payload: Optional[Dict[str, Any]] = None

    # -- persistence ---------------------------------------------------------

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def _load_payload(self) -> Dict[str, Any]:
        if self._payload is None:
            with open(self.path) as fh:
                payload = json.load(fh)
            if (
                not isinstance(payload, dict)
                or payload.get("format") != JOURNAL_FORMAT
                or payload.get("session") != self.name
            ):
                raise ValueError(
                    f"journal {self.path} is not a {JOURNAL_FORMAT} "
                    f"journal for session {self.name!r}"
                )
            self._payload = payload
        return self._payload

    def _flush(self) -> None:
        os.makedirs(self.root, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(self._payload, fh)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # -- writing -------------------------------------------------------------

    def begin(self, source: str, reset_cycles: int) -> None:
        """Start a fresh journal for a newly-opened session."""
        self._payload = {
            "format": JOURNAL_FORMAT,
            "session": self.name,
            "ops": [
                {"op": "open", "source": source,
                 "reset_cycles": reset_cycles},
            ],
            "checkpoints": {},
        }
        self._flush()

    def append(self, op: Dict[str, Any]) -> None:
        payload = self._load_payload()
        payload["ops"].append(op)
        self._flush()

    def checkpoint_path(self, pipe: str) -> str:
        """Path for one pipe's checkpoint-store file (registered in the
        journal on first use so recovery can enumerate the pipes)."""
        payload = self._load_payload()
        checkpoints = payload["checkpoints"]
        if pipe not in checkpoints:
            suffix = hashlib.sha256(pipe.encode("utf-8")).hexdigest()[:8]
            checkpoints[pipe] = f"{self._digest}-{suffix}.ckpt"
            self._flush()
        return os.path.join(self.root, checkpoints[pipe])

    # -- reading -------------------------------------------------------------

    def ops(self) -> List[Dict[str, Any]]:
        return list(self._load_payload()["ops"])

    def checkpoints(self) -> Dict[str, str]:
        """pipe name -> absolute checkpoint-store path (existing only)."""
        payload = self._load_payload()
        out = {}
        for pipe, filename in payload["checkpoints"].items():
            path = os.path.join(self.root, filename)
            if os.path.exists(path):
                out[pipe] = path
        return out

    def delete(self) -> None:
        payload = None
        try:
            payload = self._load_payload()
        except (OSError, ValueError):
            pass
        if payload is not None:
            for filename in payload["checkpoints"].values():
                try:
                    os.unlink(os.path.join(self.root, filename))
                except OSError:
                    pass
        try:
            os.unlink(self.path)
        except OSError:
            pass
        self._payload = None


# -- worker process ----------------------------------------------------------


@dataclass
class WorkerConfig:
    """Everything a worker process needs; must stay picklable."""

    worker_id: int
    store_root: Optional[str] = None
    state_root: Optional[str] = None
    checkpoint_interval: int = 10_000
    verify_poll: float = 0.05
    max_threads: int = 8
    extra: Dict[str, Any] = field(default_factory=dict)


class SessionWorker:
    """One worker process: a SessionManager slice behind a pipe.

    Requests arrive as ``{"kind": "request", "rid": ..., "cmd": ...,
    "params": {...}}`` dicts; each executes on a thread-pool thread
    (sessions stay serialized via their own locks) and answers with a
    ``response`` dict carrying the same ``rid``.  Events stream back as
    ``event`` dicts tagged with the rid of the request that started
    them, which is what lets the frontend route them to the right
    client connection — wherever the session is living *now*.
    """

    def __init__(self, conn, config: WorkerConfig):
        self.conn = conn
        self.config = config
        store = (
            ArtifactStore(config.store_root) if config.store_root else None
        )
        self.manager = SessionManager(
            artifact_store=store,
            checkpoint_interval=config.checkpoint_interval,
        )
        self._journals: Dict[str, SessionJournal] = {}
        self._send_lock = threading.Lock()
        self._stop = threading.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=config.max_threads,
            thread_name_prefix=f"livesim-w{config.worker_id}",
        )

    # -- transport -----------------------------------------------------------

    def _send(self, message: Dict[str, Any]) -> bool:
        with self._send_lock:
            if self._stop.is_set():
                return False
            try:
                self.conn.send(message)
                return True
            except (OSError, ValueError, BrokenPipeError):
                # The frontend died; there is nobody left to serve.
                self._stop.set()
                return False

    def _send_event(
        self, rid: int, name: str, session: str, data: Dict[str, Any]
    ) -> bool:
        return self._send({
            "kind": "event", "rid": rid, "name": name,
            "session": session, "data": data,
        })

    # -- main loop -----------------------------------------------------------

    def run(self) -> None:
        self._send({
            "kind": "ready",
            "worker": self.config.worker_id,
            "pid": os.getpid(),
        })
        try:
            while not self._stop.is_set():
                try:
                    message = self.conn.recv()
                except (EOFError, OSError):
                    break  # frontend gone
                kind = message.get("kind")
                if kind == "control":
                    if message.get("op") == "shutdown":
                        break
                    continue
                if kind == "request":
                    self._pool.submit(self._handle, message)
        finally:
            self._stop.set()
            self._pool.shutdown(wait=False, cancel_futures=True)
            self.manager.close_all()
            try:
                self.conn.close()
            except OSError:
                pass

    # -- request handling ----------------------------------------------------

    def _handle(self, message: Dict[str, Any]) -> None:
        rid = message.get("rid")
        cmd = message.get("cmd", "")
        params = message.get("params") or {}
        started = time.perf_counter()
        obs.incr("server.requests")
        try:
            value = self._dispatch(rid, cmd, params)
            response = {"kind": "response", "rid": rid, "ok": True,
                        "value": value}
        except Exception as exc:
            obs.incr("server.request_errors")
            response = {"kind": "response", "rid": rid, "ok": False,
                        "error": error_payload(exc)}
        elapsed = time.perf_counter() - started
        obs.histogram("server.request_seconds", elapsed)
        obs.histogram(f"server.cmd.{cmd}.seconds", elapsed)
        self._send(response)

    def _dispatch(self, rid: int, cmd: str, params: Dict[str, Any]) -> Any:
        if cmd == "ping":
            return {"pong": True, "worker": self.config.worker_id}
        if cmd == "open":
            return self._cmd_open(params)
        if cmd == "cmd":
            return self._cmd_execute(rid, params)
        if cmd in ("watch", "unwatch", "trace", "replay"):
            return self._cmd_trace_verb(rid, cmd, params)
        if cmd == "reload":
            return self._cmd_reload(rid, params)
        if cmd == "close":
            name = str(params.get("session"))
            self.manager.close(name)
            journal = self._journals.pop(name, None)
            if journal is not None and not params.get("keep_state"):
                # keep_state: the session is migrating to another
                # worker, which adopts the journal + checkpoint files.
                journal.delete()
            return {"closed": name}
        if cmd == "persist":
            return self._cmd_persist(str(params.get("session")))
        if cmd == "describe":
            entries = self.manager.describe()
            for entry in entries:
                entry["worker"] = self.config.worker_id
            return entries
        if cmd == "stats":
            return self._cmd_stats()
        if cmd == "rehydrate":
            return self._cmd_rehydrate(str(params.get("session")))
        raise ValueError(f"unknown worker command {cmd!r}")

    # -- journal helpers -----------------------------------------------------

    def _journal(self, name: str) -> Optional[SessionJournal]:
        if self.config.state_root is None:
            return None
        journal = self._journals.get(name)
        if journal is None:
            journal = SessionJournal(self.config.state_root, name)
            self._journals[name] = journal
        return journal

    def _journal_command(
        self, managed: ManagedSession, journal: SessionJournal,
        verb: str, operands: List[str], line: str,
    ) -> None:
        verb = verb.lower()
        if verb == "ldlib":
            # Journal the *text the session actually merged* (recorded
            # by the interpreter), never a re-read of the path: the
            # file can change or vanish between the load and this
            # write, and a divergent or missing lib op rebuilds a
            # different design — or drops the session — on rehydrate.
            recorded = managed.interp.last_ld_lib
            if recorded is None or recorded[0] != operands[0]:
                raise OSError(
                    f"ldLib source for {operands[0]!r} was not captured"
                )
            journal.append(
                {"op": "lib", "name": recorded[0], "source": recorded[1]}
            )
            return
        if verb == "chkp":
            self._persist_checkpoints(
                managed, journal, operands[0], force=True
            )
            return
        if verb == "run":
            # Piggyback on implicit interval checkpoints: if the run
            # crossed a boundary the store grew, and persisting it
            # advances the recovery point for free.
            self._persist_checkpoints(
                managed, journal, operands[1], force=False
            )
            return
        if verb in STRUCTURAL_VERBS:
            journal.append({"op": "line", "line": line})

    def _persist_checkpoints(
        self, managed: ManagedSession, journal: SessionJournal,
        pipe: str, force: bool,
    ) -> None:
        """Save one pipe's checkpoint store to the journal's file when
        the newest checkpoint moved (or unconditionally on ``force``)."""
        store = managed.session.store(pipe)
        cycles = store.cycles()
        if not cycles:
            return
        last_saved = getattr(store, "_journal_saved_cycle", None)
        if not force and last_saved == cycles[-1]:
            return
        store.save(journal.checkpoint_path(pipe))
        store._journal_saved_cycle = cycles[-1]
        obs.incr("server.journal_checkpoints")

    # -- commands ------------------------------------------------------------

    def _cmd_open(self, params: Dict[str, Any]) -> Dict[str, Any]:
        name = str(params.get("session"))
        source = str(params.get("source"))
        reset_cycles = params.get("reset_cycles", 2)
        info = self.manager.open(name, source, reset_cycles=reset_cycles)
        journal = self._journal(name)
        if journal is not None:
            try:
                journal.begin(source, reset_cycles)
            except OSError:
                # Roll the open back.  Keeping the session while the
                # client sees an error would leave it unmapped on the
                # frontend but resident here, so every retry would die
                # with duplicate-session.
                self._journals.pop(name, None)
                try:
                    self.manager.close(name)
                except KeyError:
                    pass
                raise
        return info

    def _cmd_execute(
        self,
        rid: int,
        params: Dict[str, Any],
        watch_opts: Optional[Dict[str, Any]] = None,
    ) -> Any:
        name = str(params.get("session"))
        line = str(params.get("line"))
        crash_line = self.config.extra.get("crash_line")
        if crash_line is not None and line.strip() == crash_line:
            # Chaos hook for failover tests: die exactly like a
            # SIGKILL would, mid-request, every time this line runs.
            os._exit(17)
        managed = self.manager.get(name)
        journal_error: Optional[str] = None
        with managed.lock:
            result = managed.interp.execute(line)
            managed.touch()
            journal = self._journal(name)
            if journal is not None:
                verb, operands = CommandInterpreter.parse(line)
                try:
                    self._journal_command(
                        managed, journal, verb, operands, line
                    )
                except OSError as exc:
                    obs.incr("server.journal_errors")
                    journal_error = str(exc)
        if journal_error is not None:
            self._warn_journal(rid, name, line, journal_error)
        verb = result.command.lower()
        if verb == "verify":
            pipe = CommandInterpreter.parse(line)[1][0]
            self._watch_verify(rid, managed, pipe)
        elif verb == "watch":
            operands = CommandInterpreter.parse(line)[1]
            self._watch_trace(
                rid, managed, operands[0], operands[1],
                **(watch_opts or {}),
            )
        return summarize(result.value)

    def _cmd_trace_verb(
        self, rid: int, cmd: str, params: Dict[str, Any]
    ) -> Any:
        """watch/unwatch/trace/replay protocol verbs, forwarded by the
        frontend: build the canonical interpreter line (the same one
        the threaded server journals) and run it through the normal
        command path so journaling and watch arming fall out."""
        line, watch_opts = build_trace_line(cmd, params)
        forwarded = dict(params)
        forwarded["line"] = line
        return self._cmd_execute(rid, forwarded, watch_opts=watch_opts)

    def _warn_journal(
        self, rid: int, name: str, line: str, error: str
    ) -> None:
        """A journal write failed: the command *succeeded* but will not
        survive a crash or migration.  Tell the client, don't just
        bump a counter nobody watches."""
        self._send_event(rid, "journal_warning", name, {
            "command": line,
            "error": error,
            "message": (
                "journal write failed; crash/migration recovery for "
                "this session may replay a stale design"
            ),
        })

    def _cmd_reload(self, rid: int, params: Dict[str, Any]) -> Any:
        name = str(params.get("session"))
        source = str(params.get("source"))
        verify = params.get("verify", False)
        override = bool(params.get("override", False))
        managed = self.manager.get(name)
        with managed.lock:
            report = managed.session.apply_change(
                source, verify=verify, override_gate=override
            )
            managed.touch()
            journal = self._journal(name)
            journal_error: Optional[str] = None
            if journal is not None:
                try:
                    journal.append({
                        "op": "reload", "source": source,
                        "override": override,
                    })
                except OSError as exc:
                    obs.incr("server.journal_errors")
                    journal_error = str(exc)
        if journal_error is not None:
            self._warn_journal(rid, name, "<reload>", journal_error)
        if report.behavioral:
            from ..analyze import count_by_severity

            self._send_event(rid, "lint_findings", name, {
                "version": report.version,
                "counts": count_by_severity(report.diagnostics),
                "findings": [d.to_json() for d in report.diagnostics],
                "new_findings": [d.to_json() for d in report.new_findings],
                "gate_overridden": report.gate_overridden,
            })
        for pipe in report.background_verifies:
            self._watch_verify(rid, managed, pipe)
        return summarize(report)

    def _cmd_stats(self) -> Dict[str, Any]:
        stats: Dict[str, Any] = {
            "worker": self.config.worker_id,
            "pid": os.getpid(),
            "sessions": self.manager.count,
            "session_names": self.manager.names(),
            "metrics": obs.get_metrics().as_dict(),
        }
        store = self.manager.artifact_store
        if store is not None:
            stats["store"] = {
                "root": store.root,
                "artifacts": len(store),
                "bytes": store.total_bytes(),
            }
        return stats

    # -- migration -----------------------------------------------------------

    def _cmd_persist(self, name: str) -> Dict[str, Any]:
        """Force the session's full recovery state to disk.

        Called by the frontend as the first step of a migration: a
        fresh checkpoint is taken at each pipe's *current* cycle and
        every checkpoint store is saved to the journal's files, so the
        receiving worker rehydrates with zero simulation loss (unlike
        a crash, whose recovery point is the last saved checkpoint).
        """
        managed = self.manager.get(name)
        journal = self._journal(name)
        if journal is None:
            raise ValueError(
                "worker has no state dir; cannot persist sessions"
            )
        if not journal.exists():
            raise LookupError(
                f"no journal for session {name!r}; it cannot be migrated"
            )
        saved: Dict[str, int] = {}
        with managed.lock:
            for pipe in managed.session.pipelines.names():
                managed.session.chkp(pipe)
                self._persist_checkpoints(managed, journal, pipe,
                                          force=True)
                saved[pipe] = managed.session.pipe(pipe).cycle
        obs.incr("server.sessions_persisted")
        return {"session": name, "pipes": saved}

    # -- crash recovery ------------------------------------------------------

    def _cmd_rehydrate(self, name: str) -> Dict[str, Any]:
        """Rebuild one session from its journal + checkpoints.

        Called by the frontend after it restarts a crashed worker (or
        moves a session to a different worker).  Replays the structural
        ops — design source, reloads (with their register-transform
        history), pipes, sanitize mode — then restores each pipe from
        the newest checkpoint in its saved store.  Compiles read
        through the shared artifact store, so the expensive half of
        this is usually a disk load, not codegen.
        """
        if self.config.state_root is None:
            raise ValueError(
                "worker has no state dir; cannot rehydrate sessions"
            )
        journal = SessionJournal(self.config.state_root, name)
        if not journal.exists():
            raise LookupError(
                f"no journal for session {name!r}; it cannot be recovered"
            )
        try:
            self.manager.close(name)  # drop any half-alive remnant
        except KeyError:
            pass
        started = time.perf_counter()
        ops = journal.ops()
        if not ops or ops[0]["op"] != "open":
            raise ValueError(f"journal for {name!r} has no open record")
        info = self.manager.open(
            name, ops[0]["source"],
            reset_cycles=ops[0].get("reset_cycles", 2),
        )
        managed = self.manager.get(name)
        with managed.lock:
            for op in ops[1:]:
                kind = op.get("op")
                if kind == "lib":
                    managed.session.ld_lib(op["name"], op.get("source"))
                elif kind == "reload":
                    managed.session.apply_change(
                        op["source"], verify=False,
                        override_gate=bool(op.get("override")),
                    )
                elif kind == "line":
                    managed.interp.execute(op["line"])
            restored = {}
            for pipe, path in journal.checkpoints().items():
                managed.session.ldch(pipe, path)
                restored[pipe] = managed.session.pipe(pipe).cycle
            managed.touch()
        self._journals[name] = journal
        seconds = time.perf_counter() - started
        obs.incr("server.sessions_rehydrated")
        obs.histogram("server.rehydrate_seconds", seconds)
        return {
            "session": name,
            "rehydrated": True,
            "worker": self.config.worker_id,
            "seconds": seconds,
            "pipes": restored,
            "modules": info["modules"],
        }

    # -- events --------------------------------------------------------------

    def _watch_verify(
        self, rid: int, managed: ManagedSession, pipe: str
    ) -> None:
        def loop() -> None:
            watch_verify_loop(
                managed,
                pipe,
                lambda data: self._send_event(
                    rid, "verify_status", managed.name, data
                ),
                self._stop.is_set,
                self.config.verify_poll,
            )

        threading.Thread(
            target=loop,
            name=f"livesim-w{self.config.worker_id}-verify-{managed.name}",
            daemon=True,
        ).start()

    def _watch_trace(
        self,
        rid: int,
        managed: ManagedSession,
        pipe: str,
        signal: str,
        max_events: Optional[int] = None,
    ) -> None:
        """Stream batched ``value_change`` events for one watched
        signal, tagged with the arming request's rid so the frontend
        can fan them out to the right client connection."""
        session = managed.session
        with managed.lock:
            buffer = session.trace_buffer(pipe, create=True)
            sub = buffer.subscribe(
                [signal],
                max_events=max_events or TRACE_SUB_QUEUE,
            )

        def loop() -> None:
            watch_trace_loop(
                managed,
                pipe,
                signal,
                sub,
                lambda data: self._send_event(
                    rid, "value_change", managed.name, data
                ),
                self._stop.is_set,
                self.config.verify_poll,
            )

        threading.Thread(
            target=loop,
            name=f"livesim-w{self.config.worker_id}-trace-{managed.name}",
            daemon=True,
        ).start()


def worker_main(conn, config: WorkerConfig) -> None:
    """Entry point of a sharded worker process."""
    SessionWorker(conn, config).run()
