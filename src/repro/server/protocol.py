"""JSON-lines wire protocol for the LiveSim server (``repro.server/v1``).

One message per line, three message shapes:

Request (client -> server)::

    {"id": 1, "cmd": "open", "session": "alice", "source": "..."}

Every key besides ``id`` and ``cmd`` is a command parameter.  ``id`` is
a client-chosen integer echoed in the response so a client can match
replies on a connection that also carries events.

Response (server -> client, exactly one per request)::

    {"id": 1, "ok": true, "value": ...}
    {"id": 1, "ok": false, "error": {"type": "command", "message": "..."}}

Event (server -> client, unsolicited, e.g. background-verify progress)::

    {"event": "verify_status", "session": "alice",
     "data": {"state": "running", "completed_segments": 3, ...}}

The framing layer knows nothing about sessions or simulators; it only
classifies lines and converts arbitrary command results into JSON-safe
values (:func:`to_jsonable`).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Union

PROTOCOL_VERSION = "repro.server/v1"

# Server command verbs.  Both front-ends accept the base set; the
# sharded frontend adds the pool-administration verbs (the threaded
# server has no worker pool to administer).  The framing layer itself
# never interprets verbs — these live here so the two servers and the
# client agree on one canonical list.
BASE_COMMANDS = (
    "close", "cmd", "open", "ping", "reload", "sessions",
    "shutdown", "stats",
)
ADMIN_COMMANDS = ("migrate", "resize")
# Live-trace verbs: sugar over the interpreter's watch/unwatch/trace/
# replay command lines, plus server-side value_change event streaming
# for ``watch``.  Supported by both front-ends.
TRACE_COMMANDS = ("replay", "trace", "unwatch", "watch")

# A request line longer than this is a protocol error, not a command:
# it bounds per-connection memory against a hostile or broken client.
# Large enough for a multi-megabyte design source in an ``open``.
MAX_LINE_BYTES = 16 * 1024 * 1024

# How deep to_jsonable follows nested containers before flattening the
# remainder to repr() — command results are summaries, not state dumps.
_MAX_DEPTH = 8


class ProtocolError(ValueError):
    """Malformed frame: not JSON, too long, or not a known shape."""


@dataclass
class Request:
    id: int
    cmd: str
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass
class Response:
    id: int
    ok: bool
    value: Any = None
    error: Optional[Dict[str, str]] = None


@dataclass
class Event:
    name: str
    session: str
    data: Dict[str, Any] = field(default_factory=dict)


Message = Union[Request, Response, Event]


# -- encoding ----------------------------------------------------------------


def _dump_line(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n"


def encode_request(request: Request) -> str:
    payload = dict(request.params)
    payload["id"] = request.id
    payload["cmd"] = request.cmd
    return _dump_line(payload)


def encode_response(response: Response) -> str:
    payload: Dict[str, Any] = {"id": response.id, "ok": response.ok}
    if response.ok:
        payload["value"] = response.value
    else:
        payload["error"] = response.error or {
            "type": "internal", "message": "unknown error"
        }
    return _dump_line(payload)


def encode_event(event: Event) -> str:
    return _dump_line({
        "event": event.name,
        "session": event.session,
        "data": event.data,
    })


def ok_response(request_id: int, value: Any = None) -> Response:
    return Response(id=request_id, ok=True, value=value)


def error_response(request_id: int, kind: str, message: str) -> Response:
    return Response(
        id=request_id, ok=False,
        error={"type": kind, "message": message},
    )


# -- decoding ----------------------------------------------------------------


def decode(line: Union[str, bytes]) -> Message:
    """Parse one wire line into a Request, Response, or Event."""
    if isinstance(line, bytes):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"line is not UTF-8: {exc}") from exc
    elif len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"line is not JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("message must be a JSON object")

    if "event" in payload:
        name = payload["event"]
        if not isinstance(name, str) or not name:
            raise ProtocolError("event name must be a non-empty string")
        session = payload.get("session", "")
        if not isinstance(session, str):
            raise ProtocolError("event session must be a string")
        data = payload.get("data", {})
        if not isinstance(data, dict):
            raise ProtocolError("event data must be an object")
        return Event(name=name, session=session, data=data)

    if "cmd" in payload:
        cmd = payload["cmd"]
        if not isinstance(cmd, str) or not cmd:
            raise ProtocolError("cmd must be a non-empty string")
        request_id = payload.get("id")
        if not isinstance(request_id, int) or isinstance(request_id, bool):
            raise ProtocolError("request id must be an integer")
        params = {
            key: value for key, value in payload.items()
            if key not in ("id", "cmd")
        }
        return Request(id=request_id, cmd=cmd, params=params)

    if "ok" in payload:
        ok = payload["ok"]
        if not isinstance(ok, bool):
            raise ProtocolError("ok must be a boolean")
        request_id = payload.get("id")
        if not isinstance(request_id, int) or isinstance(request_id, bool):
            raise ProtocolError("response id must be an integer")
        if ok:
            return Response(id=request_id, ok=True,
                            value=payload.get("value"))
        error = payload.get("error")
        if not isinstance(error, dict):
            raise ProtocolError("error response needs an error object")
        return Response(id=request_id, ok=False, error={
            "type": str(error.get("type", "internal")),
            "message": str(error.get("message", "")),
        })

    raise ProtocolError(
        "message is neither a request (cmd), response (ok) nor event"
    )


# -- result conversion -------------------------------------------------------


def to_jsonable(value: Any, _depth: int = 0) -> Any:
    """Convert an arbitrary command result into JSON-safe data.

    Dataclasses become objects (plus a ``_type`` tag so clients can
    tell a SwapReport from a VerifyStatus), sets become sorted lists,
    tuples become lists, dict keys are coerced to strings, and anything
    unrepresentable falls back to ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if _depth >= _MAX_DEPTH:
        return repr(value)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out: Dict[str, Any] = {"_type": type(value).__name__}
        for f in dataclasses.fields(value):
            out[f.name] = to_jsonable(getattr(value, f.name), _depth + 1)
        return out
    if isinstance(value, dict):
        return {
            str(key): to_jsonable(item, _depth + 1)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item, _depth + 1) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(to_jsonable(item, _depth + 1) for item in value)
    return repr(value)
