"""Content-addressed on-disk store for compiled-module artifacts.

:class:`~repro.live.compiler_live.LiveCompiler` caches compiled modules
in memory keyed by ``(spec, fingerprint, child_fps, mux_style)`` — the
exact conditions under which a compiled module is reusable.  This store
persists those artifacts under the same key so they outlive the
process: a warm server restart, or a second session compiling the same
design, loads the generated code from disk instead of running codegen.

A :class:`CompiledModule` holds three exec'd function objects that
cannot be pickled; everything else (including the generated Python
``source``) can.  ``save`` pickles the picklable fields; ``load``
unpickles them and re-``exec``'s the stored source — the cheap half of
compilation (the expensive half, IR scheduling + code generation, is
what the store skips).

Writes are atomic (tmp file in the same directory + ``os.replace``) so
concurrent sessions — or a crash mid-write — can never publish a torn
artifact.  The store is a cache: every failure path (corrupt file,
version skew, full disk) degrades to a miss and the compiler recompiles.

Counters: ``compile.store_hits`` / ``compile.store_misses`` /
``compile.store_writes`` / ``compile.store_errors``.
"""

from __future__ import annotations

import hashlib
import json
import linecache
import os
import pickle
import tempfile
from typing import Optional, Sequence, Tuple

from .. import obs
from ..codegen.pygen import CompiledModule

# Bumped whenever the pickled payload layout or the CompiledModule
# field set changes; artifacts with another format read as misses.
# v2: CompiledModule grew a ``sanitize`` field and the cache key a
# sanitize flag (clean and instrumented artifacts coexist).
# v3: CompiledModule grew ``opt`` and ``sens_slot_count`` and the
# cache key an opt level (per-level artifacts coexist; legacy keys
# address opt=none).
# v4: CompiledModule grew ``san_sites``/``san_elided``/
# ``reg_const_init`` and the cache key a value-facts/plan fingerprint
# (per-facts artifacts coexist; legacy keys address plan_fp="").
STORE_FORMAT = "repro.store/v4"

# CompiledModule fields persisted to disk — everything except the
# three function objects, which are rebuilt from ``source`` on load.
_PICKLED_FIELDS = (
    "key",
    "name",
    "ir",
    "source",
    "inputs",
    "comb_input_ports",
    "outputs",
    "num_regs",
    "state_size",
    "reg_slots",
    "reg_widths",
    "mem_specs",
    "child_insts",
    "interface_fp",
    "source_hash",
    "compile_seconds",
    "mux_style",
    "sanitize",
    "opt",
    "sens_slot_count",
    "san_sites",
    "san_elided",
    "reg_const_init",
)


def key_digest(cache_key: Sequence) -> str:
    """Stable content address for one compiler cache key.

    Legacy 4-tuple keys (pre-sanitizer) digest identically to the
    equivalent 7-tuple with ``sanitize=False, opt="none",
    plan_fp=""``; legacy 5-/6-tuples likewise address the defaults for
    the components they omit.
    """
    spec, fingerprint, child_fps, mux_style = cache_key[:4]
    sanitize = bool(cache_key[4]) if len(cache_key) > 4 else False
    opt = cache_key[5] if len(cache_key) > 5 else "none"
    plan_fp = cache_key[6] if len(cache_key) > 6 else ""
    parts = [spec, fingerprint, list(child_fps), mux_style]
    if sanitize:
        # Appended only when set, so clean keys keep their v1 address.
        parts.append("sanitize")
    if opt != "none":
        # Same discipline: unoptimized keys keep their legacy address.
        parts.append(f"opt:{opt}")
    if plan_fp:
        # And again: facts-independent keys keep their legacy address.
        parts.append(f"plan:{plan_fp}")
    canonical = json.dumps(parts)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _normalize_key(cache_key: Sequence) -> tuple:
    """Canonical 7-tuple form (legacy keys get sanitize=False,
    opt="none", and/or plan_fp="")."""
    key = tuple(cache_key)
    if len(key) == 4:
        key = key + (False,)
    if len(key) == 5:
        key = key + ("none",)
    if len(key) == 6:
        key = key + ("",)
    return key


class ArtifactStore:
    """Hash-keyed directory of pickled compile artifacts."""

    def __init__(self, root: str):
        self.root = root

    # -- paths ---------------------------------------------------------------

    def path_for(self, cache_key: Sequence) -> str:
        digest = key_digest(cache_key)
        return os.path.join(self.root, digest[:2], digest + ".pkl")

    # -- read-through --------------------------------------------------------

    def load(
        self, cache_key: Sequence, sanitize_runtime=None
    ) -> Optional[CompiledModule]:
        """Rehydrate the artifact for ``cache_key`` or None on a miss.

        ``sanitize_runtime`` must be the session's
        :class:`repro.sanitize.SanitizerRuntime` when loading an
        instrumented artifact — the stored source calls ``_san`` hooks.
        """
        path = self.path_for(cache_key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
        except FileNotFoundError:
            obs.incr("compile.store_misses")
            return None
        except (OSError, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError) as exc:
            obs.incr("compile.store_errors")
            obs.incr("compile.store_misses")
            _note_error(f"load {path}: {exc}")
            return None
        module = self._rehydrate(cache_key, payload, sanitize_runtime)
        if module is None:
            obs.incr("compile.store_misses")
            return None
        obs.incr("compile.store_hits")
        return module

    def _rehydrate(
        self, cache_key: Sequence, payload, sanitize_runtime=None
    ) -> Optional[CompiledModule]:
        if not isinstance(payload, dict):
            obs.incr("compile.store_errors")
            return None
        if payload.get("format") != STORE_FORMAT:
            return None  # version skew, not corruption: silent miss
        if _normalize_key(payload.get("cache_key", ())) != _normalize_key(
            cache_key
        ):
            # Digest collision or a tampered file; never serve it.
            obs.incr("compile.store_errors")
            return None
        fields = payload.get("fields")
        if not isinstance(fields, dict) or set(fields) != set(_PICKLED_FIELDS):
            obs.incr("compile.store_errors")
            return None
        source = fields["source"]
        sanitized = bool(fields.get("sanitize"))
        if sanitized and sanitize_runtime is None:
            # An instrumented artifact without a runtime to bind would
            # crash at eval time; treat as a miss and recompile.
            obs.incr("compile.store_errors")
            _note_error(
                f"rehydrate {fields.get('key')}: sanitized artifact "
                "loaded without a sanitize_runtime"
            )
            return None
        plan_fp = cache_key[6] if len(cache_key) > 6 else ""
        if sanitized:
            # Mirror compile_module's elided-build flavour so the
            # linecache entry matches the original compile.
            flavor = ":san-e" if plan_fp.endswith("+e") else ":san"
            filename = f"<lhdl:{fields['key']}{flavor}>"
        else:
            filename = f"<lhdl:{fields['key']}>"
        opt_level = fields.get("opt", "none")
        if opt_level != "none":
            # Mirror compile_module's per-flavour linecache naming.
            filename = filename[:-1] + f":o-{opt_level}>"
        try:
            namespace: dict = (
                {"_san": sanitize_runtime} if sanitized else {}
            )
            exec(compile(source, filename, "exec"), namespace)  # noqa: S102
            module = CompiledModule(
                eval_out_fn=namespace["eval_out"],
                eval_seq_fn=namespace["eval_seq"],
                tick_fn=namespace["tick"],
                **fields,
            )
        except Exception as exc:  # corrupt source: degrade to a miss
            obs.incr("compile.store_errors")
            _note_error(f"rehydrate {fields.get('key')}: {exc}")
            return None
        linecache.cache[filename] = (
            len(source), None, source.splitlines(keepends=True), filename
        )
        return module

    # -- write-behind --------------------------------------------------------

    def save(self, cache_key: Sequence, module: CompiledModule) -> bool:
        """Persist one artifact; returns False (and counts an error)
        when the write fails — the store never breaks a compile."""
        path = self.path_for(cache_key)
        payload = {
            "format": STORE_FORMAT,
            "cache_key": _normalize_key(cache_key),
            "fields": {
                name: getattr(module, name) for name in _PICKLED_FIELDS
            },
        }
        try:
            directory = os.path.dirname(path)
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=directory, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError, TypeError) as exc:
            obs.incr("compile.store_errors")
            _note_error(f"save {path}: {exc}")
            return False
        obs.incr("compile.store_writes")
        return True

    # -- maintenance ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._artifact_paths())

    def total_bytes(self) -> int:
        return sum(os.path.getsize(p) for p in self._artifact_paths())

    def clear(self) -> int:
        """Delete every artifact; returns the number removed."""
        removed = 0
        for path in self._artifact_paths():
            try:
                os.unlink(path)
                removed += 1
            except OSError:
                pass
        return removed

    def _artifact_paths(self) -> Tuple[str, ...]:
        paths = []
        if not os.path.isdir(self.root):
            return ()
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".pkl") and not name.startswith(".tmp-"):
                    paths.append(os.path.join(shard_dir, name))
        return tuple(paths)


def _note_error(message: str) -> None:
    """Last-error breadcrumb for debugging without a logging setup."""
    _note_error.last = message  # type: ignore[attr-defined]


_note_error.last = ""  # type: ignore[attr-defined]
