"""Command-line entry point: ``python -m repro.server``.

Starts the multi-session LiveSim service and blocks until SIGINT or a
client sends ``shutdown``.  The listening address is printed on stdout
(one line, machine-parseable) so wrappers that bind port 0 can discover
the real port::

    $ python -m repro.server --port 0 --store /tmp/livesim-store
    livesim server listening on 127.0.0.1:43251

With ``--workers N`` the sessions are sharded across N worker
*processes* behind an asyncio front door (same wire protocol, many
cores)::

    $ python -m repro.server --port 0 --workers 4 \\
          --store /tmp/livesim-store --state-dir /tmp/livesim-state
    livesim server listening on 127.0.0.1:43251 (sharded, 4 workers)

``--workers`` only sets the *starting* pool size: a sharded server
resizes at runtime through the ``resize`` admin verb (and moves single
sessions with ``migrate``), e.g. from the client REPL::

    repl> resize 8
    repl> migrate alice, 3
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .frontend import ShardedFrontend, default_state_root
from .service import DEFAULT_PORT, LiveSimServer
from .store import ArtifactStore


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="LiveSim multi-session server "
                    "(JSON-lines protocol repro.server/v1)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"listen port (default {DEFAULT_PORT}; "
                             "0 picks a free port)")
    parser.add_argument("--store", metavar="DIR",
                        help="on-disk compile-artifact store shared by "
                             "all sessions (and across restarts)")
    parser.add_argument("--workers", type=int, default=0, metavar="N",
                        help="shard sessions across N worker processes "
                             "behind an asyncio front door (default 0: "
                             "single-process threaded server); the pool "
                             "can be resized at runtime with the "
                             "'resize' admin verb")
    parser.add_argument("--state-dir", metavar="DIR",
                        help="session-journal directory for sharded "
                             "crash recovery (default: <store>.state, "
                             "or a fresh temp dir without --store)")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="evict sessions idle longer than this "
                             "(threaded mode only)")
    parser.add_argument("--checkpoint-interval", type=int, default=10_000)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.workers > 0:
        state_dir = args.state_dir or default_state_root(args.store)
        server = ShardedFrontend(
            host=args.host,
            port=args.port,
            workers=args.workers,
            store_root=args.store,
            state_root=state_dir,
            checkpoint_interval=args.checkpoint_interval,
        )
        host, port = server.start()
        print(f"livesim server listening on {host}:{port} "
              f"(sharded, {args.workers} workers)", flush=True)
        print(f"session state dir: {state_dir}",
              file=sys.stderr, flush=True)
        if args.store:
            print(f"artifact store: {args.store}",
                  file=sys.stderr, flush=True)
        try:
            server.serve_forever()
        finally:
            server.shutdown()
            print("livesim server stopped", flush=True)
        return 0
    store = ArtifactStore(args.store) if args.store else None
    server = LiveSimServer(
        host=args.host,
        port=args.port,
        artifact_store=store,
        idle_timeout=args.idle_timeout,
        checkpoint_interval=args.checkpoint_interval,
    )
    host, port = server.start()
    print(f"livesim server listening on {host}:{port}", flush=True)
    if store is not None:
        print(f"artifact store: {store.root} "
              f"({len(store)} artifacts)", file=sys.stderr, flush=True)
    try:
        server.serve_forever()
    finally:
        server.shutdown()
        print("livesim server stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
