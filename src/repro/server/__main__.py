"""Command-line entry point: ``python -m repro.server``.

Starts the multi-session LiveSim service and blocks until SIGINT or a
client sends ``shutdown``.  The listening address is printed on stdout
(one line, machine-parseable) so wrappers that bind port 0 can discover
the real port::

    $ python -m repro.server --port 0 --store /tmp/livesim-store
    livesim server listening on 127.0.0.1:43251
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .service import DEFAULT_PORT, LiveSimServer
from .store import ArtifactStore


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="LiveSim multi-session server "
                    "(JSON-lines protocol repro.server/v1)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"listen port (default {DEFAULT_PORT}; "
                             "0 picks a free port)")
    parser.add_argument("--store", metavar="DIR",
                        help="on-disk compile-artifact store shared by "
                             "all sessions (and across restarts)")
    parser.add_argument("--idle-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="evict sessions idle longer than this")
    parser.add_argument("--checkpoint-interval", type=int, default=10_000)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    store = ArtifactStore(args.store) if args.store else None
    server = LiveSimServer(
        host=args.host,
        port=args.port,
        artifact_store=store,
        idle_timeout=args.idle_timeout,
        checkpoint_interval=args.checkpoint_interval,
    )
    host, port = server.start()
    print(f"livesim server listening on {host}:{port}", flush=True)
    if store is not None:
        print(f"artifact store: {store.root} "
              f"({len(store)} artifacts)", file=sys.stderr, flush=True)
    try:
        server.serve_forever()
    finally:
        server.shutdown()
        print("livesim server stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
