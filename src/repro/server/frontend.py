"""Asyncio front door for the process-sharded LiveSim server.

One :class:`ShardedFrontend` owns a pool of worker processes (see
:mod:`repro.server.shard`) and an asyncio JSON-lines socket server
speaking the same ``repro.server/v1`` protocol as the threaded
:class:`~repro.server.service.LiveSimServer` — existing clients work
unchanged.  Each request is routed by consistent hash of its session
name to a persistent worker; responses and streamed events come back
over the worker pipe tagged with a frontend-assigned routing id (rid),
which is how a ``verify_status`` event finds the client connection that
started the verify even after the session has been rehydrated on a
fresh worker process.

Crash recovery: when a worker dies (EOF on its pipe), in-flight
requests fail with a ``worker`` error, the process is respawned into
the same ring slot, and every session mapped to it is rehydrated from
its on-disk journal plus last saved checkpoint before any queued
command is forwarded.  Sessions without a journal (no ``--state-dir``)
are dropped instead.

Live resize: the ``resize`` admin verb grows or shrinks the pool at
runtime (``migrate`` moves one named session).  Placement is
recomputed on a fresh consistent-hash ring — only ~1/W of the sessions
move — and each moving session takes the journal path with zero
simulation loss: commands queue behind a per-session gate, the old
worker force-persists a checkpoint at the current cycle, the new
worker rehydrates, the route table flips atomically, and the old copy
closes keeping the journal files the new owner adopted.

Observability: the frontend keeps its own ``server.requests`` /
``server.cmd.<name>.seconds`` metrics (end-to-end, including proxy
overhead) plus ``server.worker_restarts`` / ``server.sessions_dropped``
counters; per-worker metrics are available via ``stats`` with
``deep=true``.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import tempfile
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Deque, Dict, List, Optional, Tuple

from .. import obs
from . import protocol
from .protocol import (
    ADMIN_COMMANDS,
    BASE_COMMANDS,
    PROTOCOL_VERSION,
    TRACE_COMMANDS,
    Event,
    ProtocolError,
    Request,
    Response,
    encode_event,
    encode_response,
    error_response,
    ok_response,
)
from .service import build_trace_line
from .shard import HashRing, WorkerConfig, worker_main

# Events are routed by the rid of the request that started them; one
# route is remembered per command request, capped per connection so a
# long-lived client cannot grow the table without bound.
MAX_EVENT_ROUTES = 1024

# High-water mark on the per-connection event queue: a client that
# stops reading while verify events stream must not grow the socket
# write buffer without bound.  Past the mark the *oldest* queued events
# are dropped (newest state wins for progress streams) and
# ``server.events_dropped`` counts the loss.
MAX_EVENT_QUEUE = 256

# The worker pool can be resized at runtime; cap it so a typo'd
# ``resize`` cannot fork-bomb the host.
MAX_WORKERS = 64

_SPAWN_TIMEOUT = 60.0


class WorkerCommandError(Exception):
    """A worker answered a proxied request with an error payload."""

    def __init__(self, payload: Dict[str, Any]):
        super().__init__(payload.get("message", "worker error"))
        self.payload = payload


class _Client:
    """One asyncio client connection: writer plus its event routes.

    Responses are written directly (the request loop drains after each
    one, so they are flow-controlled by the one-request-at-a-time
    protocol).  Events are *queued* and written by a per-connection
    pump task that awaits ``drain()`` — a client that stops reading
    stalls the pump, the queue fills to :data:`MAX_EVENT_QUEUE`, and
    the oldest events are dropped instead of growing the transport
    buffer without bound.
    """

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.closed = False
        self.route_rids: "OrderedDict[int, None]" = OrderedDict()
        self.events_dropped = 0
        self._events: Deque[str] = deque()
        self._event_signal = asyncio.Event()

    def send_line(self, text: str) -> bool:
        if self.closed:
            return False
        try:
            # One write call per line: atomic w.r.t. other tasks.
            self.writer.write(text.encode("utf-8"))
            return True
        except (ConnectionError, RuntimeError):
            self.closed = True
            return False

    def queue_event(self, text: str) -> bool:
        """Enqueue one event line for the pump, drop-oldest past the
        high-water mark."""
        if self.closed:
            return False
        self._events.append(text)
        while len(self._events) > MAX_EVENT_QUEUE:
            self._events.popleft()
            self.events_dropped += 1
            obs.incr("server.events_dropped")
        self._event_signal.set()
        return True

    async def pump_events(self) -> None:
        """Drain queued events to the socket; one task per connection."""
        while not self.closed:
            await self._event_signal.wait()
            self._event_signal.clear()
            while self._events and not self.closed:
                if not self.send_line(self._events.popleft()):
                    return
                try:
                    await self.writer.drain()
                except (ConnectionError, RuntimeError):
                    self.closed = True
                    return

    def wake_pump(self) -> None:
        """Unblock a pump waiting on the signal (used at close)."""
        self._event_signal.set()


class _WorkerHandle:
    """Parent-side state for one worker process slot."""

    def __init__(self, worker_id: int):
        self.id = worker_id
        self.process = None
        self.conn = None
        self.pid: Optional[int] = None
        self.alive = False
        self.restarts = 0
        self.lock = asyncio.Lock()  # serializes (re)starts
        self.send_lock = asyncio.Lock()  # keeps pipe sends ordered


class ShardedFrontend:
    """Process-sharded, asyncio LiveSim server front-end."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        store_root: Optional[str] = None,
        state_root: Optional[str] = None,
        checkpoint_interval: int = 10_000,
        verify_poll: float = 0.05,
        ring_replicas: int = 64,
        restart_workers: bool = True,
        start_method: str = "spawn",
        worker_extra: Optional[Dict[str, Any]] = None,
    ):
        if workers < 1:
            raise ValueError("sharded frontend needs at least 1 worker")
        self._host = host
        self._port = port
        self.num_workers = workers
        self.store_root = store_root
        self.state_root = state_root
        self._checkpoint_interval = checkpoint_interval
        self._verify_poll = verify_poll
        self._ring_replicas = ring_replicas
        self._restart_workers = restart_workers
        self._worker_extra = dict(worker_extra or {})
        self._mp = multiprocessing.get_context(start_method)
        self.ring = HashRing(range(workers), replicas=ring_replicas)
        self._workers: Dict[int, _WorkerHandle] = {
            wid: _WorkerHandle(wid) for wid in range(workers)
        }
        self._sessions: Dict[str, int] = {}
        # Armed live watches, per session: (client, request params)
        # pairs, so a crash-rehydration or migration can re-issue the
        # ``watch`` on whichever worker owns the session *now* and the
        # value_change stream keeps flowing to the same connection.
        self._watch_records: Dict[
            str, List[Tuple[_Client, Dict[str, Any]]]
        ] = {}
        # Live-migration state: sessions currently moving (commands
        # queue on the event until the route table flips) and a count
        # of in-flight forwarded requests per session (a migration
        # waits for them to drain so their effects reach the journal).
        self._migrating: Dict[str, asyncio.Event] = {}
        self._inflight: Dict[str, int] = {}
        self._resize_lock: Optional[asyncio.Lock] = None
        self._rids = itertools.count(1)
        self._pending: Dict[int, Tuple[asyncio.Future, int]] = {}
        self._routes: Dict[int, _Client] = {}
        self.address: Optional[Tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._stopping = False
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._boot_error: Optional[BaseException] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Boot workers + listener on a background event-loop thread.

        Mirrors ``LiveSimServer.start()`` so tests and tools can embed
        either server behind the same two calls.
        """
        if self._thread is not None:
            raise RuntimeError("frontend already started")
        self._thread = threading.Thread(
            target=self._thread_main, name="livesim-frontend", daemon=True
        )
        self._thread.start()
        self._started.wait(_SPAWN_TIMEOUT + 30.0)
        if self._boot_error is not None:
            raise RuntimeError(
                f"sharded frontend failed to start: {self._boot_error}"
            )
        if self.address is None:
            raise RuntimeError("sharded frontend failed to start (timeout)")
        return self.address

    def serve_forever(self) -> None:
        if self._thread is None:
            self.start()
        try:
            while self._thread.is_alive():
                self._thread.join(0.2)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            self.shutdown()

    def shutdown(self, timeout: float = 15.0) -> None:
        """Stop the loop thread; idempotent, callable from any thread."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            def _signal() -> None:
                if self._stop_event is not None:
                    self._stop_event.set()

            try:
                loop.call_soon_threadsafe(_signal)
            except RuntimeError:
                pass
        if self._thread is not None and self._thread is not (
            threading.current_thread()
        ):
            self._thread.join(timeout)

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # boot failures surface in start()
            self._boot_error = exc
        finally:
            self._started.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._resize_lock = asyncio.Lock()
        try:
            await asyncio.gather(*[
                self._start_worker(wid) for wid in self._workers
            ])
            server = await asyncio.start_server(
                self._handle_client,
                self._host,
                self._port,
                limit=protocol.MAX_LINE_BYTES + 2,
            )
        except BaseException:
            await self._stop_all_workers()
            raise
        self.address = server.sockets[0].getsockname()[:2]
        self._started.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            self._stopping = True
            await self._stop_all_workers()

    # -- worker lifecycle ----------------------------------------------------

    def _spawn_worker_sync(self, wid: int):
        """Blocking spawn + ready handshake (runs in the executor)."""
        parent_conn, child_conn = self._mp.Pipe()
        config = WorkerConfig(
            worker_id=wid,
            store_root=self.store_root,
            state_root=self.state_root,
            checkpoint_interval=self._checkpoint_interval,
            verify_poll=self._verify_poll,
            extra=dict(self._worker_extra),
        )
        process = self._mp.Process(
            target=worker_main,
            args=(child_conn, config),
            name=f"livesim-worker-{wid}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            if not parent_conn.poll(_SPAWN_TIMEOUT):
                raise RuntimeError(f"worker {wid} never became ready")
            ready = parent_conn.recv()
            if ready.get("kind") != "ready":
                raise RuntimeError(
                    f"worker {wid} sent {ready!r} instead of ready"
                )
        except (EOFError, OSError) as exc:
            process.kill()
            raise RuntimeError(f"worker {wid} died during boot") from exc
        except BaseException:
            process.kill()
            raise
        return process, parent_conn, ready.get("pid", process.pid)

    async def _start_worker(self, wid: int) -> None:
        worker = self._workers[wid]
        process, conn, pid = await self._loop.run_in_executor(
            None, self._spawn_worker_sync, wid
        )
        worker.process = process
        worker.conn = conn
        worker.pid = pid
        worker.alive = True
        self._loop.add_reader(
            conn.fileno(), self._on_worker_readable, wid
        )

    def _on_worker_readable(self, wid: int) -> None:
        worker = self._workers[wid]
        conn = worker.conn
        try:
            while conn.poll():
                self._on_worker_msg(wid, conn.recv())
        except (EOFError, OSError):
            self._on_worker_dead(wid)

    def _on_worker_msg(self, wid: int, msg: Dict[str, Any]) -> None:
        kind = msg.get("kind")
        if kind == "response":
            entry = self._pending.pop(msg.get("rid"), None)
            if entry is not None and not entry[0].done():
                entry[0].set_result(msg)
        elif kind == "event":
            client = self._routes.get(msg.get("rid"))
            if client is not None and not client.closed:
                client.queue_event(encode_event(Event(
                    name=msg.get("name", ""),
                    session=msg.get("session", ""),
                    data=msg.get("data") or {},
                )))

    def _on_worker_dead(self, wid: int) -> None:
        worker = self._workers.get(wid)
        if worker is None or not worker.alive:
            # Unknown wid: a worker retired by resize whose pipe EOF
            # raced the retirement; nothing to do.
            return
        worker.alive = False
        try:
            self._loop.remove_reader(worker.conn.fileno())
        except (OSError, ValueError):
            pass
        obs.incr("server.worker_deaths")
        # Fail whatever was in flight on this worker: the command may
        # or may not have executed; the client must decide.
        for rid, (fut, pending_wid) in list(self._pending.items()):
            if pending_wid == wid and not fut.done():
                fut.set_result({
                    "kind": "response", "rid": rid, "ok": False,
                    "error": {
                        "type": "worker",
                        "message": (
                            f"worker {wid} died mid-request; its sessions "
                            "recover from their last saved checkpoint"
                        ),
                    },
                })
                self._pending.pop(rid, None)
        if self._stopping or not self._restart_workers:
            return
        self._loop.create_task(self._restart_worker(wid))

    async def _restart_worker(self, wid: int) -> None:
        """Respawn a dead worker and rehydrate its sessions."""
        worker = self._workers.get(wid)
        if worker is None:  # retired by a resize while dead
            return
        async with worker.lock:
            if worker.alive or self._stopping:
                return
            try:
                worker.process.join(timeout=0)
            except (OSError, ValueError):
                pass
            await self._start_worker(wid)
            worker.restarts += 1
            obs.incr("server.worker_restarts")
            owned = [
                name for name, mapped in self._sessions.items()
                if mapped == wid
            ]
            for name in owned:
                try:
                    await self._forward_to(
                        worker, None, "rehydrate", {"session": name}
                    )
                except WorkerCommandError:
                    # No journal (or replay failed): the session is
                    # gone; stop routing to it.
                    self._sessions.pop(name, None)
                    self._watch_records.pop(name, None)
                    obs.incr("server.sessions_dropped")
                    continue
                await self._rearm_watches(name, worker)
            obs.gauge("server.sessions", len(self._sessions))

    async def _ensure_worker(self, wid: int) -> _WorkerHandle:
        worker = self._workers.get(wid)
        if worker is None:
            raise WorkerCommandError({
                "type": "worker",
                "message": f"worker {wid} was retired by a resize",
            })
        if worker.alive:
            return worker
        if not self._restart_workers:
            raise WorkerCommandError({
                "type": "worker", "message": f"worker {wid} is down",
            })
        async with worker.lock:
            pass  # wait for any in-progress restart
        if not worker.alive:
            await self._restart_worker(wid)
        if wid not in self._workers or not self._workers[wid].alive:
            raise WorkerCommandError({
                "type": "worker",
                "message": f"worker {wid} could not be restarted",
            })
        return self._workers[wid]

    async def _stop_all_workers(self) -> None:
        self._stopping = True
        for worker in self._workers.values():
            if worker.conn is None:
                continue
            try:
                self._loop.remove_reader(worker.conn.fileno())
            except (OSError, ValueError):
                pass
            if worker.alive:
                try:
                    worker.conn.send({"kind": "control", "op": "shutdown"})
                except (OSError, ValueError):
                    pass
        for worker in self._workers.values():
            process = worker.process
            if process is None:
                continue
            await self._loop.run_in_executor(None, process.join, 5.0)
            if process.is_alive():
                process.kill()
                await self._loop.run_in_executor(None, process.join, 5.0)
            worker.alive = False
            try:
                worker.conn.close()
            except (OSError, AttributeError):
                pass

    # -- request forwarding --------------------------------------------------

    async def _forward(
        self,
        client: Optional[_Client],
        wid: int,
        cmd: str,
        params: Dict[str, Any],
    ) -> Any:
        worker = await self._ensure_worker(wid)
        try:
            return await self._forward_to(worker, client, cmd, params)
        except WorkerCommandError as exc:
            # A crash between send and response loses the command (the
            # worker's post-checkpoint state was lost anyway).  Wait
            # for restart + rehydration, then replay it once against
            # the recovered session; a second failure is the client's
            # problem — retrying forever would hide a poison command
            # that kills every worker it touches.
            if exc.payload.get("type") != "worker" or self._stopping:
                raise
            if not self._restart_workers:
                raise
            obs.incr("server.request_failovers")
            worker = await self._ensure_worker(wid)
            return await self._forward_to(worker, client, cmd, params)

    async def _forward_to(
        self,
        worker: _WorkerHandle,
        client: Optional[_Client],
        cmd: str,
        params: Dict[str, Any],
    ) -> Any:
        rid = next(self._rids)
        fut = self._loop.create_future()
        self._pending[rid] = (fut, worker.id)
        if client is not None:
            self._register_route(rid, client)
        message = {
            "kind": "request", "rid": rid, "cmd": cmd, "params": params,
        }
        try:
            async with worker.send_lock:
                await self._loop.run_in_executor(
                    None, worker.conn.send, message
                )
        except (OSError, ValueError) as exc:
            self._pending.pop(rid, None)
            self._on_worker_dead(worker.id)
            raise WorkerCommandError({
                "type": "worker",
                "message": f"worker {worker.id} unreachable: {exc}",
            }) from exc
        msg = await fut
        if msg.get("ok"):
            return msg.get("value")
        raise WorkerCommandError(
            msg.get("error") or {"type": "worker", "message": "unknown"}
        )

    def _register_route(self, rid: int, client: _Client) -> None:
        client.route_rids[rid] = None
        self._routes[rid] = client
        while len(client.route_rids) > MAX_EVENT_ROUTES:
            old, _ = client.route_rids.popitem(last=False)
            self._routes.pop(old, None)

    def _drop_client_routes(self, client: _Client) -> None:
        for rid in client.route_rids:
            self._routes.pop(rid, None)
        client.route_rids.clear()

    # -- client handling -----------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        client = _Client(writer)
        obs.incr("server.connections_accepted")
        pump = self._loop.create_task(client.pump_events())
        try:
            while not self._stopping:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    client.send_line(encode_response(error_response(
                        -1, "protocol",
                        f"line exceeds {protocol.MAX_LINE_BYTES} bytes",
                    )))
                    return
                if not line:
                    return
                if not line.strip():
                    continue
                try:
                    message = protocol.decode(line)
                except ProtocolError as exc:
                    client.send_line(encode_response(
                        error_response(-1, "protocol", str(exc))
                    ))
                    continue
                if not isinstance(message, Request):
                    client.send_line(encode_response(error_response(
                        -1, "protocol", "only requests flow client->server"
                    )))
                    continue
                response, stop_after = await self._handle_request(
                    client, message
                )
                client.send_line(encode_response(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    return
                if stop_after:
                    self._stop_event.set()
                    return
        finally:
            client.closed = True
            client.wake_pump()
            pump.cancel()
            self._drop_client_routes(client)
            self._drop_client_watches(client)
            try:
                writer.close()
            except RuntimeError:
                pass

    async def _handle_request(
        self, client: _Client, request: Request
    ) -> Tuple[Response, bool]:
        started = time.perf_counter()
        obs.incr("server.requests")
        stop_after = False
        try:
            value, stop_after = await self._dispatch(client, request)
            response = ok_response(request.id, value)
        except WorkerCommandError as exc:
            response = Response(
                id=request.id, ok=False, error=exc.payload
            )
        except ProtocolError as exc:
            response = error_response(request.id, "protocol", str(exc))
        except Exception as exc:  # a bug must not kill the connection
            response = error_response(
                request.id, "internal", f"{type(exc).__name__}: {exc}"
            )
        if not response.ok:
            obs.incr("server.request_errors")
        elapsed = time.perf_counter() - started
        obs.histogram("server.request_seconds", elapsed)
        obs.histogram(f"server.cmd.{request.cmd}.seconds", elapsed)
        return response, stop_after

    @staticmethod
    def _str_param(params: Dict, name: str) -> str:
        value = params.get(name)
        if not isinstance(value, str) or not value:
            raise ProtocolError(f"{name!r} must be a non-empty string")
        return value

    async def _dispatch(
        self, client: _Client, request: Request
    ) -> Tuple[Any, bool]:
        cmd = request.cmd
        params = request.params
        if cmd == "ping":
            return {
                "pong": True,
                "protocol": PROTOCOL_VERSION,
                "sharded": True,
                "workers": self.num_workers,
            }, False
        if cmd == "open":
            return await self._cmd_open(client, params), False
        if cmd in ("cmd", "reload", "close") or cmd in TRACE_COMMANDS:
            name = self._str_param(params, "session")
            if cmd == "cmd":
                self._str_param(params, "line")
            if cmd in TRACE_COMMANDS:
                # Validate here so a malformed watch/trace fails fast
                # with a protocol error instead of a worker round-trip;
                # the worker rebuilds the same canonical line.
                build_trace_line(cmd, params)
            if cmd == "reload":
                self._str_param(params, "source")
                verify = params.get("verify", False)
                if verify not in (False, True, "background"):
                    raise ProtocolError(
                        "'verify' must be true, false, or \"background\""
                    )
                if not isinstance(params.get("override", False), bool):
                    raise ProtocolError("'override' must be a boolean")
            # Commands aimed at a session mid-migration queue until the
            # route table flips, then run on the new owner — callers
            # see latency, never a spurious unknown-session error.
            while True:
                gate = self._migrating.get(name)
                if gate is None:
                    break
                await gate.wait()
            wid = self._sessions.get(name)
            if wid is None:
                raise WorkerCommandError({
                    "type": "unknown-session",
                    "message": f"unknown session {name!r}",
                })
            self._inflight[name] = self._inflight.get(name, 0) + 1
            try:
                value = await self._forward(client, wid, cmd, params)
            finally:
                left = self._inflight.get(name, 1) - 1
                if left > 0:
                    self._inflight[name] = left
                else:
                    self._inflight.pop(name, None)
            if cmd == "watch":
                self._record_watch(name, client, params)
            elif cmd == "unwatch":
                self._forget_watch(name, params)
            elif cmd == "close":
                self._sessions.pop(name, None)
                self._watch_records.pop(name, None)
                obs.gauge("server.sessions", len(self._sessions))
            return value, False
        if cmd == "sessions":
            return await self._cmd_sessions(), False
        if cmd == "stats":
            return await self._cmd_stats(params), False
        if cmd == "resize":
            return await self._cmd_resize(params), False
        if cmd == "migrate":
            return await self._cmd_migrate(params), False
        if cmd == "shutdown":
            return {
                "stopping": True, "sessions": len(self._sessions),
            }, True
        known = sorted(BASE_COMMANDS + ADMIN_COMMANDS + TRACE_COMMANDS)
        raise ProtocolError(
            f"unknown server command {cmd!r}; expected one of {known}"
        )

    # -- live-watch bookkeeping ----------------------------------------------

    def _record_watch(
        self, name: str, client: _Client, params: Dict[str, Any]
    ) -> None:
        """Remember an armed watch so it can be re-issued wherever the
        session lands after a crash or migration."""
        key = (params.get("pipe"), params.get("signal"))
        records = self._watch_records.setdefault(name, [])
        records[:] = [
            (cl, pr) for cl, pr in records
            if cl is not client
            or (pr.get("pipe"), pr.get("signal")) != key
        ]
        records.append((client, dict(params)))

    def _forget_watch(self, name: str, params: Dict[str, Any]) -> None:
        """``unwatch`` closes every subscription on that signal in the
        worker's buffer, so drop all matching records, any client."""
        key = (params.get("pipe"), params.get("signal"))
        records = self._watch_records.get(name)
        if records is None:
            return
        records[:] = [
            (cl, pr) for cl, pr in records
            if (pr.get("pipe"), pr.get("signal")) != key
        ]
        if not records:
            self._watch_records.pop(name, None)

    def _drop_client_watches(self, client: _Client) -> None:
        for name, records in list(self._watch_records.items()):
            kept = [
                (cl, pr) for cl, pr in records if cl is not client
            ]
            if kept:
                self._watch_records[name] = kept
            else:
                self._watch_records.pop(name, None)

    async def _rearm_watches(
        self, name: str, worker: _WorkerHandle
    ) -> None:
        """Re-issue every recorded watch for ``name`` against the
        worker that owns it now: rehydration replayed the journalled
        ``watch`` lines (so the probes exist), but the value_change
        pumps and their rid routes died with the old process.  Takes
        the handle, not the id — callers hold ``worker.lock`` or have
        just ensured the worker, and ``_ensure_worker`` would deadlock
        on that same lock."""
        records = self._watch_records.get(name)
        if not records:
            return
        kept: List[Tuple[_Client, Dict[str, Any]]] = []
        for client, params in records:
            if client.closed:
                continue
            try:
                await self._forward_to(worker, client, "watch", params)
                kept.append((client, params))
            except WorkerCommandError:
                obs.incr("server.watch_rearm_failures")
        if kept:
            self._watch_records[name] = kept
        else:
            self._watch_records.pop(name, None)

    async def _cmd_open(
        self, client: _Client, params: Dict[str, Any]
    ) -> Any:
        name = self._str_param(params, "session")
        self._str_param(params, "source")
        reset_cycles = params.get("reset_cycles", 2)
        if not isinstance(reset_cycles, int) or isinstance(
            reset_cycles, bool
        ):
            raise ProtocolError("'reset_cycles' must be an integer")
        if name in self._sessions:
            raise WorkerCommandError({
                "type": "duplicate-session",
                "message": f"session {name!r} already exists",
            })
        wid = self.ring.lookup(name)
        value = await self._forward(client, wid, "open", params)
        self._sessions[name] = wid
        obs.incr("server.sessions_opened")
        obs.gauge("server.sessions", len(self._sessions))
        return value

    async def _cmd_sessions(self) -> List[Dict[str, Any]]:
        live = [w for w in self._workers.values() if w.alive]
        results = await asyncio.gather(*[
            self._forward_to(worker, None, "describe", {})
            for worker in live
        ], return_exceptions=True)
        entries: List[Dict[str, Any]] = []
        for result in results:
            if isinstance(result, BaseException):
                continue
            entries.extend(result)
        entries.sort(key=lambda entry: entry.get("session", ""))
        return entries

    async def _cmd_stats(self, params: Dict[str, Any]) -> Dict[str, Any]:
        workers = []
        for wid in sorted(self._workers):
            worker = self._workers[wid]
            workers.append({
                "id": wid,
                "pid": worker.pid,
                "alive": worker.alive,
                "restarts": worker.restarts,
                "sessions": sum(
                    1 for mapped in self._sessions.values()
                    if mapped == wid
                ),
            })
        metrics = obs.get_metrics().as_dict()
        counters = metrics.get("counters", {})
        stats: Dict[str, Any] = {
            "protocol": PROTOCOL_VERSION,
            "sharded": True,
            "sessions": len(self._sessions),
            "workers": workers,
            "metrics": metrics,
            # Dropped *event lines* on slow client connections (the
            # frontend owns the sockets, so this is a local counter).
            "events_dropped": counters.get("server.events_dropped", 0),
        }
        if self.store_root is not None:
            from .store import ArtifactStore

            store = ArtifactStore(self.store_root)
            stats["store"] = {
                "root": store.root,
                "artifacts": len(store),
                "bytes": store.total_bytes(),
            }
        # Trace-capture counters live in the worker processes; sum them
        # across the pool so clients see one pair of totals, same shape
        # as the threaded server's stats.
        live = [w for w in self._workers.values() if w.alive]
        results = await asyncio.gather(*[
            self._forward_to(worker, None, "stats", {})
            for worker in live
        ], return_exceptions=True)
        worker_stats = [
            result for result in results
            if not isinstance(result, BaseException)
        ]
        trace = {"cycles_dropped": 0, "events_dropped": 0}
        for entry in worker_stats:
            worker_counters = (
                (entry.get("metrics") or {}).get("counters", {})
            )
            trace["cycles_dropped"] += worker_counters.get(
                "trace.cycles_dropped", 0
            )
            trace["events_dropped"] += worker_counters.get(
                "trace.events_dropped", 0
            )
        stats["trace"] = trace
        if params.get("deep"):
            stats["worker_stats"] = worker_stats
        return stats

    # -- live resize / session migration -------------------------------------

    def _require_state_dir(self, verb: str) -> None:
        if self.state_root is None:
            raise WorkerCommandError({
                "type": verb,
                "message": f"{verb} moves sessions via their journals; "
                           "start the server with --state-dir",
            })

    async def _cmd_resize(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Grow or shrink the worker pool at runtime.

        Target worker ids are always ``0..N-1``: a grow spawns the
        missing high ids, a shrink retires them.  Ring placement is
        recomputed and every session whose owner changed migrates via
        the journal path (persist -> rehydrate -> flip -> close);
        commands aimed at a moving session queue behind its gate.
        """
        target = params.get("workers")
        if (not isinstance(target, int) or isinstance(target, bool)
                or not 1 <= target <= MAX_WORKERS):
            raise ProtocolError(
                f"'workers' must be an integer in [1, {MAX_WORKERS}]"
            )
        started = time.perf_counter()
        async with self._resize_lock:
            previous = len(self._workers)
            if target == previous:
                return {
                    "workers": target, "previous": previous,
                    "migrated": [], "spawned": [], "retired": [],
                }
            new_ring = HashRing(range(target),
                                replicas=self._ring_replicas)
            spawned: List[int] = []
            retired: List[int] = []
            if target > previous:
                spawned = [
                    wid for wid in range(target)
                    if wid not in self._workers
                ]
                moves = {
                    name: new_ring.lookup(name)
                    for name, wid in self._sessions.items()
                    if new_ring.lookup(name) != wid
                }
                if moves:
                    self._require_state_dir("resize")
                for wid in spawned:
                    self._workers[wid] = _WorkerHandle(wid)
                try:
                    await asyncio.gather(*[
                        self._start_worker(wid) for wid in spawned
                    ])
                except BaseException:
                    for wid in spawned:
                        handle = self._workers.pop(wid, None)
                        if handle is None:
                            continue
                        if handle.conn is not None:
                            try:
                                self._loop.remove_reader(
                                    handle.conn.fileno()
                                )
                            except (OSError, ValueError):
                                pass
                        if handle.process is not None:
                            handle.process.kill()
                    raise
                self.ring = new_ring
                self.num_workers = target
                migrated = await self._migrate_all(moves, forced=False)
            else:
                retired = [
                    wid for wid in sorted(self._workers)
                    if wid >= target
                ]
                moves = {
                    name: new_ring.lookup(name)
                    for name, wid in self._sessions.items()
                    if wid in retired
                }
                if moves:
                    self._require_state_dir("resize")
                # Flip the ring first so concurrent opens never land
                # on a worker that is about to retire.
                self.ring = new_ring
                self.num_workers = target
                migrated = await self._migrate_all(moves, forced=True)
                await self._retire_workers(retired)
            obs.incr("server.resizes")
            obs.gauge("server.workers", len(self._workers))
            return {
                "workers": target,
                "previous": previous,
                "migrated": sorted(migrated),
                "spawned": spawned,
                "retired": retired,
                "seconds": time.perf_counter() - started,
            }

    async def _cmd_migrate(self, params: Dict[str, Any]) -> Dict[str, Any]:
        """Move one named session to an explicit worker (the hook for
        load balancing off per-worker obs histograms)."""
        name = self._str_param(params, "session")
        target = params.get("worker")
        if not isinstance(target, int) or isinstance(target, bool):
            raise ProtocolError("'worker' must be an integer worker id")
        self._require_state_dir("migrate")
        async with self._resize_lock:
            if target not in self._workers:
                raise WorkerCommandError({
                    "type": "migrate",
                    "message": f"no worker {target}; pool is "
                               f"{sorted(self._workers)}",
                })
            src = self._sessions.get(name)
            if src is None:
                raise WorkerCommandError({
                    "type": "unknown-session",
                    "message": f"unknown session {name!r}",
                })
            if src == target:
                return {"session": name, "from": src, "worker": target,
                        "migrated": False}
            await self._migrate_session(name, target)
        return {"session": name, "from": src, "worker": target,
                "migrated": True}

    async def _migrate_all(
        self, moves: Dict[str, int], forced: bool
    ) -> List[str]:
        """Migrate every session in ``moves``; on failure, a ``forced``
        move (off a retiring worker) drops the session, an elective one
        leaves it where it is."""
        migrated: List[str] = []
        for name, dest in moves.items():
            try:
                await self._migrate_session(name, dest)
                migrated.append(name)
            except WorkerCommandError:
                obs.incr("server.migrations_failed")
                if forced:
                    # Its worker is retiring: the session cannot stay.
                    self._sessions.pop(name, None)
                    self._watch_records.pop(name, None)
                    obs.incr("server.sessions_dropped")
        obs.gauge("server.sessions", len(self._sessions))
        return migrated

    async def _migrate_session(self, name: str, dest: int) -> None:
        """Move one session: drain in-flight commands, force-persist
        its recovery state on the old worker, rehydrate on the new,
        flip the route table, then close the old copy (keeping the
        journal files, which the new worker has adopted)."""
        src = self._sessions.get(name)
        if src is None or src == dest:
            return
        gate = asyncio.Event()
        self._migrating[name] = gate
        try:
            # In-flight commands must finish on the old worker so
            # their structural effects are in the journal we snapshot.
            while self._inflight.get(name):
                await asyncio.sleep(0.005)
            src_worker = await self._ensure_worker(src)
            await self._forward_to(
                src_worker, None, "persist", {"session": name}
            )
            dest_worker = await self._ensure_worker(dest)
            await self._forward_to(
                dest_worker, None, "rehydrate", {"session": name}
            )
            self._sessions[name] = dest  # atomic route-table flip
            await self._rearm_watches(name, dest_worker)
            try:
                await self._forward_to(
                    src_worker, None, "close",
                    {"session": name, "keep_state": True},
                )
            except WorkerCommandError:
                # The old worker died after the state was safely
                # copied; its restart path will find the session
                # re-routed and leave it alone.
                pass
            obs.incr("server.sessions_migrated")
        finally:
            self._migrating.pop(name, None)
            gate.set()

    async def _retire_workers(self, wids: List[int]) -> None:
        """Shut down and remove the given (already-drained) workers."""
        for wid in wids:
            worker = self._workers.pop(wid, None)
            if worker is None:
                continue
            worker.alive = False
            if worker.conn is not None:
                try:
                    self._loop.remove_reader(worker.conn.fileno())
                except (OSError, ValueError):
                    pass
                try:
                    worker.conn.send(
                        {"kind": "control", "op": "shutdown"}
                    )
                except (OSError, ValueError):
                    pass
            # Fail anything still pending on the retiring worker (a
            # drained worker should have none; belt and braces).
            for rid, (fut, pending_wid) in list(self._pending.items()):
                if pending_wid == wid and not fut.done():
                    fut.set_result({
                        "kind": "response", "rid": rid, "ok": False,
                        "error": {
                            "type": "worker",
                            "message": f"worker {wid} retired by resize",
                        },
                    })
                    self._pending.pop(rid, None)
            process = worker.process
            if process is not None:
                await self._loop.run_in_executor(None, process.join, 5.0)
                if process.is_alive():
                    process.kill()
                    await self._loop.run_in_executor(
                        None, process.join, 5.0
                    )
            if worker.conn is not None:
                try:
                    worker.conn.close()
                except OSError:
                    pass
            obs.incr("server.workers_retired")


def default_state_root(store_root: Optional[str]) -> str:
    """Pick a session-journal directory when the caller gave none."""
    if store_root:
        return store_root.rstrip("/\\") + ".state"
    return tempfile.mkdtemp(prefix="livesim-state-")


__all__ = [
    "MAX_EVENT_QUEUE",
    "MAX_EVENT_ROUTES",
    "MAX_WORKERS",
    "ShardedFrontend",
    "WorkerCommandError",
    "default_state_root",
]
