"""Testbench objects (paper §III-B1).

A testbench is "an operation that can be performed on a stage ... for
any given number of cycles".  Crucially for LiveSim, the operations a
testbench applied are *recorded as session history*, so after a hot
reload the same operations can be replayed against the patched design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from .pipeline import Pipe


class Testbench:
    """Base class; subclasses override :meth:`drive`.

    ``drive(pipe)`` is called before each cycle's eval and may set
    inputs based on ``pipe.cycle``.  ``check(pipe, outputs)`` may stop
    the run early by returning True.
    """

    name = "testbench"

    def drive(self, pipe: Pipe) -> None:  # pragma: no cover - default no-op
        pass

    def check(self, pipe: Pipe, outputs: Dict[str, int]) -> bool:
        return False

    def rebase(self, start_cycle: int) -> None:
        """Pin the cycle this testbench run logically started at.

        Replay (checkpoint reload, consistency verification) re-enters
        a testbench midway; a testbench whose stimulus depends on the
        cycle offset must honour this so the replayed drive matches the
        original run.
        """

    def run(self, pipe: Pipe, cycles: int) -> int:
        """Run ``cycles`` cycles; returns cycles actually executed."""
        return pipe.step(cycles, driver=self.drive, watcher=self.check)


class CallbackTestbench(Testbench):
    """Adapts plain functions into a testbench."""

    def __init__(
        self,
        name: str,
        drive: Optional[Callable[[Pipe], None]] = None,
        check: Optional[Callable[[Pipe, Dict[str, int]], bool]] = None,
    ):
        self.name = name
        self._drive = drive
        self._check = check

    def drive(self, pipe: Pipe) -> None:
        if self._drive is not None:
            self._drive(pipe)

    def check(self, pipe: Pipe, outputs: Dict[str, int]) -> bool:
        if self._check is not None:
            return self._check(pipe, outputs)
        return False


@dataclass
class VectorTestbench(Testbench):
    """Drives per-cycle input vectors and records output vectors.

    ``vectors[i]`` is applied at the i-th cycle of the run; the last
    vector is held afterwards.  Recorded outputs can be compared across
    design versions — the consistency checker uses this to detect
    divergence.
    """

    name: str = "vectors"
    vectors: Sequence[Dict[str, int]] = field(default_factory=list)
    record: List[Dict[str, int]] = field(default_factory=list)
    _base_cycle: Optional[int] = None

    def drive(self, pipe: Pipe) -> None:
        if self._base_cycle is None:
            self._base_cycle = pipe.cycle
        if not self.vectors:
            return
        index = min(pipe.cycle - self._base_cycle, len(self.vectors) - 1)
        pipe.set_inputs(**self.vectors[index])

    def check(self, pipe: Pipe, outputs: Dict[str, int]) -> bool:
        self.record.append(dict(outputs))
        return False

    def rebase(self, start_cycle: int) -> None:
        self._base_cycle = start_cycle

    def reset(self) -> None:
        self.record = []
        self._base_cycle = None


def hold_inputs(**values: int) -> CallbackTestbench:
    """A testbench that simply holds constant input values."""

    def drive(pipe: Pipe) -> None:
        pipe.set_inputs(**values)

    return CallbackTestbench(name="hold", drive=drive)


def reset_sequence(
    reset_name: str = "rst", cycles: int = 2, active_high: bool = True
) -> CallbackTestbench:
    """Asserts reset while the *absolute* cycle is below ``cycles``.

    Keyed to the absolute cycle (not the run start) so replays from a
    checkpoint reproduce the original stimulus.
    """

    def drive(pipe: Pipe) -> None:
        in_reset = pipe.cycle < cycles
        value = int(in_reset) if active_high else int(not in_reset)
        pipe.set_input(reset_name, value)

    return CallbackTestbench(name="reset", drive=drive)
