"""Simulation kernel: instances, pipelines, testbenches, waveforms."""

from .stage import StageInst, StateSnapshot
from .pipeline import Pipe
from .testbench import Testbench, CallbackTestbench, VectorTestbench
from .waveform import Probe, Trace, WaveformRecorder

__all__ = [
    "StageInst",
    "StateSnapshot",
    "Pipe",
    "Testbench",
    "CallbackTestbench",
    "VectorTestbench",
    "Probe",
    "Trace",
    "WaveformRecorder",
]
