"""Simulation kernel: instances, pipelines, testbenches, waveforms."""

from .pipeline import Pipe
from .stage import StageInst, StateSnapshot
from .testbench import CallbackTestbench, Testbench, VectorTestbench
from .waveform import Probe, Trace, WaveformRecorder

__all__ = [
    "StageInst",
    "StateSnapshot",
    "Pipe",
    "Testbench",
    "CallbackTestbench",
    "VectorTestbench",
    "Probe",
    "Trace",
    "WaveformRecorder",
]
