"""Waveform recording and VCD export.

The paper's conclusion: *"since hot reload is fast, the designer can
insert 'printfs' and replay from any given point with very low
overhead."*  This module is that observability layer: probe any
register, output, or memory word of a running pipe, record per-cycle
values, and export standard VCD for any waveform viewer.

Probes compose with checkpoint reload: rewind via ``ldch``, attach a
recorder, replay the window of interest, and inspect — without ever
re-running the full simulation.

Since the live trace subsystem landed, :class:`WaveformRecorder` is a
thin compatibility wrapper over an *unbounded*
:class:`repro.trace.TraceBuffer` — same probe/record/VCD API, one
storage and one VCD encoder (:func:`write_vcd`) shared with live
ring-buffer capture.  New code that wants live capture, bounded
memory, subscriptions, or reload-surviving probes should use
``repro.trace`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..hdl.errors import SimulationError
from ..trace import TraceBuffer
from ..trace.probes import TraceProbe
from .pipeline import Pipe

_VCD_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def vcd_id(index: int) -> str:
    """Compact VCD identifier for the ``index``-th variable (base-94
    over the printable ASCII range, per the VCD spec)."""
    base = len(_VCD_ID_CHARS)
    out = ""
    index += 1
    while index:
        index, digit = divmod(index - 1, base)
        out = _VCD_ID_CHARS[digit] + out
    return out


def write_vcd(
    path: str,
    probes: Iterable[Tuple[str, int]],
    changes_of: Callable[[str], Iterable[Tuple[int, int]]],
    timescale: str = "1 ns",
    module_name: str = "uut",
) -> None:
    """Write one VCD file — the single encoder behind both
    :class:`WaveformRecorder` and ``repro.trace.TraceBuffer``.

    ``probes`` is ``(name, width)`` pairs in declaration order;
    ``changes_of(name)`` yields that probe's ``(cycle, value)``
    change stream (consecutive duplicates already removed).
    """
    probes = list(probes)
    ids = {name: vcd_id(i) for i, (name, _width) in enumerate(probes)}
    lines: List[str] = [
        "$date repro-livesim $end",
        "$version repro LiveSim reproduction $end",
        f"$timescale {timescale} $end",
        f"$scope module {module_name} $end",
    ]
    for name, width in probes:
        safe = name.replace(" ", "_")
        lines.append(f"$var wire {width} {ids[name]} {safe} $end")
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    # Merge all samples into a cycle-ordered change stream.
    events: Dict[int, List[Tuple[str, int, int]]] = {}
    for name, width in probes:
        for cycle, value in changes_of(name):
            events.setdefault(cycle, []).append((ids[name], value, width))
    lines.append("$dumpvars")
    first = True
    for cycle in sorted(events):
        lines.append(f"#{cycle}")
        for ident, value, width in events[cycle]:
            if width == 1:
                lines.append(f"{value & 1}{ident}")
            else:
                lines.append(f"b{value:b} {ident}")
        if first:
            lines.append("$end")
            first = False
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")


@dataclass
class Probe:
    """One watched value: a named getter with a declared width."""

    name: str
    width: int
    getter: Callable[[Pipe], int]


@dataclass
class Trace:
    """Recorded samples for one probe."""

    probe: Probe
    cycles: List[int] = field(default_factory=list)
    values: List[int] = field(default_factory=list)

    def at(self, cycle: int) -> Optional[int]:
        """Value at (or last before) ``cycle``; None if before start."""
        result = None
        for c, v in zip(self.cycles, self.values):
            if c > cycle:
                break
            result = v
        return result

    def changes(self) -> List[Tuple[int, int]]:
        """(cycle, value) pairs at which the value changed."""
        out: List[Tuple[int, int]] = []
        last = object()
        for c, v in zip(self.cycles, self.values):
            if v != last:
                out.append((c, v))
                last = v
        return out


class WaveformRecorder:
    """Samples a set of probes each cycle and exports VCD.

    Storage is an unbounded :class:`repro.trace.TraceBuffer`; this
    class keeps the original offline-recording API on top of it.
    """

    def __init__(self, pipe: Pipe):
        self._pipe = pipe
        self._buffer = TraceBuffer(capacity=None)

    # -- probe declaration ------------------------------------------------------

    def probe_register(self, path: str, reg: str,
                       name: Optional[str] = None) -> Probe:
        inst = self._pipe.find(path)
        if reg not in inst.code.reg_slots:
            raise SimulationError(f"{inst.code.name!r} has no register {reg!r}")
        width = inst.code.reg_widths[reg]
        label = name or (f"{path}.{reg}" if path else reg)

        def getter(pipe: Pipe) -> int:
            return pipe.find(path).peek_reg(reg)

        return self._add(Probe(label, width, getter))

    def probe_output(self, port: str, name: Optional[str] = None) -> Probe:
        code = self._pipe.top.code
        if port not in code.outputs:
            raise SimulationError(f"pipe has no output {port!r}")
        width = code.ir.signals[port].width if port in code.ir.signals else 64

        def getter(pipe: Pipe) -> int:
            return pipe.outputs()[port]

        return self._add(Probe(name or port, width, getter))

    def probe_memory_word(self, path: str, memory: str, index: int,
                          name: Optional[str] = None) -> Probe:
        inst = self._pipe.find(path)
        spec = inst.code.mem_specs.get(memory)
        if spec is None:
            raise SimulationError(f"{inst.code.name!r} has no memory {memory!r}")
        if not 0 <= index < spec.depth:
            raise SimulationError(f"index {index} outside {memory!r}")
        label = name or f"{path}.{memory}[{index}]"

        def getter(pipe: Pipe) -> int:
            return pipe.find(path).memory(memory)[index]

        return self._add(Probe(label, spec.width, getter))

    def probe_expr(self, name: str, width: int,
                   getter: Callable[[Pipe], int]) -> Probe:
        """Arbitrary computed probe — the 'printf' of the live flow."""
        return self._add(Probe(name, width, getter))

    def _add(self, probe: Probe) -> Probe:
        # Expression probe (signal=None): the trace buffer stores it
        # but never tries to re-resolve it across a design swap.
        self._buffer.add_probe(
            TraceProbe(probe.name, probe.width, probe.getter)
        )
        return probe

    # -- sampling ---------------------------------------------------------------

    def sample(self) -> None:
        """Record every probe at the pipe's current cycle."""
        self._buffer.capture(self._pipe)

    def record(self, cycles: int,
               driver: Optional[Callable[[Pipe], None]] = None) -> int:
        """Step the pipe, sampling after each settled cycle."""
        executed = 0
        for _ in range(cycles):
            if driver is not None:
                driver(self._pipe)
            self._pipe.eval()
            self.sample()
            self._pipe.tick()
            executed += 1
        return executed

    def wrap(self, testbench) -> "Testbench":
        """A testbench that samples after every settled cycle while
        delegating drive/check to ``testbench``.

        Use this for *session-managed* pipes: running the wrapper via
        ``session.run`` keeps the cycles in the replayable history (a
        recorder's own ``record`` steps the pipe directly, outside the
        session's op log).
        """
        from .testbench import Testbench

        recorder = self

        class _Sampling(Testbench):
            name = f"sampled:{getattr(testbench, 'name', 'tb')}"

            def drive(self, pipe: Pipe) -> None:
                testbench.drive(pipe)

            def check(self, pipe: Pipe, outputs) -> bool:
                recorder.sample()
                return testbench.check(pipe, outputs)

            def rebase(self, start_cycle: int) -> None:
                testbench.rebase(start_cycle)

        return _Sampling()

    def record_with_testbench(self, testbench, cycles: int) -> int:
        """Drive through a testbench, sampling each cycle.

        Samples are taken *after* each clock edge (post-tick state);
        :meth:`record` samples the settled pre-edge state instead.  Use
        :meth:`wrap` for pre-edge sampling under a testbench.
        """
        executed = 0
        testbench.rebase(self._pipe.cycle)
        for _ in range(cycles):
            ran = testbench.run(self._pipe, 1)
            self.sample()
            if ran == 0:
                break
            executed += ran
        return executed

    # -- access -------------------------------------------------------------------

    def buffer(self) -> TraceBuffer:
        """The backing trace buffer (the live-capable API)."""
        return self._buffer

    def trace(self, name: str) -> Trace:
        probe = self._buffer.probe(name)  # raises on unknown name
        samples = self._buffer.window(name)
        return Trace(
            probe=Probe(probe.name, probe.width, probe.getter),
            cycles=[c for c, _v in samples],
            values=[v for _c, v in samples],
        )

    def names(self) -> List[str]:
        return self._buffer.names()

    def clear(self) -> None:
        self._buffer.clear_samples()

    # -- VCD export ------------------------------------------------------------------

    @staticmethod
    def _vcd_id(index: int) -> str:
        return vcd_id(index)

    def to_vcd(self, path: str, timescale: str = "1 ns",
               module_name: str = "uut") -> None:
        """Write the recorded traces as a VCD file."""
        self._buffer.to_vcd(path, timescale=timescale,
                            module_name=module_name)
