"""Pipe: the simulation entry-level entity (the paper's UUT).

A :class:`Pipe` owns the top :class:`StageInst` tree, the current input
values, and the cycle counter.  One simulated cycle is ``eval`` (settle
combinational logic, compute pending register values) followed by
``tick`` (commit pending values — the clock edge).
"""

from __future__ import annotations

import copy
from typing import Callable, Dict, Optional, Tuple

from ..codegen.pygen import CompiledModule
from ..hdl.errors import ConvergenceError, SimulationError
from .stage import StageInst, StateSnapshot

Driver = Callable[["Pipe"], None]
Watcher = Callable[["Pipe", Dict[str, int]], bool]


class Pipe:
    """A running unit under test."""

    def __init__(
        self,
        top_key: str,
        library: Dict[str, CompiledModule],
        name: str = "pipe",
        max_passes: int = 16,
    ):
        self.name = name
        self.library = dict(library)
        self.top = StageInst.build(top_key, self.library, name="top")
        self.cycle = 0
        self.max_passes = max_passes
        self._inputs: Dict[str, int] = {
            port: 0 for port in self.top.code.inputs
        }
        self._last_outputs: Optional[Dict[str, int]] = None
        self._fixpoint = self._scan_fixpoint()
        self._trace = None  # Optional[repro.trace.TraceBuffer]

    # -- inputs / outputs -------------------------------------------------------

    @property
    def input_names(self) -> Tuple[str, ...]:
        return self.top.code.inputs

    @property
    def output_names(self) -> Tuple[str, ...]:
        return self.top.code.outputs

    def set_input(self, name: str, value: int) -> None:
        if name not in self._inputs:
            raise SimulationError(f"pipe has no input {name!r}")
        self._inputs[name] = value
        self._last_outputs = None

    def set_inputs(self, **values: int) -> None:
        for name, value in values.items():
            self.set_input(name, value)

    def get_input(self, name: str) -> int:
        return self._inputs[name]

    # -- evaluation ----------------------------------------------------------------

    def _scan_fixpoint(self) -> bool:
        return any(code.ir.needs_fixpoint for code in self.library.values())

    def refresh_library_traits(self) -> None:
        """Recompute cached library-derived flags.

        Must be called after the library is replaced in flight (the hot
        reloader does this).
        """
        self._fixpoint = self._scan_fixpoint()

    def _needs_fixpoint(self) -> bool:
        return self._fixpoint

    def eval(self) -> Dict[str, int]:
        """Settle combinational logic (phase 1); returns the outputs."""
        top = self.top
        args = [self._inputs[name] for name in top.code.comb_input_ports]
        result = top.code.eval_out_fn(top.state, top.children, *args)
        if self._needs_fixpoint():
            previous = result
            for _ in range(self.max_passes):
                result = top.code.eval_out_fn(top.state, top.children, *args)
                if result == previous:
                    break
                previous = result
            else:
                raise ConvergenceError(
                    "combinational logic did not settle in "
                    f"{self.max_passes} passes (comb loop?)"
                )
        outputs = dict(zip(top.code.outputs, result))
        self._last_outputs = outputs
        return outputs

    def outputs(self) -> Dict[str, int]:
        if self._last_outputs is None:
            return self.eval()
        return self._last_outputs

    def attach_trace(self, buffer) -> None:
        """Capture ``buffer`` (a :class:`repro.trace.TraceBuffer`) on
        every tick.  One buffer per pipe; None detaches."""
        self._trace = buffer

    def detach_trace(self) -> None:
        self._trace = None

    @property
    def trace_buffer(self):
        return self._trace

    def tick(self) -> None:
        """Run phase 2 and commit pending state — the clock edge."""
        top = self.top
        if self._last_outputs is None:
            self.eval()
        trace = self._trace
        if trace is not None:
            trace.capture(self)
        args = [self._inputs[name] for name in top.code.inputs]
        top.code.eval_seq_fn(top.state, top.children, *args)
        top.code.tick_fn(top.state, top.children)
        self.cycle += 1
        self._last_outputs = None

    def invalidate(self) -> None:
        """Invalidate every instance's memoized combinational result.

        Call after mutating state directly (e.g. writing into a memory
        list obtained from :meth:`StageInst.memory`).
        """
        self.top.invalidate_cache()
        self._last_outputs = None

    def step(
        self,
        cycles: int = 1,
        driver: Optional[Driver] = None,
        watcher: Optional[Watcher] = None,
    ) -> int:
        """Run full eval+tick cycles.

        ``driver`` (if given) is called before each eval to update the
        inputs.  ``watcher`` is called with the settled outputs after
        each eval; returning True stops *before* the tick (the watched
        condition holds at the current cycle).  Returns the number of
        cycles actually executed.
        """
        executed = 0
        for _ in range(cycles):
            if driver is not None:
                driver(self)
            outputs = self.eval()
            if watcher is not None and watcher(self, outputs):
                return executed
            self.tick()
            executed += 1
        return executed

    def run_until(
        self,
        predicate: Watcher,
        max_cycles: int = 1_000_000,
        driver: Optional[Driver] = None,
    ) -> bool:
        """Step until ``predicate`` holds; False if the bound is hit."""
        ran = self.step(max_cycles, driver=driver, watcher=predicate)
        return ran < max_cycles

    # -- state ------------------------------------------------------------------

    def snapshot(self) -> "PipeSnapshot":
        return PipeSnapshot(
            cycle=self.cycle,
            inputs=dict(self._inputs),
            state=self.top.snapshot(),
        )

    def restore(self, snap: "PipeSnapshot") -> None:
        self.top.restore(snap.state)
        self.cycle = snap.cycle
        self._inputs = dict(snap.inputs)
        self._last_outputs = None

    def restore_transformed(
        self,
        snap: "PipeSnapshot",
        transform_for: Callable[[str], object],
    ) -> None:
        """Load a snapshot captured under a different design version.

        See :meth:`StageInst.restore_transformed`; top-level inputs
        keep their old values where the port still exists.
        """
        self.top.restore_transformed(snap.state, transform_for)
        self.cycle = snap.cycle
        self._inputs = {
            name: snap.inputs.get(name, 0) for name in self.top.code.inputs
        }
        self._last_outputs = None

    def reset_state(self) -> None:
        """Return every register/memory to power-on zero; cycle to 0."""
        self.top.reset_state()
        self.cycle = 0
        self._last_outputs = None

    def copy(self, name: Optional[str] = None) -> "Pipe":
        """Duplicate this pipe, including its state (``copyPipe``)."""
        clone = Pipe(
            self.top.code.key,
            self.library,
            name=name or f"{self.name}_copy",
            max_passes=self.max_passes,
        )
        clone.restore(self.snapshot())
        return clone

    def find(self, path: str) -> StageInst:
        return self.top.find(path)


class PipeSnapshot:
    """Cycle + inputs + full state tree; the payload of a checkpoint."""

    __slots__ = ("cycle", "inputs", "state")

    def __init__(self, cycle: int, inputs: Dict[str, int], state: StateSnapshot):
        self.cycle = cycle
        self.inputs = inputs
        self.state = state

    def total_bytes(self) -> int:
        return self.state.total_bytes() + 8 * (len(self.inputs) + 1)

    def clone(self) -> "PipeSnapshot":
        return copy.deepcopy(self)
