"""Stage instances: the runtime objects generated code operates on.

A :class:`StageInst` is the paper's "Stage" object (§III-B1): a block of
logic with external IO, internal registers/memories, and child stages.
Its ``code`` attribute points at a shared :class:`CompiledModule`; hot
reload replaces that pointer (and migrates state) without touching the
rest of the tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..codegen.pygen import CompiledModule
from ..hdl.errors import SimulationError


@dataclass
class StateSnapshot:
    """A deep, picklable copy of one instance subtree's state.

    Registers and memories are keyed by *name* so a snapshot taken
    under one design version can be transformed into another version's
    namespace (paper §III-E).
    """

    key: str
    name: str
    regs: Dict[str, int]
    mems: Dict[str, List[int]]
    children: List["StateSnapshot"] = field(default_factory=list)
    # Sanitizer shadow state (empty for clean builds and legacy
    # pickles — read with getattr defaults): names of poisoned regs and
    # per-memory word-poison bitmaps.
    reg_poison: Tuple[str, ...] = ()
    mem_poison: Dict[str, int] = field(default_factory=dict)

    def total_bytes(self) -> int:
        """Rough payload size (8 bytes per register/memory word).

        Used by the checkpoint-overhead bench; the paper notes the
        256-core PGAS checkpoint is < 3 MB.
        """
        size = 8 * len(self.regs)
        for words in self.mems.values():
            size += 8 * len(words)
        for child in self.children:
            size += child.total_bytes()
        return size

    def child(self, name: str) -> Optional["StateSnapshot"]:
        for snap in self.children:
            if snap.name == name:
                return snap
        return None

    def equal_state(self, other: "StateSnapshot") -> bool:
        return (
            self.regs == other.regs
            and self.mems == other.mems
            and len(self.children) == len(other.children)
            and all(
                a.name == b.name and a.equal_state(b)
                for a, b in zip(self.children, other.children)
            )
        )


class StageInst:
    """One instantiated stage: shared code + private state + children."""

    __slots__ = ("code", "state", "children", "name")

    def __init__(self, code: CompiledModule, name: str = "top"):
        self.code = code
        self.name = name
        self.state = code.make_state()
        self.children: List[StageInst] = []

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        key: str,
        library: Dict[str, CompiledModule],
        name: str = "top",
    ) -> "StageInst":
        """Instantiate the subtree rooted at specialization ``key``."""
        code = library.get(key)
        if code is None:
            raise SimulationError(f"no compiled module for {key!r}")
        inst = cls(code, name=name)
        for child_name, child_key in code.child_insts:
            inst.children.append(cls.build(child_key, library, name=child_name))
        return inst

    # -- navigation -------------------------------------------------------------

    def child(self, name: str) -> "StageInst":
        for inst in self.children:
            if inst.name == name:
                return inst
        raise SimulationError(f"{self.name!r} has no child instance {name!r}")

    def find(self, path: str) -> "StageInst":
        """Resolve a dotted hierarchical path like ``u_core.u_ifu``."""
        inst = self
        if path:
            for part in path.split("."):
                inst = inst.child(part)
        return inst

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, "StageInst"]]:
        path = prefix or self.name
        yield path, self
        for child in self.children:
            yield from child.walk(f"{path}.{child.name}")

    # -- state access -----------------------------------------------------------

    def peek_reg(self, name: str) -> int:
        slot = self.code.reg_slots.get(name)
        if slot is None:
            raise SimulationError(
                f"{self.code.name!r} has no register {name!r}"
            )
        return self.state[slot]

    def poke_reg(self, name: str, value: int) -> None:
        slot = self.code.reg_slots.get(name)
        if slot is None:
            raise SimulationError(
                f"{self.code.name!r} has no register {name!r}"
            )
        mask = (1 << self.code.reg_widths[name]) - 1
        self.state[slot] = value & mask
        # Keep pending consistent so a poke survives an eval-less tick.
        self.state[slot + self.code.num_regs] = value & mask
        if self.code.sanitize:
            self.state[self.code.reg_poison_slot] &= ~(1 << slot)
        self._drop_cached_evals()

    def memory(self, name: str) -> List[int]:
        spec = self.code.mem_specs.get(name)
        if spec is None:
            raise SimulationError(f"{self.code.name!r} has no memory {name!r}")
        return self.state[spec.slot]

    def registers(self) -> Dict[str, int]:
        return {name: self.state[slot] for name, slot in self.code.reg_slots.items()}

    # -- snapshot / restore -------------------------------------------------------

    def snapshot(self) -> StateSnapshot:
        state = self.state
        reg_poison: Tuple[str, ...] = ()
        mem_poison: Dict[str, int] = {}
        if self.code.sanitize:
            pbits = state[self.code.reg_poison_slot]
            reg_poison = tuple(
                name
                for name, slot in self.code.reg_slots.items()
                if (pbits >> slot) & 1
            )
            mem_poison = {
                name: state[spec.poison_slot]
                for name, spec in self.code.mem_specs.items()
                if state[spec.poison_slot]
            }
        return StateSnapshot(
            key=self.code.key,
            name=self.name,
            regs={
                name: state[slot] for name, slot in self.code.reg_slots.items()
            },
            mems={
                name: list(state[spec.slot])
                for name, spec in self.code.mem_specs.items()
            },
            children=[child.snapshot() for child in self.children],
            reg_poison=reg_poison,
            mem_poison=mem_poison,
        )

    def restore(self, snap: StateSnapshot) -> None:
        """Restore a snapshot taken from an *identical* module version.

        Version-crossing restores (after a hot reload) go through
        :mod:`repro.live.transform`, which applies the paper's register
        transformation rules instead of requiring identity.
        """
        if snap.key != self.code.key:
            raise SimulationError(
                f"snapshot is for {snap.key!r} but instance runs {self.code.key!r}"
            )
        num_regs = self.code.num_regs
        if set(snap.regs) != set(self.code.reg_slots):
            raise SimulationError(
                f"snapshot register set differs for {self.code.key!r}"
            )
        for name, slot in self.code.reg_slots.items():
            value = snap.regs[name]
            self.state[slot] = value
            self.state[slot + num_regs] = value
        for name, spec in self.code.mem_specs.items():
            words = snap.mems.get(name)
            if words is None or len(words) != spec.depth:
                raise SimulationError(f"snapshot memory {name!r} mismatch")
            self.state[spec.slot][:] = words
            del self.state[spec.pending_slot][:]
        if self.code.sanitize:
            self._restore_poison(
                getattr(snap, "reg_poison", ()),
                getattr(snap, "mem_poison", {}),
            )
        self._drop_cached_evals()
        if len(snap.children) != len(self.children):
            raise SimulationError("snapshot child count mismatch")
        for child, child_snap in zip(self.children, snap.children):
            child.restore(child_snap)

    def restore_transformed(
        self,
        snap: StateSnapshot,
        transform_for: "Callable[[str], object]",
    ) -> None:
        """Restore a snapshot from a *different* design version.

        ``transform_for(module_name)`` returns the
        :class:`~repro.live.transform.RegisterTransform` translating
        that module's old state names into the current ones (identity
        when unknown).  Registers absent from the translated snapshot
        initialize to 0 — the paper's "register created" rule.
        """
        transform = transform_for(self.code.name)
        migrated = transform.apply(snap.regs) if transform is not None else dict(
            snap.regs
        )
        num_regs = self.code.num_regs
        for name, slot in self.code.reg_slots.items():
            value = migrated.get(name, 0) & ((1 << self.code.reg_widths[name]) - 1)
            self.state[slot] = value
            self.state[slot + num_regs] = value
        if self.code.sanitize:
            # Registers the translated snapshot never carried are fresh
            # state: mark them poisoned ("skip_init"-style restore).  A
            # CREATE op materializes a value the simulation never
            # computed, so it counts as fresh too; carried snapshot
            # poison survives under its (possibly renamed) name.
            carried = set(getattr(snap, "reg_poison", ()))
            created = set()
            for op in getattr(transform, "ops", ()) or ():
                if op.kind == "create":
                    created.add(op.name)
                elif op.kind == "rename" and op.name in carried:
                    carried.discard(op.name)
                    carried.add(op.new_name)
            const_init = getattr(self.code, "reg_const_init", {})
            fresh = []
            for name in self.code.reg_slots:
                if name in created or name in carried:
                    fresh.append(name)
                elif name not in migrated:
                    value = const_init.get(name)
                    if value is None:
                        fresh.append(name)
                    else:
                        # Proven constant from reset (env-tier dataflow
                        # fact): adopt the proven value, poison-free —
                        # the "fully-known init" case.
                        slot = self.code.reg_slots[name]
                        value &= (1 << self.code.reg_widths[name]) - 1
                        self.state[slot] = value
                        self.state[slot + num_regs] = value
            self._restore_poison(tuple(fresh), {})
        name_map = {name: name for name in snap.mems}
        if transform is not None:
            for op in getattr(transform, "ops", ()):
                if op.kind == "rename" and op.name in name_map:
                    name_map[op.name] = op.new_name
                elif op.kind == "delete":
                    name_map.pop(op.name, None)
        translated = {
            new_name: snap.mems[old_name] for old_name, new_name in name_map.items()
        }
        if self.code.sanitize:
            snap_mem_poison = getattr(snap, "mem_poison", {})
            old_name_of = {new: old for old, new in name_map.items()}
        for name, spec in self.code.mem_specs.items():
            target = self.state[spec.slot]
            words = translated.get(name)
            if words is None:
                target[:] = [0] * spec.depth
                if self.code.sanitize:
                    # A memory the snapshot never had is all fresh state.
                    self.state[spec.poison_slot] = (1 << spec.depth) - 1
            else:
                count = min(len(words), spec.depth)
                mask = (1 << spec.width) - 1
                target[0:count] = [w & mask for w in words[0:count]]
                if count < spec.depth:
                    target[count:] = [0] * (spec.depth - count)
                if self.code.sanitize:
                    # Depth growth beyond the snapshotted words is fresh;
                    # carried word poison covers the copied range.
                    poison = ((1 << spec.depth) - 1) & ~((1 << count) - 1)
                    poison |= snap_mem_poison.get(
                        old_name_of.get(name, name), 0
                    ) & ((1 << count) - 1)
                    self.state[spec.poison_slot] = poison
            del self.state[spec.pending_slot][:]
        self._drop_cached_evals()
        for child in self.children:
            child_snap = snap.child(child.name)
            if child_snap is not None:
                child.restore_transformed(child_snap, transform_for)
            else:
                child.reset_state()

    def _restore_poison(
        self,
        reg_poison: Tuple[str, ...],
        mem_poison: Dict[str, int],
    ) -> None:
        """Replace the sanitizer shadow state from snapshot form."""
        pbits = 0
        for name in reg_poison:
            slot = self.code.reg_slots.get(name)
            if slot is not None:
                pbits |= 1 << slot
        self.state[self.code.reg_poison_slot] = pbits
        for name, spec in self.code.mem_specs.items():
            self.state[spec.poison_slot] = mem_poison.get(name, 0) & (
                (1 << spec.depth) - 1
            )
        self.state[self.code.nw_slot].clear()

    def reset_state(self) -> None:
        """Zero all registers and memories (power-on state)."""
        self.state = self.code.make_state()
        for child in self.children:
            child.reset_state()

    # -- pending-state signature (for fixed-point convergence) ---------------------

    def pending_signature(self) -> tuple:
        num_regs = self.code.num_regs
        parts: list = [tuple(self.state[num_regs : 2 * num_regs])]
        for spec in self.code.mem_specs.values():
            parts.append(tuple(self.state[spec.pending_slot]))
        for child in self.children:
            parts.append(child.pending_signature())
        return tuple(parts)

    def _drop_cached_evals(self) -> None:
        """Clear the eval_out memo and every sensitivity-guard slot.

        Guard clearing is what keeps opt=full guards sound under
        sanitize: a state mutation outside ``tick`` (poke, restore) can
        set poison without changing a guard's value key, and a warm
        guard would then skip the re-evaluation whose register-read
        hooks report the poisoned read.  Cold slots force one full
        evaluation after any such transition.
        """
        self.state[2 * self.code.num_regs] = None
        base = self.code.sens_base
        for g in range(self.code.sens_slot_count):
            self.state[base + 2 * g] = None
            self.state[base + 2 * g + 1] = None

    def invalidate_cache(self) -> None:
        """Drop the memoized eval_out result (and any sensitivity-guard
        state), recursively.

        Must be called after mutating state outside ``tick`` — pokes,
        snapshot restores, direct memory writes.  The accessors on this
        class do it automatically; only callers who grab a memory list
        via :meth:`memory` and write into it need to call this
        themselves (or go through :meth:`write_memory`).
        """
        self._drop_cached_evals()
        for child in self.children:
            child.invalidate_cache()

    def write_memory(self, name: str, offset: int, words: List[int]) -> None:
        """Write ``words`` into memory ``name`` starting at ``offset``
        (word-indexed), with cache invalidation."""
        target = self.memory(name)
        if offset < 0 or offset + len(words) > len(target):
            raise SimulationError(
                f"write of {len(words)} words at {offset} exceeds "
                f"memory {name!r}"
            )
        spec = self.code.mem_specs[name]
        mask = (1 << spec.width) - 1
        target[offset : offset + len(words)] = [w & mask for w in words]
        if self.code.sanitize:
            self.state[spec.poison_slot] &= ~(
                ((1 << len(words)) - 1) << offset
            )
        self.invalidate_cache()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<StageInst {self.name} code={self.code.key}>"
