"""Set-associative cache simulator (LRU), line-granular.

Sized by default like the paper's evaluation machine (an Intel
i7-6700K / Skylake): 32 KB 8-way L1I, 32 KB 8-way L1D, 64-byte lines.
The model is deliberately single-level — the paper's argument only
needs "fits in L1" vs "thrashes L1", and MPKI is reported against the
same instruction counts the IPC model uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class CacheConfig:
    size_bytes: int = 32 * 1024
    ways: int = 8
    line_bytes: int = 64

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.ways * self.line_bytes)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError("cache geometry must give a power-of-two set count")
        return sets


@dataclass
class CacheStats:
    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def mpki(self, instructions: float) -> float:
        """Misses per thousand instructions."""
        return 1000.0 * self.misses / instructions if instructions else 0.0


class CacheSim:
    """LRU set-associative cache over abstract byte addresses."""

    def __init__(self, config: CacheConfig = CacheConfig()):
        self.config = config
        self._num_sets = config.num_sets
        self._set_mask = self._num_sets - 1
        self._line_shift = config.line_bytes.bit_length() - 1
        # Each set is an ordered list of tags; index 0 is MRU.
        self._sets: List[List[int]] = [[] for _ in range(self._num_sets)]
        self.stats = CacheStats()

    def reset(self) -> None:
        self._sets = [[] for _ in range(self._num_sets)]
        self.stats = CacheStats()

    def access(self, addr: int) -> bool:
        """Touch the line holding ``addr``; True on hit."""
        line = addr >> self._line_shift
        index = line & self._set_mask
        tag = line >> (self._num_sets.bit_length() - 1)
        ways = self._sets[index]
        self.stats.accesses += 1
        try:
            pos = ways.index(tag)
        except ValueError:
            self.stats.misses += 1
            ways.insert(0, tag)
            if len(ways) > self.config.ways:
                ways.pop()
            return False
        if pos:
            del ways[pos]
            ways.insert(0, tag)
        return True

    def access_range(self, start: int, length: int) -> int:
        """Touch every line in ``[start, start+length)``; returns misses."""
        if length <= 0:
            return 0
        misses_before = self.stats.misses
        line_bytes = self.config.line_bytes
        first = start - (start % line_bytes)
        addr = first
        end = start + length
        while addr < end:
            self.access(addr)
            addr += line_bytes
        return self.stats.misses - misses_before

    def resident_lines(self) -> int:
        return sum(len(ways) for ways in self._sets)
