"""Host CPU performance model.

The paper explains LiveSim's speed advantage on large designs with
host-machine microarchitecture effects (Table VII): Verilator's
replicated/inlined code overflows the instruction cache once the design
has enough instances, while LiveSim's shared-module code keeps a tiny
I-footprint at the cost of call glue and extra branches.

Pure-Python wall-clock timing cannot exhibit those effects (the
interpreter's own footprint dominates), so this package *simulates* the
mechanism: a set-associative cache model and a 2-bit branch predictor
replay synthetic traces derived from each compiler's measured
code/data footprint (see :mod:`repro.codegen.cost`), and an in-order
IPC model turns miss rates into simulated-KHz.  Absolute numbers are
calibrated against the paper's 1x1 column; the *shape* across design
sizes is the reproduction target.
"""

from .branch import BranchPredictor
from .cache import CacheConfig, CacheSim, CacheStats
from .perf import HostMachine, PerfModel, PerfResult
from .trace import HostTraceStats, TraceSynthesizer

__all__ = [
    "CacheConfig",
    "CacheSim",
    "CacheStats",
    "BranchPredictor",
    "TraceSynthesizer",
    "HostTraceStats",
    "HostMachine",
    "PerfModel",
    "PerfResult",
]
