"""IPC / simulation-speed estimation (the Table VII columns).

A simple in-order pipeline model: every host instruction costs
``1/base_ipc`` cycles, plus fixed penalties per I$ miss, D$ miss, and
branch mispredict.  Simulated-design KHz follows directly::

    KHz = host_frequency * IPC / host_instructions_per_design_cycle / 1000

``khz_scale`` lets a bench calibrate the absolute level against the
paper's measured 1x1 anchor (LiveSim 1974 KHz / IPC 2.50) so that the
reported numbers land in the paper's units; the *relative* behaviour
across sizes and styles comes entirely from the model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..codegen.cost import DesignCost
from .cache import CacheConfig
from .trace import HostTraceStats, TraceSynthesizer


@dataclass(frozen=True)
class HostMachine:
    """Microarchitectural parameters of the modeled host.

    Defaults approximate the paper's i7-6700K (Skylake @ 4.2 GHz):
    L1 miss penalties in the low teens of cycles, ~15-cycle mispredict.
    """

    frequency_ghz: float = 4.2
    base_ipc: float = 3.2
    icache_miss_penalty: float = 14.0
    dcache_miss_penalty: float = 12.0
    branch_miss_penalty: float = 15.0
    icache: CacheConfig = CacheConfig()
    dcache: CacheConfig = CacheConfig()


@dataclass
class PerfResult:
    """One Table VII column."""

    style: str
    khz: float
    ipc: float
    i_mpki: float
    d_mpki: float
    br_mpki: float
    instructions_per_cycle: float
    code_bytes: float
    data_bytes: float

    def row(self) -> dict:
        return {
            "KHz": round(self.khz, 1),
            "IPC": round(self.ipc, 2),
            "I$ MPKI": round(self.i_mpki, 2),
            "D$ MPKI": round(self.d_mpki, 2),
            "BR MPKI": round(self.br_mpki, 2),
        }


class PerfModel:
    """Turns a design cost + trace statistics into Table VII numbers."""

    def __init__(self, machine: HostMachine = HostMachine(),
                 khz_scale: float = 1.0):
        self.machine = machine
        self.khz_scale = khz_scale

    def evaluate(
        self,
        cost: DesignCost,
        trace_cycles: int = 8,
        warmup: int = 2,
        seed: int = 1,
        cores: int = 1,
    ) -> PerfResult:
        """``cores`` scales the reported KHz to the paper's unit:
        aggregate simulated core-kilocycles per second ("global
        speed"), i.e. design-cycle rate times the core count."""
        synth = TraceSynthesizer(
            cost,
            icache_config=self.machine.icache,
            dcache_config=self.machine.dcache,
            seed=seed,
        )
        stats = synth.run(cycles=trace_cycles, warmup=warmup)
        return self.from_stats(cost, stats, cores=cores)

    def from_stats(self, cost: DesignCost, stats: HostTraceStats,
                   cores: int = 1) -> PerfResult:
        machine = self.machine
        instructions = max(stats.instructions, 1.0)
        host_cycles = (
            instructions / machine.base_ipc
            + stats.icache.misses * machine.icache_miss_penalty
            + stats.dcache.misses * machine.dcache_miss_penalty
            + stats.branches.mispredicts * machine.branch_miss_penalty
        )
        ipc = instructions / host_cycles
        instr_per_design_cycle = instructions / max(stats.cycles, 1)
        khz = (
            machine.frequency_ghz
            * 1e9
            * ipc
            / instr_per_design_cycle
            / 1e3
            * self.khz_scale
            * cores
        )
        return PerfResult(
            style=cost.style,
            khz=khz,
            ipc=ipc,
            i_mpki=stats.i_mpki,
            d_mpki=stats.d_mpki,
            br_mpki=stats.br_mpki,
            instructions_per_cycle=instr_per_design_cycle,
            code_bytes=cost.code_bytes,
            data_bytes=cost.data_bytes,
        )

    def calibrated(
        self,
        anchor_cost: DesignCost,
        target_khz: float,
        trace_cycles: int = 8,
    ) -> "PerfModel":
        """A copy whose ``khz_scale`` pins ``anchor_cost`` to
        ``target_khz`` (anchoring to the paper's 1x1 measurement)."""
        raw = self.evaluate(anchor_cost, trace_cycles=trace_cycles)
        if raw.khz <= 0:
            return PerfModel(self.machine, 1.0)
        return PerfModel(self.machine, target_khz / (raw.khz / self.khz_scale))
