"""2-bit saturating-counter branch predictor.

Branch sites are abstract integer ids (one per static branch in the
generated code; shared-module code means instances share sites, which
is precisely why the paper's LiveSim shows a *higher* BR MPKI — the
same predictor entry sees different instances' data)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class BranchStats:
    branches: int = 0
    mispredicts: int = 0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.branches if self.branches else 0.0

    def mpki(self, instructions: float) -> float:
        return 1000.0 * self.mispredicts / instructions if instructions else 0.0


class BranchPredictor:
    """Classic 2-bit counters, one per site id (direct-mapped table)."""

    def __init__(self, table_size: int = 4096):
        if table_size & (table_size - 1):
            raise ValueError("predictor table size must be a power of two")
        self._mask = table_size - 1
        self._counters: Dict[int, int] = {}
        self.stats = BranchStats()

    def reset(self) -> None:
        self._counters = {}
        self.stats = BranchStats()

    def predict_and_update(self, site: int, taken: bool) -> bool:
        """Returns True when the prediction was correct."""
        index = site & self._mask
        counter = self._counters.get(index, 2)  # weakly taken
        predicted_taken = counter >= 2
        correct = predicted_taken == taken
        self.stats.branches += 1
        if not correct:
            self.stats.mispredicts += 1
        if taken:
            counter = min(counter + 1, 3)
        else:
            counter = max(counter - 1, 0)
        self._counters[index] = counter
        return correct
