"""Synthetic host-trace generation from design cost models.

One simulated design cycle produces, per instance, the host-level
activity of evaluating that instance:

* an instruction-fetch sweep over the instance's *code block* — shared
  across instances under the LiveSim model, private per instance under
  the Verilator model (this single difference produces the paper's
  I$ cliff);
* data traffic over the instance's private state array (plus sparse
  touches into its big memories);
* branch events at the module's branch sites — shared sites across
  instances for shared code, private sites for replicated code (which
  is why shared code predicts *worse*: one 2-bit counter sees many
  instances' disagreeing outcomes).

All pseudo-randomness is a deterministic splitmix-style hash, so runs
are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..codegen.cost import DesignCost
from .branch import BranchPredictor, BranchStats
from .cache import CacheConfig, CacheSim, CacheStats

_CODE_REGION_GAP = 4096  # pad between code blocks (alignment, literals)
_DATA_REGION_GAP = 256


def _mix(value: int) -> int:
    """Deterministic 64-bit hash (splitmix64 finalizer)."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return value ^ (value >> 31)


@dataclass
class _InstanceRecord:
    module_key: str
    code_base: int
    code_bytes: int
    data_base: int
    state_bytes: int
    touched_bytes: int
    has_big_memory: bool
    branch_sites: Tuple[int, ...]
    instance_id: int


@dataclass
class HostTraceStats:
    """Aggregate statistics of a synthesized trace run."""

    cycles: int
    instructions: float
    icache: CacheStats
    dcache: CacheStats
    branches: BranchStats

    @property
    def i_mpki(self) -> float:
        return self.icache.mpki(self.instructions)

    @property
    def d_mpki(self) -> float:
        return self.dcache.mpki(self.instructions)

    @property
    def br_mpki(self) -> float:
        return self.branches.mpki(self.instructions)


class TraceSynthesizer:
    """Builds and replays the synthetic trace for one design+style."""

    def __init__(
        self,
        cost: DesignCost,
        icache_config: CacheConfig = CacheConfig(),
        dcache_config: CacheConfig = CacheConfig(),
        predictor_size: int = 4096,
        taken_bias_percent: int = 85,
        flip_percent: int = 8,
        seed: int = 1,
    ):
        self._cost = cost
        self._icache = CacheSim(icache_config)
        self._dcache = CacheSim(dcache_config)
        self._predictor = BranchPredictor(predictor_size)
        self._taken_bias = taken_bias_percent
        self._flip = flip_percent
        self._seed = seed
        self._instances = self._layout()

    @property
    def shared_code(self) -> bool:
        return self._cost.style == "branch"

    # -- address-space layout -----------------------------------------------------

    def _layout(self) -> List[_InstanceRecord]:
        cost = self._cost
        records: List[_InstanceRecord] = []
        code_cursor = 0
        data_cursor = 0
        site_cursor = 0
        shared_code_base: Dict[str, int] = {}
        shared_sites: Dict[str, Tuple[int, ...]] = {}
        instance_id = 0
        for key in sorted(cost.instance_counts):
            module = cost.module_costs[key]
            count = cost.instance_counts[key]
            code_bytes = max(int(module.code_bytes), 16)
            n_sites = max(int(round(module.branches)), 0)
            if self.shared_code:
                if key not in shared_code_base:
                    shared_code_base[key] = code_cursor
                    code_cursor += code_bytes + _CODE_REGION_GAP
                    shared_sites[key] = tuple(
                        range(site_cursor, site_cursor + n_sites)
                    )
                    site_cursor += n_sites
            for _ in range(count):
                if self.shared_code:
                    code_base = shared_code_base[key]
                    sites = shared_sites[key]
                else:
                    code_base = code_cursor
                    code_cursor += code_bytes + _CODE_REGION_GAP
                    sites = tuple(range(site_cursor, site_cursor + n_sites))
                    site_cursor += n_sites
                state_bytes = max(module.state_bytes, 16)
                touched = int(
                    min(state_bytes, 8 * (module.loads + module.stores) + 16)
                )
                records.append(
                    _InstanceRecord(
                        module_key=key,
                        code_base=code_base,
                        code_bytes=code_bytes,
                        data_base=data_cursor,
                        state_bytes=state_bytes,
                        touched_bytes=touched,
                        has_big_memory=state_bytes > 4096,
                        branch_sites=sites,
                        instance_id=instance_id,
                    )
                )
                data_cursor += state_bytes + _DATA_REGION_GAP
                instance_id += 1
        return records

    @property
    def total_code_bytes(self) -> int:
        if not self._instances:
            return 0
        if self.shared_code:
            seen = {}
            for rec in self._instances:
                seen[rec.code_base] = rec.code_bytes
            return sum(seen.values())
        return sum(rec.code_bytes for rec in self._instances)

    @property
    def total_data_bytes(self) -> int:
        return sum(rec.state_bytes for rec in self._instances)

    # -- trace replay ---------------------------------------------------------------

    def run(self, cycles: int = 8, warmup: int = 2) -> HostTraceStats:
        """Replay ``warmup + cycles`` design cycles; stats cover the
        post-warmup portion."""
        for cycle in range(warmup):
            self._one_cycle(cycle)
        self._icache.stats = CacheStats()
        self._dcache.stats = CacheStats()
        self._predictor.stats = BranchStats()
        for cycle in range(warmup, warmup + cycles):
            self._one_cycle(cycle)
        instructions = self._cost.instructions * cycles
        return HostTraceStats(
            cycles=cycles,
            instructions=instructions,
            icache=self._icache.stats,
            dcache=self._dcache.stats,
            branches=self._predictor.stats,
        )

    def _one_cycle(self, cycle: int) -> None:
        icache = self._icache
        dcache = self._dcache
        predictor = self._predictor
        taken_bias = self._taken_bias
        flip = self._flip
        seed = self._seed
        for rec in self._instances:
            icache.access_range(rec.code_base, rec.code_bytes)
            dcache.access_range(rec.data_base, rec.touched_bytes)
            if rec.has_big_memory:
                # Sparse touches into the instance's large memories
                # (instruction fetch + load/store of the simulated
                # core): a few pseudo-random lines per cycle.
                for i in range(4):
                    offset = _mix(seed ^ (rec.instance_id << 20) ^ (cycle << 4)
                                  ^ i) % rec.state_bytes
                    dcache.access(rec.data_base + offset)
            for site in rec.branch_sites:
                base = _mix(seed ^ (site << 24) ^ (rec.instance_id + 1))
                taken = (base % 100) < taken_bias
                if (_mix(base ^ cycle) % 100) < flip:
                    taken = not taken
                predictor.predict_and_update(site, taken)
