"""LHDL preprocessor: ```define``, ```ifdef``/```ifndef``/```else``/```endif``.

The preprocessor keeps the output line-for-line aligned with the input
(directive lines become blank lines, disabled regions become blank
lines) so every downstream diagnostic and source region maps directly
back to the user's file.

It also records which source lines hold directives.  LiveParser needs
this: the paper (§III-C) notes that a change to a pre-processor
directive "could affect any code below the affected lines", forcing a
much wider recompile than a change inside one module.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .errors import PreprocessorError

_DIRECTIVE_RE = re.compile(r"^\s*`(\w+)\s*(.*?)\s*$")
_MACRO_USE_RE = re.compile(r"`(\w+)")
_IDENT_RE = re.compile(r"^[A-Za-z_]\w*$")

_CONDITIONALS = {"ifdef", "ifndef", "else", "endif"}


@dataclass
class PreprocessResult:
    """Output of :func:`preprocess`."""

    text: str
    defines: Dict[str, str]
    directive_lines: List[int] = field(default_factory=list)
    macros_used: Dict[str, List[int]] = field(default_factory=dict)

    def first_directive_line(self) -> Optional[int]:
        return self.directive_lines[0] if self.directive_lines else None


def _strip_comment(text: str) -> str:
    idx = text.find("//")
    return text[:idx] if idx >= 0 else text


def preprocess(
    source: str, predefines: Optional[Dict[str, str]] = None
) -> PreprocessResult:
    """Expand directives in ``source`` and return aligned text + metadata.

    ``predefines`` seeds the macro table (like ``-D`` on a compiler
    command line); entries defined in the source override it.
    """
    defines: Dict[str, str] = dict(predefines or {})
    out_lines: List[str] = []
    directive_lines: List[int] = []
    macros_used: Dict[str, List[int]] = {}
    # Stack of (taken, seen_else, line) for nested conditionals.
    cond_stack: List[Tuple[bool, bool, int]] = []

    def active() -> bool:
        return all(taken for taken, _, _ in cond_stack)

    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _DIRECTIVE_RE.match(line)
        if match and (match.group(1) in _CONDITIONALS or match.group(1) == "define"
                      or match.group(1) == "undef"):
            name, rest = match.group(1), _strip_comment(match.group(2)).strip()
            directive_lines.append(lineno)
            if name == "ifdef" or name == "ifndef":
                if not _IDENT_RE.match(rest):
                    raise PreprocessorError(f"`{name} needs a macro name", lineno, 1)
                present = rest in defines
                taken = present if name == "ifdef" else not present
                cond_stack.append((taken and active(), False, lineno))
            elif name == "else":
                if not cond_stack:
                    raise PreprocessorError("`else without `ifdef", lineno, 1)
                taken, seen_else, open_line = cond_stack.pop()
                if seen_else:
                    raise PreprocessorError("duplicate `else", lineno, 1)
                parent_active = all(t for t, _, _ in cond_stack)
                cond_stack.append((parent_active and not taken, True, open_line))
            elif name == "endif":
                if not cond_stack:
                    raise PreprocessorError("`endif without `ifdef", lineno, 1)
                cond_stack.pop()
            elif name == "define":
                if active():
                    parts = rest.split(None, 1)
                    if not parts or not _IDENT_RE.match(parts[0]):
                        raise PreprocessorError("`define needs a name", lineno, 1)
                    defines[parts[0]] = parts[1] if len(parts) > 1 else "1"
            elif name == "undef":
                if active():
                    if not _IDENT_RE.match(rest):
                        raise PreprocessorError("`undef needs a name", lineno, 1)
                    defines.pop(rest, None)
            out_lines.append("")
            continue

        if not active():
            out_lines.append("")
            continue

        expanded, used = _expand_macros(line, defines, lineno)
        for macro in used:
            macros_used.setdefault(macro, []).append(lineno)
        out_lines.append(expanded)

    if cond_stack:
        _, _, open_line = cond_stack[-1]
        raise PreprocessorError("unterminated `ifdef", open_line, 1)

    return PreprocessResult(
        text="\n".join(out_lines) + ("\n" if source.endswith("\n") else ""),
        defines=defines,
        directive_lines=directive_lines,
        macros_used=macros_used,
    )


def _expand_macros(
    line: str, defines: Dict[str, str], lineno: int, depth: int = 0
) -> Tuple[str, List[str]]:
    if depth > 32:
        raise PreprocessorError("macro expansion too deep (recursive define?)", lineno, 1)
    used: List[str] = []

    def repl(match: "re.Match[str]") -> str:
        name = match.group(1)
        if name not in defines:
            raise PreprocessorError(f"undefined macro `{name}", lineno, match.start() + 1)
        used.append(name)
        return defines[name]

    expanded = _MACRO_USE_RE.sub(repl, line)
    if "`" in expanded and used:
        expanded, nested = _expand_macros(expanded, defines, lineno, depth + 1)
        used.extend(nested)
    return expanded, used
