"""AST node definitions for LHDL.

The tree is deliberately small and explicit: every node is a frozen-ish
dataclass with a source line, so elaboration and LiveParser diagnostics
can point back at the user's file.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass
from typing import Dict, List, Optional, Tuple


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class Num(Expr):
    """Integer literal; ``width`` is None for plain decimals."""

    value: int = 0
    width: Optional[int] = None


@dataclass
class Id(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""  # ! ~ - + & | ^ (last three are reductions)
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Ternary(Expr):
    cond: Expr = None  # type: ignore[assignment]
    if_true: Expr = None  # type: ignore[assignment]
    if_false: Expr = None  # type: ignore[assignment]


@dataclass
class Concat(Expr):
    parts: List[Expr] = field(default_factory=list)


@dataclass
class Repl(Expr):
    count: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class Index(Expr):
    """Single-bit select ``sig[i]`` or memory word select ``mem[addr]``."""

    base: str = ""
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Slice(Expr):
    """Constant part select ``sig[msb:lsb]``."""

    base: str = ""
    msb: Expr = None  # type: ignore[assignment]
    lsb: Expr = None  # type: ignore[assignment]


@dataclass
class IndexedPart(Expr):
    """Indexed part select ``sig[start +: width]`` (or ``-:``)."""

    base: str = ""
    start: Expr = None  # type: ignore[assignment]
    width: Expr = None  # type: ignore[assignment]
    ascending: bool = True  # True for +:, False for -:


@dataclass
class SysCall(Expr):
    """``$signed(x)`` / ``$unsigned(x)`` / ``$clog2(x)``."""

    func: str = ""
    args: List[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------
# Statements (inside always blocks)
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class LValue:
    """Assignment target: whole signal, bit/word index, or part select."""

    name: str = ""
    index: Optional[Expr] = None  # bit select or memory address
    msb: Optional[Expr] = None  # part select bounds (with lsb)
    lsb: Optional[Expr] = None
    line: int = 0


@dataclass
class NonBlocking(Stmt):
    target: LValue = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class Blocking(Stmt):
    target: LValue = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class Case(Stmt):
    subject: Expr = None  # type: ignore[assignment]
    # Each arm is ([labels], body); the default arm has labels == [].
    arms: List[Tuple[List[Expr], List[Stmt]]] = field(default_factory=list)


# --------------------------------------------------------------------------
# Module items
# --------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    default: Expr
    is_local: bool = False
    line: int = 0


@dataclass
class Port:
    direction: str  # "input" | "output"
    name: str
    msb: Optional[Expr] = None  # None means 1-bit scalar
    lsb: Optional[Expr] = None
    is_reg: bool = False
    line: int = 0


@dataclass
class Net:
    """wire/reg declaration; ``depth`` is set for memories."""

    kind: str  # "wire" | "reg"
    name: str
    msb: Optional[Expr] = None
    lsb: Optional[Expr] = None
    depth_msb: Optional[Expr] = None
    depth_lsb: Optional[Expr] = None
    line: int = 0

    @property
    def is_memory(self) -> bool:
        return self.depth_msb is not None


@dataclass
class ContAssign:
    target: LValue
    value: Expr
    line: int = 0


@dataclass
class Always:
    """``always @(posedge clk)`` or ``always @(*)`` block."""

    kind: str  # "seq" | "comb"
    clock: Optional[str] = None
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Instance:
    module: str
    name: str
    param_overrides: Dict[str, Expr] = field(default_factory=dict)
    # Port connections: port-name -> expression (inputs) / lvalue-ish
    # expression (outputs must be plain ids, indexes, or slices).
    connections: Dict[str, Expr] = field(default_factory=dict)
    line: int = 0


@dataclass
class Module:
    name: str
    params: List[Param] = field(default_factory=list)
    ports: List[Port] = field(default_factory=list)
    nets: List[Net] = field(default_factory=list)
    assigns: List[ContAssign] = field(default_factory=list)
    always_blocks: List[Always] = field(default_factory=list)
    instances: List[Instance] = field(default_factory=list)
    line: int = 0
    end_line: int = 0

    def port(self, name: str) -> Optional[Port]:
        for port in self.ports:
            if port.name == name:
                return port
        return None


@dataclass
class Design:
    """A parsed compilation unit: every module in one source text."""

    modules: Dict[str, Module] = field(default_factory=dict)


def shift_lines(node, delta: int) -> None:
    """Shift every source line in an AST subtree by ``delta``, in place.

    An incremental edit re-parses one module region standalone, so the
    sub-parse numbers lines from 1; without this shift every diagnostic
    for that module would point into the region instead of the file.
    Unset lines (0) stay unset.
    """
    if delta == 0:
        return
    _shift_lines(node, delta)


def _shift_lines(obj, delta: int) -> None:
    if isinstance(obj, (list, tuple)):
        for item in obj:
            _shift_lines(item, delta)
        return
    if isinstance(obj, dict):
        for item in obj.values():
            _shift_lines(item, delta)
        return
    if not is_dataclass(obj) or isinstance(obj, type):
        return
    for attr in ("line", "end_line"):
        value = getattr(obj, attr, None)
        if isinstance(value, int) and value > 0:
            setattr(obj, attr, value + delta)
    for f in fields(obj):
        value = getattr(obj, f.name)
        if isinstance(value, (list, tuple, dict)) or is_dataclass(value):
            _shift_lines(value, delta)
