"""LHDL frontend: lexer, preprocessor, parser, elaborator, regions."""

from ..analyze.diagnostics import Diagnostic
from . import ast_nodes
from .elaborate import Elaborator, elaborate
from .errors import (
    CodegenError,
    CompileBudgetExceeded,
    ConvergenceError,
    ElaborationError,
    HDLError,
    LexError,
    ParseError,
    PreprocessorError,
    SimulationError,
    WidthError,
)
from .lexer import behavioral_fingerprint, tokenize
from .parser import parse, parse_expr
from .preprocessor import preprocess
from .source_regions import SourceRegion, module_regions, split_regions

__all__ = [
    "ast_nodes",
    "Elaborator",
    "elaborate",
    "parse",
    "parse_expr",
    "preprocess",
    "tokenize",
    "behavioral_fingerprint",
    "Diagnostic",
    "SourceRegion",
    "split_regions",
    "module_regions",
    "HDLError",
    "LexError",
    "ParseError",
    "PreprocessorError",
    "ElaborationError",
    "WidthError",
    "CodegenError",
    "SimulationError",
    "ConvergenceError",
    "CompileBudgetExceeded",
]
