"""LHDL frontend: lexer, preprocessor, parser, elaborator, regions."""

from ..analyze.diagnostics import Diagnostic
from . import ast_nodes
from .elaborate import Elaborator, elaborate
from .errors import (
    CodegenError,
    CompileBudgetExceeded,
    ConvergenceError,
    ElaborationError,
    HDLError,
    LexError,
    ParseError,
    PreprocessorError,
    SimulationError,
    WidthError,
)
from .lexer import behavioral_fingerprint, tokenize
from .parser import parse, parse_expr
from .preprocessor import preprocess
from .source_regions import SourceRegion, module_regions, split_regions


def __getattr__(name: str):
    # Lazy re-export of the deprecated lint shim: importing repro.hdl
    # must not fire its DeprecationWarning — only actually reaching for
    # lint_module/lint_netlist does.
    if name in ("lint_module", "lint_netlist", "lint"):
        import importlib

        module = importlib.import_module(".lint", __name__)
        if name == "lint":
            return module
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ast_nodes",
    "Elaborator",
    "elaborate",
    "parse",
    "parse_expr",
    "preprocess",
    "tokenize",
    "behavioral_fingerprint",
    "Diagnostic",
    "lint_module",
    "lint_netlist",
    "SourceRegion",
    "split_regions",
    "module_regions",
    "HDLError",
    "LexError",
    "ParseError",
    "PreprocessorError",
    "ElaborationError",
    "WidthError",
    "CodegenError",
    "SimulationError",
    "ConvergenceError",
    "CompileBudgetExceeded",
]
