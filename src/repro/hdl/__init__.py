"""LHDL frontend: lexer, preprocessor, parser, elaborator, regions."""

from . import ast_nodes
from .elaborate import Elaborator, elaborate
from .errors import (
    CodegenError,
    CompileBudgetExceeded,
    ConvergenceError,
    ElaborationError,
    HDLError,
    LexError,
    ParseError,
    PreprocessorError,
    SimulationError,
    WidthError,
)
from .lexer import behavioral_fingerprint, tokenize
from .lint import Diagnostic, lint_module, lint_netlist
from .parser import parse, parse_expr
from .preprocessor import preprocess
from .source_regions import SourceRegion, module_regions, split_regions

__all__ = [
    "ast_nodes",
    "Elaborator",
    "elaborate",
    "parse",
    "parse_expr",
    "preprocess",
    "tokenize",
    "behavioral_fingerprint",
    "Diagnostic",
    "lint_module",
    "lint_netlist",
    "SourceRegion",
    "split_regions",
    "module_regions",
    "HDLError",
    "LexError",
    "ParseError",
    "PreprocessorError",
    "ElaborationError",
    "WidthError",
    "CodegenError",
    "SimulationError",
    "ConvergenceError",
    "CompileBudgetExceeded",
]
