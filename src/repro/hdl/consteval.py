"""Constant evaluation and parameter folding over LHDL expressions."""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from . import ast_nodes as ast
from .errors import ElaborationError


def eval_const(expr: ast.Expr, env: Dict[str, int]) -> int:
    """Evaluate ``expr`` to an int using parameter values in ``env``.

    Raises :class:`ElaborationError` if the expression references
    anything that is not a parameter (i.e. is not compile-time
    constant).
    """
    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Id):
        if expr.name in env:
            return env[expr.name]
        raise ElaborationError(
            f"{expr.name!r} is not a constant (not a parameter)", expr.line
        )
    if isinstance(expr, ast.Unary):
        val = eval_const(expr.operand, env)
        if expr.op == "-":
            return -val
        if expr.op == "~":
            return ~val
        if expr.op == "!":
            return 0 if val else 1
        raise ElaborationError(
            f"reduction {expr.op!r} not allowed in constant expression", expr.line
        )
    if isinstance(expr, ast.Binary):
        left = eval_const(expr.left, env)
        right = eval_const(expr.right, env)
        return _apply_const_binary(expr.op, left, right, expr.line)
    if isinstance(expr, ast.Ternary):
        return (
            eval_const(expr.if_true, env)
            if eval_const(expr.cond, env)
            else eval_const(expr.if_false, env)
        )
    if isinstance(expr, ast.SysCall) and expr.func == "$clog2":
        val = eval_const(expr.args[0], env)
        return max(val - 1, 0).bit_length()
    raise ElaborationError("expression is not compile-time constant", expr.line)


def _apply_const_binary(op: str, left: int, right: int, line: int) -> int:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ElaborationError("division by zero in constant expression", line)
        return left // right
    if op == "%":
        if right == 0:
            raise ElaborationError("modulo by zero in constant expression", line)
        return left % right
    if op in ("<<", "<<<"):
        return left << right
    if op in (">>", ">>>"):
        return left >> right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "<":
        return int(left < right)
    if op == "<=":
        return int(left <= right)
    if op == ">":
        return int(left > right)
    if op == ">=":
        return int(left >= right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    raise ElaborationError(f"operator {op!r} not allowed in constant expression", line)


def fold_params(expr: ast.Expr, env: Dict[str, int]) -> ast.Expr:
    """Return a copy of ``expr`` with parameter references replaced by
    literals and constant subtrees collapsed."""
    if isinstance(expr, ast.Num):
        return expr
    if isinstance(expr, ast.Id):
        if expr.name in env:
            return ast.Num(value=env[expr.name], line=expr.line)
        return expr
    if isinstance(expr, ast.Unary):
        operand = fold_params(expr.operand, env)
        if isinstance(operand, ast.Num):
            # Fold width-preservingly: ~ and - operate within the
            # operand's width (32 for bare decimals), ! yields one bit.
            width = operand.width if operand.width is not None else 32
            mask = (1 << width) - 1
            if expr.op == "~":
                return ast.Num(value=(~operand.value) & mask, width=width,
                               line=expr.line)
            if expr.op == "-":
                return ast.Num(value=(-operand.value) & mask, width=width,
                               line=expr.line)
            if expr.op == "!":
                return ast.Num(value=0 if operand.value else 1, width=1,
                               line=expr.line)
        return ast.Unary(op=expr.op, operand=operand, line=expr.line)
    if isinstance(expr, ast.Binary):
        left = fold_params(expr.left, env)
        right = fold_params(expr.right, env)
        if isinstance(left, ast.Num) and isinstance(right, ast.Num):
            try:
                value = _apply_const_binary(expr.op, left.value, right.value,
                                            expr.line)
            except ElaborationError:
                value = None
            if value is not None:
                # Preserve the runtime width semantics (see exprgen):
                # arith/bitwise take max width, shifts the left width,
                # comparisons/logical yield one bit.
                wl = left.width if left.width is not None else 32
                wr = right.width if right.width is not None else 32
                if expr.op in ("==", "!=", "===", "!==", "<", "<=", ">",
                               ">=", "&&", "||"):
                    width = 1
                elif expr.op in ("<<", ">>", ">>>", "<<<"):
                    width = wl
                else:
                    width = max(wl, wr)
                return ast.Num(
                    value=value & ((1 << width) - 1),
                    width=width,
                    line=expr.line,
                )
        return ast.Binary(op=expr.op, left=left, right=right, line=expr.line)
    if isinstance(expr, ast.Ternary):
        return ast.Ternary(
            cond=fold_params(expr.cond, env),
            if_true=fold_params(expr.if_true, env),
            if_false=fold_params(expr.if_false, env),
            line=expr.line,
        )
    if isinstance(expr, ast.Concat):
        return ast.Concat(parts=[fold_params(p, env) for p in expr.parts],
                          line=expr.line)
    if isinstance(expr, ast.Repl):
        return ast.Repl(
            count=fold_params(expr.count, env),
            value=fold_params(expr.value, env),
            line=expr.line,
        )
    if isinstance(expr, ast.Index):
        index = fold_params(expr.index, env)
        if expr.base in env and isinstance(index, ast.Num):
            return ast.Num(value=(env[expr.base] >> index.value) & 1,
                           line=expr.line)
        return ast.Index(base=expr.base, index=index, line=expr.line)
    if isinstance(expr, ast.Slice):
        msb = fold_params(expr.msb, env)
        lsb = fold_params(expr.lsb, env)
        if (expr.base in env and isinstance(msb, ast.Num)
                and isinstance(lsb, ast.Num)):
            # Bit-select on a parameter (e.g. DEPTH[LOGD:0]): fold to a
            # sized literal so width inference sees the select's width.
            width = msb.value - lsb.value + 1
            if width > 0:
                value = (env[expr.base] >> lsb.value) & ((1 << width) - 1)
                return ast.Num(value=value, width=width, line=expr.line)
        return ast.Slice(base=expr.base, msb=msb, lsb=lsb, line=expr.line)
    if isinstance(expr, ast.IndexedPart):
        start = fold_params(expr.start, env)
        width_e = fold_params(expr.width, env)
        if (expr.base in env and isinstance(start, ast.Num)
                and isinstance(width_e, ast.Num) and width_e.value > 0):
            width = width_e.value
            shift = (start.value if expr.ascending
                     else start.value - width + 1)
            value = (env[expr.base] >> max(shift, 0)) & ((1 << width) - 1)
            return ast.Num(value=value, width=width, line=expr.line)
        return ast.IndexedPart(
            base=expr.base,
            start=start,
            width=width_e,
            ascending=expr.ascending,
            line=expr.line,
        )
    if isinstance(expr, ast.SysCall):
        args = [fold_params(a, env) for a in expr.args]
        if expr.func == "$clog2" and all(isinstance(a, ast.Num) for a in args):
            return ast.Num(
                value=max(args[0].value - 1, 0).bit_length(),  # type: ignore[union-attr]
                line=expr.line,
            )
        return ast.SysCall(func=expr.func, args=args, line=expr.line)
    raise ElaborationError(f"cannot fold expression node {type(expr).__name__}",
                           getattr(expr, "line", 0))


def expr_reads(expr: ast.Expr) -> Set[str]:
    """Names of signals/memories read by ``expr`` (after folding)."""
    reads: Set[str] = set()
    _collect_reads(expr, reads)
    return reads


def _collect_reads(expr: ast.Expr, out: Set[str]) -> None:
    if isinstance(expr, ast.Num):
        return
    if isinstance(expr, ast.Id):
        out.add(expr.name)
    elif isinstance(expr, ast.Unary):
        _collect_reads(expr.operand, out)
    elif isinstance(expr, ast.Binary):
        _collect_reads(expr.left, out)
        _collect_reads(expr.right, out)
    elif isinstance(expr, ast.Ternary):
        _collect_reads(expr.cond, out)
        _collect_reads(expr.if_true, out)
        _collect_reads(expr.if_false, out)
    elif isinstance(expr, ast.Concat):
        for part in expr.parts:
            _collect_reads(part, out)
    elif isinstance(expr, ast.Repl):
        _collect_reads(expr.count, out)
        _collect_reads(expr.value, out)
    elif isinstance(expr, ast.Index):
        out.add(expr.base)
        _collect_reads(expr.index, out)
    elif isinstance(expr, ast.Slice):
        out.add(expr.base)
        _collect_reads(expr.msb, out)
        _collect_reads(expr.lsb, out)
    elif isinstance(expr, ast.IndexedPart):
        out.add(expr.base)
        _collect_reads(expr.start, out)
        _collect_reads(expr.width, out)
    elif isinstance(expr, ast.SysCall):
        for arg in expr.args:
            _collect_reads(arg, out)


def stmt_reads_writes(stmts: Iterable[ast.Stmt]) -> "tuple[Set[str], Set[str]]":
    """Signals read / written by a statement list (conservative)."""
    reads: Set[str] = set()
    writes: Set[str] = set()
    _walk_stmts(list(stmts), reads, writes)
    return reads, writes


def _walk_stmts(stmts: List[ast.Stmt], reads: Set[str], writes: Set[str]) -> None:
    for stmt in stmts:
        if isinstance(stmt, (ast.NonBlocking, ast.Blocking)):
            writes.add(stmt.target.name)
            _collect_reads(stmt.value, reads)
            if stmt.target.index is not None:
                _collect_reads(stmt.target.index, reads)
            if stmt.target.msb is not None:
                _collect_reads(stmt.target.msb, reads)
            if stmt.target.lsb is not None:
                _collect_reads(stmt.target.lsb, reads)
        elif isinstance(stmt, ast.If):
            _collect_reads(stmt.cond, reads)
            _walk_stmts(stmt.then_body, reads, writes)
            _walk_stmts(stmt.else_body, reads, writes)
        elif isinstance(stmt, ast.Case):
            _collect_reads(stmt.subject, reads)
            for labels, body in stmt.arms:
                for label in labels:
                    _collect_reads(label, reads)
                _walk_stmts(body, reads, writes)


def fold_stmts(stmts: List[ast.Stmt], env: Dict[str, int]) -> List[ast.Stmt]:
    """Parameter-fold every expression inside a statement list."""
    folded: List[ast.Stmt] = []
    for stmt in stmts:
        folded.append(_fold_stmt(stmt, env))
    return folded


def _fold_lvalue(lval: ast.LValue, env: Dict[str, int]) -> ast.LValue:
    return ast.LValue(
        name=lval.name,
        index=fold_params(lval.index, env) if lval.index is not None else None,
        msb=fold_params(lval.msb, env) if lval.msb is not None else None,
        lsb=fold_params(lval.lsb, env) if lval.lsb is not None else None,
        line=lval.line,
    )


def _fold_stmt(stmt: ast.Stmt, env: Dict[str, int]) -> ast.Stmt:
    if isinstance(stmt, ast.NonBlocking):
        return ast.NonBlocking(
            target=_fold_lvalue(stmt.target, env),
            value=fold_params(stmt.value, env),
            line=stmt.line,
        )
    if isinstance(stmt, ast.Blocking):
        return ast.Blocking(
            target=_fold_lvalue(stmt.target, env),
            value=fold_params(stmt.value, env),
            line=stmt.line,
        )
    if isinstance(stmt, ast.If):
        return ast.If(
            cond=fold_params(stmt.cond, env),
            then_body=fold_stmts(stmt.then_body, env),
            else_body=fold_stmts(stmt.else_body, env),
            line=stmt.line,
        )
    if isinstance(stmt, ast.Case):
        return ast.Case(
            subject=fold_params(stmt.subject, env),
            arms=[
                ([fold_params(lbl, env) for lbl in labels], fold_stmts(body, env))
                for labels, body in stmt.arms
            ],
            line=stmt.line,
        )
    raise ElaborationError(f"unknown statement {type(stmt).__name__}", stmt.line)
