"""Source-region splitting for LiveParser.

The paper (§III-C): "LiveParser divides the code into regions based on
the module structure, and the locations of pre-processor directives."
This module performs that division on raw (un-preprocessed) text so an
edit can be attributed to a specific module, or to a directive whose
change poisons everything below it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

MODULE_REGION = "module"
DIRECTIVE_REGION = "directive"
TOPLEVEL_REGION = "toplevel"  # stray text between modules (comments etc.)

_MODULE_RE = re.compile(r"^\s*module\s+([A-Za-z_]\w*)")
_ENDMODULE_RE = re.compile(r"\bendmodule\b")
_DIRECTIVE_RE = re.compile(r"^\s*`(define|undef|ifdef|ifndef|else|endif)\b")


@dataclass(frozen=True)
class SourceRegion:
    """A contiguous span of source lines with a single owner."""

    kind: str
    name: str  # module name, directive text, or "" for toplevel filler
    start_line: int  # 1-based, inclusive
    end_line: int  # 1-based, inclusive
    text: str

    def contains_line(self, line: int) -> bool:
        return self.start_line <= line <= self.end_line


def _strip_line_comment(line: str) -> str:
    idx = line.find("//")
    return line[:idx] if idx >= 0 else line


def split_regions(source: str) -> List[SourceRegion]:
    """Split ``source`` into module / directive / toplevel regions.

    The scanner is line-oriented and deliberately forgiving: it only
    needs to be right about *boundaries*; full syntax checking belongs
    to the parser.  Block comments spanning a ``module`` keyword are
    not supported by the region scanner (they are rare and the parser
    still handles them correctly).
    """
    lines = source.splitlines()
    regions: List[SourceRegion] = []
    i = 0
    pending_start: Optional[int] = None  # start of an accumulating toplevel run

    def flush_toplevel(upto: int) -> None:
        nonlocal pending_start
        if pending_start is None:
            return
        text = "\n".join(lines[pending_start - 1 : upto])
        if text.strip():
            regions.append(
                SourceRegion(TOPLEVEL_REGION, "", pending_start, upto, text)
            )
        pending_start = None

    while i < len(lines):
        raw = lines[i]
        stripped = _strip_line_comment(raw)
        directive = _DIRECTIVE_RE.match(stripped)
        if directive:
            flush_toplevel(i)
            regions.append(
                SourceRegion(
                    DIRECTIVE_REGION, stripped.strip(), i + 1, i + 1, raw
                )
            )
            i += 1
            continue
        module = _MODULE_RE.match(stripped)
        if module:
            flush_toplevel(i)
            start = i
            name = module.group(1)
            while i < len(lines):
                if _ENDMODULE_RE.search(_strip_line_comment(lines[i])):
                    break
                i += 1
            end = min(i, len(lines) - 1)
            text = "\n".join(lines[start : end + 1])
            regions.append(SourceRegion(MODULE_REGION, name, start + 1, end + 1, text))
            i = end + 1
            continue
        if pending_start is None:
            pending_start = i + 1
        i += 1

    flush_toplevel(len(lines))
    return regions


def module_regions(source: str) -> dict:
    """Map module name -> :class:`SourceRegion` for ``source``."""
    return {
        region.name: region
        for region in split_regions(source)
        if region.kind == MODULE_REGION
    }


def region_at_line(regions: List[SourceRegion], line: int) -> Optional[SourceRegion]:
    for region in regions:
        if region.contains_line(line):
            return region
    return None
