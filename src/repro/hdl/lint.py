"""Design lint: width and quality diagnostics over elaborated IR.

The elaborator is deliberately permissive where Verilog is (implicit
truncation and zero-extension are legal and common), but silent width
mismatches are also the classic source of the bugs LiveSim exists to
debug.  The linter reports them — plus unused signals and constant
conditions — without rejecting the design.

Usage::

    from repro.hdl.lint import lint_netlist
    for diag in lint_netlist(netlist):
        print(diag)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..ir.netlist import ModuleIR, Netlist
from . import ast_nodes as ast
from .consteval import stmt_reads_writes

TRUNCATION = "truncation"
EXTENSION = "extension"
UNUSED = "unused-signal"
CONSTANT_CONDITION = "constant-condition"


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding."""

    kind: str
    module: str
    message: str
    line: int = 0

    def __str__(self) -> str:
        where = f"{self.module}:{self.line}" if self.line else self.module
        return f"[{self.kind}] {where}: {self.message}"


class _WidthOracle:
    """Width inference over folded expressions (mirrors codegen rules)."""

    def __init__(self, ir: ModuleIR):
        self._ir = ir

    def width(self, expr: ast.Expr) -> Optional[int]:
        if isinstance(expr, ast.Num):
            return expr.width  # None for bare decimals: context-sized
        if isinstance(expr, ast.Id):
            sig = self._ir.signals.get(expr.name)
            return sig.width if sig else None
        if isinstance(expr, ast.Unary):
            if expr.op in ("!", "&", "|", "^"):
                return 1
            return self.width(expr.operand)
        if isinstance(expr, ast.Binary):
            if expr.op in ("==", "!=", "===", "!==", "<", "<=", ">", ">=",
                           "&&", "||"):
                return 1
            if expr.op in ("<<", ">>", ">>>", "<<<"):
                return self.width(expr.left)
            left = self.width(expr.left)
            right = self.width(expr.right)
            if left is None or right is None:
                return left if right is None else right
            return max(left, right)
        if isinstance(expr, ast.Ternary):
            left = self.width(expr.if_true)
            right = self.width(expr.if_false)
            if left is None or right is None:
                return left if right is None else right
            return max(left, right)
        if isinstance(expr, ast.Concat):
            widths = [self.width(p) for p in expr.parts]
            if any(w is None for w in widths):
                return None
            return sum(widths)  # type: ignore[arg-type]
        if isinstance(expr, ast.Repl):
            if isinstance(expr.count, ast.Num):
                inner = self.width(expr.value)
                if inner is not None:
                    return expr.count.value * inner
            return None
        if isinstance(expr, ast.Index):
            if expr.base in self._ir.memories:
                return self._ir.memories[expr.base].width
            return 1
        if isinstance(expr, ast.Slice):
            if isinstance(expr.msb, ast.Num) and isinstance(expr.lsb, ast.Num):
                return expr.msb.value - expr.lsb.value + 1
            return None
        if isinstance(expr, ast.IndexedPart):
            if isinstance(expr.width, ast.Num):
                return expr.width.value
            return None
        if isinstance(expr, ast.SysCall):
            if expr.func in ("$signed", "$unsigned") and expr.args:
                return self.width(expr.args[0])
            return None
        return None


def _lint_assign_width(
    ir: ModuleIR,
    oracle: _WidthOracle,
    target_name: str,
    value: ast.Expr,
    line: int,
    out: List[Diagnostic],
) -> None:
    target = ir.signals.get(target_name)
    if target is None:
        return
    width = oracle.width(value)
    if width is None:
        return
    if width > target.width:
        out.append(Diagnostic(
            TRUNCATION, ir.name,
            f"assignment to {target_name!r} truncates a {width}-bit value "
            f"to {target.width} bits",
            line,
        ))
    elif width < target.width and not isinstance(value, ast.Num):
        out.append(Diagnostic(
            EXTENSION, ir.name,
            f"assignment to {target_name!r} zero-extends a {width}-bit "
            f"value to {target.width} bits",
            line,
        ))


def _lint_stmts(
    ir: ModuleIR,
    oracle: _WidthOracle,
    stmts: List[ast.Stmt],
    out: List[Diagnostic],
) -> None:
    for stmt in stmts:
        if isinstance(stmt, (ast.NonBlocking, ast.Blocking)):
            target = stmt.target
            if (target.index is None and target.msb is None
                    and target.name in ir.signals):
                _lint_assign_width(
                    ir, oracle, target.name, stmt.value, stmt.line, out
                )
        elif isinstance(stmt, ast.If):
            if isinstance(stmt.cond, ast.Num):
                # Flattened begin/end blocks come through as if(1) with
                # no else: those are synthetic, not user constants.
                if not (stmt.cond.value == 1 and not stmt.else_body):
                    out.append(Diagnostic(
                        CONSTANT_CONDITION, ir.name,
                        f"if-condition is the constant {stmt.cond.value}",
                        stmt.line,
                    ))
            _lint_stmts(ir, oracle, stmt.then_body, out)
            _lint_stmts(ir, oracle, stmt.else_body, out)
        elif isinstance(stmt, ast.Case):
            for _, body in stmt.arms:
                _lint_stmts(ir, oracle, body, out)


def _collect_reads(ir: ModuleIR) -> Set[str]:
    reads: Set[str] = set()
    for assign in ir.comb_assigns:
        reads |= set(assign.reads)
    for block in ir.comb_blocks:
        reads |= set(block.reads) | set(block.defines)
    for inst in ir.instances:
        reads |= set(inst.reads)
    for seq in ir.seq_blocks:
        r, w = stmt_reads_writes(seq.body)
        reads |= r | w
    reads |= set(ir.outputs)
    return reads


def lint_module(ir: ModuleIR) -> List[Diagnostic]:
    """Lint one elaborated module specialization."""
    out: List[Diagnostic] = []
    oracle = _WidthOracle(ir)

    for assign in ir.comb_assigns:
        _lint_assign_width(
            ir, oracle, assign.target.name, assign.value, assign.line, out
        )
        if isinstance(assign.value, ast.Ternary) and isinstance(
            assign.value.cond, ast.Num
        ):
            out.append(Diagnostic(
                CONSTANT_CONDITION, ir.name,
                f"mux select for {assign.target.name!r} is the constant "
                f"{assign.value.cond.value}",
                assign.line,
            ))
    for block in ir.comb_blocks:
        _lint_stmts(ir, oracle, block.body, out)
    for seq in ir.seq_blocks:
        _lint_stmts(ir, oracle, seq.body, out)

    used = _collect_reads(ir)
    for name, sig in ir.signals.items():
        if sig.kind in ("input", "output"):
            continue
        if name in ir.clock_names:
            continue
        if name not in used:
            out.append(Diagnostic(
                UNUSED, ir.name,
                f"signal {name!r} is never read",
                sig.line,
            ))
    return out


def lint_netlist(
    netlist: Netlist,
    kinds: Optional[Set[str]] = None,
) -> List[Diagnostic]:
    """Lint every unique specialization in a netlist.

    ``kinds`` filters the reported diagnostic kinds (default: all).
    """
    out: List[Diagnostic] = []
    for ir in netlist.modules.values():
        out.extend(lint_module(ir))
    if kinds is not None:
        out = [d for d in out if d.kind in kinds]
    return out
