"""Deprecated shim over :mod:`repro.analyze`.

The four original lint checks (truncation, extension, unused-signal,
constant-condition) now live in :mod:`repro.analyze.checks` alongside
the semantic analyses (combinational loops, multiple drivers, latch
inference, scheduling races, dead branches).  This module keeps the
old import surface working::

    from repro.hdl.lint import lint_netlist
    for diag in lint_netlist(netlist):
        print(diag)

New code should use :class:`repro.analyze.Analyzer` directly — it adds
severities, per-specialization caching, and the hot-reload gate.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Set

from ..analyze.checks import (
    CONSTANT_CONDITION,
    EXTENSION,
    TRUNCATION,
    UNUSED,
    CheckContext,
    ConstantConditionCheck,
    UnusedSignalCheck,
    WidthCheck,
)
from ..analyze.diagnostics import Diagnostic, sort_diagnostics
from ..ir.netlist import ModuleIR, Netlist

__all__ = [
    "CONSTANT_CONDITION",
    "EXTENSION",
    "TRUNCATION",
    "UNUSED",
    "Diagnostic",
    "lint_module",
    "lint_netlist",
]

# The historical check set, in the historical report order.
_LEGACY_CHECKS = (WidthCheck, ConstantConditionCheck, UnusedSignalCheck)
_LEGACY_KINDS = {TRUNCATION, EXTENSION, UNUSED, CONSTANT_CONDITION}

_DEPRECATION_MESSAGE = (
    "repro.hdl.lint is deprecated; use repro.analyze.Analyzer instead "
    "(it adds severities, per-specialization caching, and the "
    "hot-reload gate)"
)

warnings.warn(_DEPRECATION_MESSAGE, DeprecationWarning, stacklevel=2)


def lint_module(ir: ModuleIR, netlist: Optional[Netlist] = None) -> List[Diagnostic]:
    """Lint one elaborated module specialization (legacy checks only)."""
    warnings.warn(_DEPRECATION_MESSAGE, DeprecationWarning, stacklevel=2)
    fallback = Netlist(top=ir.key, modules={ir.key: ir})
    ctx = CheckContext(netlist if netlist is not None else fallback)
    out: List[Diagnostic] = []
    for check_cls in _LEGACY_CHECKS:
        out.extend(check_cls().run(ir, ctx))
    return sort_diagnostics(out)


def lint_netlist(
    netlist: Netlist,
    kinds: Optional[Set[str]] = None,
) -> List[Diagnostic]:
    """Lint every unique specialization in a netlist.

    ``kinds`` filters the reported diagnostic kinds (default: the four
    legacy kinds).  Deprecated: prefer
    ``repro.analyze.Analyzer().analyze_netlist(netlist)``.
    """
    warnings.warn(_DEPRECATION_MESSAGE, DeprecationWarning, stacklevel=2)
    out: List[Diagnostic] = []
    for ir in netlist.modules.values():
        out.extend(lint_module(ir, netlist))
    wanted = _LEGACY_KINDS if kinds is None else kinds
    return [d for d in out if d.kind in wanted]
