"""Recursive-descent parser for LHDL.

Supported grammar (ANSI-style ports, Verilog-2001 flavour)::

    module NAME #(parameter P = expr, ...) (input [msb:lsb] a, output reg b, ...);
        parameter / localparam declarations
        wire / reg declarations (incl. memories:  reg [63:0] mem [0:4095];)
        assign lvalue = expr;
        always @(posedge clk) stmt     -- sequential, non-blocking <=
        always @(*) stmt               -- combinational, blocking =
        MODULE #(.P(expr)) inst (.port(expr), ...);
    endmodule

Expressions: the usual Verilog operator set with standard precedence,
concatenation ``{a, b}``, replication ``{N{a}}``, bit/part/indexed-part
selects, ``$signed`` / ``$unsigned`` / ``$clog2``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import ast_nodes as ast
from .errors import ParseError
from .lexer import tokenize
from .preprocessor import preprocess
from .tokens import EOF, IDENT, NUMBER, OP, SIZED_NUMBER, SYSCALL, Token

# Binary operator precedence: higher binds tighter.
_BINARY_PRECEDENCE: Dict[str, int] = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_UNARY_OPS = frozenset({"!", "~", "-", "+", "&", "|", "^"})
_SYSCALLS = frozenset({"$signed", "$unsigned", "$clog2"})


class Parser:
    """One-token-lookahead parser over a token list."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        i = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[i]

    def _next(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != EOF:
            self._pos += 1
        return tok

    def _error(self, message: str, tok: Optional[Token] = None) -> ParseError:
        tok = tok or self._peek()
        return ParseError(f"{message} (got {tok.kind} {tok.value!r})", tok.line, tok.col)

    def _expect_punct(self, text: str) -> Token:
        tok = self._next()
        if not tok.is_punct(text):
            raise self._error(f"expected {text!r}", tok)
        return tok

    def _expect_op(self, text: str) -> Token:
        tok = self._next()
        if not tok.is_op(text):
            raise self._error(f"expected {text!r}", tok)
        return tok

    def _expect_keyword(self, text: str) -> Token:
        tok = self._next()
        if not tok.is_keyword(text):
            raise self._error(f"expected keyword {text!r}", tok)
        return tok

    def _expect_ident(self) -> Token:
        tok = self._next()
        if tok.kind != IDENT:
            raise self._error("expected identifier", tok)
        return tok

    def _accept_punct(self, text: str) -> bool:
        if self._peek().is_punct(text):
            self._next()
            return True
        return False

    def _accept_op(self, text: str) -> bool:
        if self._peek().is_op(text):
            self._next()
            return True
        return False

    def _accept_keyword(self, text: str) -> bool:
        if self._peek().is_keyword(text):
            self._next()
            return True
        return False

    # -- top level ---------------------------------------------------------

    def parse_design(self) -> ast.Design:
        design = ast.Design()
        while self._peek().kind != EOF:
            module = self.parse_module()
            if module.name in design.modules:
                raise ParseError(
                    f"duplicate module {module.name!r}", module.line, 1
                )
            design.modules[module.name] = module
        return design

    def parse_module(self) -> ast.Module:
        start = self._expect_keyword("module")
        name = self._expect_ident()
        module = ast.Module(name=name.value, line=start.line)
        if self._accept_punct("#"):
            self._expect_punct("(")
            module.params.extend(self._parse_header_params())
            self._expect_punct(")")
        self._expect_punct("(")
        if not self._peek().is_punct(")"):
            module.ports.extend(self._parse_port_list())
        self._expect_punct(")")
        self._expect_punct(";")
        while not self._peek().is_keyword("endmodule"):
            if self._peek().kind == EOF:
                raise self._error(f"unterminated module {module.name!r}")
            self._parse_module_item(module)
        end = self._next()  # endmodule
        module.end_line = end.line
        return module

    def _parse_header_params(self) -> List[ast.Param]:
        params: List[ast.Param] = []
        self._expect_keyword("parameter")
        while True:
            self._accept_keyword("parameter")  # optional on later entries
            name = self._expect_ident()
            self._expect_punct("=")
            default = self.parse_expr()
            params.append(ast.Param(name.value, default, line=name.line))
            if not self._accept_punct(","):
                return params

    def _parse_range(self) -> Tuple[Optional[ast.Expr], Optional[ast.Expr]]:
        if not self._accept_punct("["):
            return None, None
        msb = self.parse_expr()
        self._expect_punct(":")
        lsb = self.parse_expr()
        self._expect_punct("]")
        return msb, lsb

    def _parse_port_list(self) -> List[ast.Port]:
        ports: List[ast.Port] = []
        direction = None
        is_reg = False
        msb: Optional[ast.Expr] = None
        lsb: Optional[ast.Expr] = None
        while True:
            tok = self._peek()
            if tok.is_keyword("input") or tok.is_keyword("output"):
                direction = self._next().value
                is_reg = self._accept_keyword("reg")
                msb, lsb = self._parse_range()
            elif direction is None:
                raise self._error("expected 'input' or 'output'")
            name = self._expect_ident()
            ports.append(
                ast.Port(direction, name.value, msb, lsb, is_reg=is_reg, line=name.line)
            )
            if not self._accept_punct(","):
                return ports

    # -- module items ------------------------------------------------------

    def _parse_module_item(self, module: ast.Module) -> None:
        tok = self._peek()
        if tok.is_keyword("parameter") or tok.is_keyword("localparam"):
            self._parse_param_item(module)
        elif tok.is_keyword("wire") or tok.is_keyword("reg"):
            self._parse_net_decl(module)
        elif tok.is_keyword("assign"):
            self._parse_cont_assign(module)
        elif tok.is_keyword("always"):
            module.always_blocks.append(self._parse_always())
        elif tok.kind == IDENT:
            module.instances.append(self._parse_instance())
        else:
            raise self._error("expected module item")

    def _parse_param_item(self, module: ast.Module) -> None:
        kw = self._next()
        is_local = kw.value == "localparam"
        while True:
            name = self._expect_ident()
            self._expect_punct("=")
            default = self.parse_expr()
            module.params.append(
                ast.Param(name.value, default, is_local=is_local, line=name.line)
            )
            if self._accept_punct(";"):
                return
            self._expect_punct(",")

    def _parse_net_decl(self, module: ast.Module) -> None:
        kw = self._next()
        msb, lsb = self._parse_range()
        while True:
            name = self._expect_ident()
            depth_msb, depth_lsb = self._parse_range()
            module.nets.append(
                ast.Net(
                    kind=kw.value,
                    name=name.value,
                    msb=msb,
                    lsb=lsb,
                    depth_msb=depth_msb,
                    depth_lsb=depth_lsb,
                    line=name.line,
                )
            )
            if self._accept_punct(";"):
                return
            self._expect_punct(",")

    def _parse_cont_assign(self, module: ast.Module) -> None:
        kw = self._next()
        while True:
            target = self._parse_lvalue()
            self._expect_punct("=")
            value = self.parse_expr()
            module.assigns.append(ast.ContAssign(target, value, line=kw.line))
            if self._accept_punct(";"):
                return
            self._expect_punct(",")

    def _parse_always(self) -> ast.Always:
        kw = self._expect_keyword("always")
        self._expect_punct("@")
        self._expect_punct("(")
        if self._accept_op("*"):
            block = ast.Always(kind="comb", line=kw.line)
        elif self._peek().is_keyword("posedge"):
            self._next()
            clock = self._expect_ident()
            block = ast.Always(kind="seq", clock=clock.value, line=kw.line)
        else:
            raise self._error("expected 'posedge <clk>' or '*'")
        self._expect_punct(")")
        block.body = self._parse_stmt_as_list(block.kind)
        return block

    def _parse_stmt_as_list(self, kind: str) -> List[ast.Stmt]:
        if self._peek().is_keyword("begin"):
            return self._parse_block(kind)
        return [self._parse_stmt(kind)]

    def _parse_block(self, kind: str) -> List[ast.Stmt]:
        self._expect_keyword("begin")
        stmts: List[ast.Stmt] = []
        while not self._peek().is_keyword("end"):
            if self._peek().kind == EOF:
                raise self._error("unterminated begin block")
            stmts.append(self._parse_stmt(kind))
        self._next()  # end
        return stmts

    def _parse_stmt(self, kind: str) -> ast.Stmt:
        tok = self._peek()
        if tok.is_keyword("begin"):
            # An anonymous nested block folds into an If for simplicity:
            # represent as If(cond=1) would be odd, so just flatten inline.
            stmts = self._parse_block(kind)
            block = ast.If(line=tok.line, cond=ast.Num(value=1, line=tok.line))
            block.then_body = stmts
            return block
        if tok.is_keyword("if"):
            return self._parse_if(kind)
        if tok.is_keyword("case"):
            return self._parse_case(kind)
        return self._parse_assignment_stmt(kind)

    def _parse_if(self, kind: str) -> ast.If:
        kw = self._expect_keyword("if")
        self._expect_punct("(")
        cond = self.parse_expr()
        self._expect_punct(")")
        node = ast.If(cond=cond, line=kw.line)
        node.then_body = self._parse_stmt_as_list(kind)
        if self._accept_keyword("else"):
            node.else_body = self._parse_stmt_as_list(kind)
        return node

    def _parse_case(self, kind: str) -> ast.Case:
        kw = self._expect_keyword("case")
        self._expect_punct("(")
        subject = self.parse_expr()
        self._expect_punct(")")
        node = ast.Case(subject=subject, line=kw.line)
        while not self._peek().is_keyword("endcase"):
            if self._peek().kind == EOF:
                raise self._error("unterminated case")
            labels: List[ast.Expr] = []
            if self._accept_keyword("default"):
                pass  # empty labels == default arm
            else:
                labels.append(self.parse_expr())
                while self._accept_punct(","):
                    labels.append(self.parse_expr())
            self._expect_punct(":")
            body = self._parse_stmt_as_list(kind)
            node.arms.append((labels, body))
        self._next()  # endcase
        return node

    def _parse_assignment_stmt(self, kind: str) -> ast.Stmt:
        target = self._parse_lvalue()
        tok = self._next()
        if tok.is_op("<="):
            if kind != "seq":
                raise ParseError(
                    "non-blocking '<=' only allowed in always @(posedge)",
                    tok.line, tok.col,
                )
            value = self.parse_expr()
            self._expect_punct(";")
            return ast.NonBlocking(target=target, value=value, line=target.line)
        if tok.is_punct("="):
            if kind != "comb":
                raise ParseError(
                    "blocking '=' only allowed in always @(*)", tok.line, tok.col
                )
            value = self.parse_expr()
            self._expect_punct(";")
            return ast.Blocking(target=target, value=value, line=target.line)
        raise self._error("expected '<=' or '='", tok)

    def _parse_lvalue(self) -> ast.LValue:
        name = self._expect_ident()
        lval = ast.LValue(name=name.value, line=name.line)
        if self._accept_punct("["):
            first = self.parse_expr()
            if self._accept_punct(":"):
                lval.msb = first
                lval.lsb = self.parse_expr()
            else:
                lval.index = first
            self._expect_punct("]")
        return lval

    def _parse_instance(self) -> ast.Instance:
        module_name = self._expect_ident()
        inst = ast.Instance(module=module_name.value, name="", line=module_name.line)
        if self._accept_punct("#"):
            self._expect_punct("(")
            while True:
                self._expect_punct(".")
                pname = self._expect_ident()
                self._expect_punct("(")
                inst.param_overrides[pname.value] = self.parse_expr()
                self._expect_punct(")")
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
        inst_name = self._expect_ident()
        inst.name = inst_name.value
        self._expect_punct("(")
        if not self._peek().is_punct(")"):
            while True:
                self._expect_punct(".")
                pname = self._expect_ident()
                self._expect_punct("(")
                if self._peek().is_punct(")"):
                    conn: Optional[ast.Expr] = None  # unconnected port
                else:
                    conn = self.parse_expr()
                self._expect_punct(")")
                if conn is not None:
                    inst.connections[pname.value] = conn
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        self._expect_punct(";")
        return inst

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._accept_op("?"):
            if_true = self._parse_ternary()
            self._expect_punct(":")
            if_false = self._parse_ternary()
            return ast.Ternary(
                cond=cond, if_true=if_true, if_false=if_false, line=cond.line
            )
        return cond

    def _parse_binary(self, min_prec: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            if tok.kind != OP:
                return left
            prec = _BINARY_PRECEDENCE.get(tok.value)
            if prec is None or prec < min_prec:
                return left
            self._next()
            right = self._parse_binary(prec + 1)
            left = ast.Binary(op=tok.value, left=left, right=right, line=tok.line)

    def _parse_unary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind == OP and tok.value in _UNARY_OPS:
            self._next()
            operand = self._parse_unary()
            if tok.value == "+":
                return operand
            return ast.Unary(op=tok.value, operand=operand, line=tok.line)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self._next()
        if tok.kind == NUMBER:
            return ast.Num(value=tok.num_value or 0, line=tok.line)
        if tok.kind == SIZED_NUMBER:
            return ast.Num(value=tok.num_value or 0, width=tok.num_width, line=tok.line)
        if tok.kind == SYSCALL:
            if tok.value not in _SYSCALLS:
                raise self._error(f"unsupported system function {tok.value}", tok)
            self._expect_punct("(")
            args = [self.parse_expr()]
            while self._accept_punct(","):
                args.append(self.parse_expr())
            self._expect_punct(")")
            return ast.SysCall(func=tok.value, args=args, line=tok.line)
        if tok.is_punct("("):
            inner = self.parse_expr()
            self._expect_punct(")")
            return inner
        if tok.is_punct("{"):
            return self._parse_concat_or_repl(tok)
        if tok.kind == IDENT:
            return self._parse_id_suffix(tok)
        raise self._error("expected expression", tok)

    def _parse_concat_or_repl(self, open_tok: Token) -> ast.Expr:
        first = self.parse_expr()
        if self._peek().is_punct("{"):
            self._next()
            value_parts = [self.parse_expr()]
            while self._accept_punct(","):
                value_parts.append(self.parse_expr())
            self._expect_punct("}")
            self._expect_punct("}")
            value: ast.Expr
            if len(value_parts) == 1:
                value = value_parts[0]
            else:
                value = ast.Concat(parts=value_parts, line=open_tok.line)
            return ast.Repl(count=first, value=value, line=open_tok.line)
        parts = [first]
        while self._accept_punct(","):
            parts.append(self.parse_expr())
        self._expect_punct("}")
        if len(parts) == 1:
            return parts[0]
        return ast.Concat(parts=parts, line=open_tok.line)

    def _parse_id_suffix(self, tok: Token) -> ast.Expr:
        if not self._accept_punct("["):
            return ast.Id(name=tok.value, line=tok.line)
        first = self.parse_expr()
        nxt = self._peek()
        if nxt.is_punct(":"):
            self._next()
            lsb = self.parse_expr()
            self._expect_punct("]")
            return ast.Slice(base=tok.value, msb=first, lsb=lsb, line=tok.line)
        if nxt.is_op("+:") or nxt.is_op("-:"):
            ascending = nxt.value == "+:"
            self._next()
            width = self.parse_expr()
            self._expect_punct("]")
            return ast.IndexedPart(
                base=tok.value, start=first, width=width,
                ascending=ascending, line=tok.line,
            )
        self._expect_punct("]")
        return ast.Index(base=tok.value, index=first, line=tok.line)


def parse(source: str, predefines: Optional[Dict[str, str]] = None) -> ast.Design:
    """Preprocess + tokenize + parse ``source`` into a :class:`Design`."""
    pp = preprocess(source, predefines)
    return Parser(tokenize(pp.text)).parse_design()


def parse_expr(source: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and the REPL)."""
    return Parser(tokenize(source)).parse_expr()
