"""Exception hierarchy for the HDL frontend and downstream compilers."""

from __future__ import annotations


class HDLError(Exception):
    """Base class for all errors raised by the LHDL toolchain."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        self.line = line
        self.col = col
        if line:
            message = f"line {line}:{col}: {message}"
        super().__init__(message)


class LexError(HDLError):
    """Invalid character sequence in the source text."""


class ParseError(HDLError):
    """The token stream does not match the LHDL grammar."""


class PreprocessorError(HDLError):
    """Malformed or unbalanced preprocessor directives."""


class ElaborationError(HDLError):
    """Hierarchy or parameter resolution failure."""


class WidthError(ElaborationError):
    """Width inference failed or widths are inconsistent."""


class CodegenError(HDLError):
    """The code generator met an unsupported construct."""


class SimulationError(Exception):
    """Runtime failure inside the simulation kernel."""


class ConvergenceError(SimulationError):
    """Combinational logic failed to settle (probable comb loop)."""


class CompileBudgetExceeded(Exception):
    """A compiler gave up because its wall-clock budget ran out.

    Mirrors the paper's 24-hour Verilator timeout for the 16x16 PGAS.
    """

    def __init__(self, message: str, elapsed: float, budget: float):
        super().__init__(message)
        self.elapsed = elapsed
        self.budget = budget
