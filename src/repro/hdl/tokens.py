"""Token definitions for the LHDL lexer.

LHDL is the Verilog subset understood by this reproduction (see
``repro.hdl.parser`` for the grammar).  Tokens carry enough position
information for LiveParser to map behavioural changes back to source
regions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

# Token kinds.
KEYWORD = "KEYWORD"
IDENT = "IDENT"
NUMBER = "NUMBER"  # plain decimal literal
SIZED_NUMBER = "SIZED_NUMBER"  # e.g. 8'hFF
OP = "OP"
PUNCT = "PUNCT"
SYSCALL = "SYSCALL"  # $signed, $unsigned, ...
MACRO = "MACRO"  # `NAME (only in raw, un-preprocessed text)
EOF = "EOF"

KEYWORDS = frozenset(
    {
        "module",
        "endmodule",
        "parameter",
        "localparam",
        "input",
        "output",
        "wire",
        "reg",
        "assign",
        "always",
        "posedge",
        "negedge",
        "begin",
        "end",
        "if",
        "else",
        "case",
        "endcase",
        "default",
    }
)

# Multi-character operators, longest first so the lexer can do greedy
# matching by scanning this tuple in order.
MULTI_CHAR_OPS = (
    ">>>",
    "<<<",
    "===",
    "!==",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "<<",
    ">>",
    "+:",
    "-:",
)

SINGLE_CHAR_OPS = frozenset("+-*/%&|^~!<>?")
PUNCTUATION = frozenset("()[]{}:;,.#=@")


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    ``value`` is the raw text for identifiers/operators; for sized
    numbers it is the canonical ``(width, value)`` pair encoded by the
    lexer in ``num_width``/``num_value``.
    """

    kind: str
    value: str
    line: int
    col: int
    num_value: Optional[int] = None
    num_width: Optional[int] = None

    def is_op(self, text: str) -> bool:
        return self.kind == OP and self.value == text

    def is_punct(self, text: str) -> bool:
        return self.kind == PUNCT and self.value == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == KEYWORD and self.value == text

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind}({self.value!r})@{self.line}:{self.col}"
