"""Elaboration: AST -> netlist IR.

Elaboration resolves the module hierarchy and parameters, producing one
:class:`~repro.ir.netlist.ModuleIR` per *specialization* (module +
parameter set).  Specializations are memoized, so a 16x16 PGAS mesh with
256 identical cores elaborates the core's modules exactly once — this
sharing is what LiveSim's compile-once/instantiate-many model (paper
Fig. 4d) is built on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..ir.dataflow import compute_output_deps
from ..ir.netlist import (
    CombAssignIR,
    CombBlockIR,
    InstanceIR,
    MemoryIR,
    ModuleIR,
    Netlist,
    SeqBlockIR,
    SignalIR,
    spec_key,
)
from ..ir.schedule import schedule_module
from . import ast_nodes as ast
from .consteval import (
    eval_const,
    expr_reads,
    fold_params,
    fold_stmts,
    stmt_reads_writes,
)
from .errors import ElaborationError, WidthError


class Elaborator:
    """Drives hierarchy + parameter resolution over a parsed design."""

    def __init__(self, design: ast.Design):
        self._design = design
        self._specs: Dict[str, ModuleIR] = {}
        self._in_progress: Set[str] = set()

    def elaborate(
        self, top: str, params: Optional[Dict[str, int]] = None
    ) -> Netlist:
        if top not in self._design.modules:
            raise ElaborationError(f"top module {top!r} not found")
        top_ir = self._specialize(top, dict(params or {}))
        return Netlist(top=top_ir.key, modules=dict(self._specs))

    # -- specialization ------------------------------------------------------

    def _specialize(self, name: str, overrides: Dict[str, int]) -> ModuleIR:
        module = self._design.modules.get(name)
        if module is None:
            raise ElaborationError(f"module {name!r} not found")
        env = self._resolve_params(module, overrides)
        public = {
            p.name: env[p.name] for p in module.params if not p.is_local
        }
        # Key on the full resolved public parameter set so two override
        # dicts resolving to the same values share one specialization.
        key = spec_key(name, public)
        if key in self._specs:
            return self._specs[key]
        if key in self._in_progress:
            raise ElaborationError(f"recursive instantiation of {name!r}", module.line)
        self._in_progress.add(key)
        try:
            ir = self._build_module_ir(module, env, key)
        finally:
            self._in_progress.discard(key)
        self._specs[key] = ir
        return ir

    def _resolve_params(
        self, module: ast.Module, overrides: Dict[str, int]
    ) -> Dict[str, int]:
        env: Dict[str, int] = {}
        declared = {p.name for p in module.params}
        for extra in overrides:
            if extra not in declared:
                raise ElaborationError(
                    f"module {module.name!r} has no parameter {extra!r}", module.line
                )
        for param in module.params:
            if param.is_local and param.name in overrides:
                raise ElaborationError(
                    f"cannot override localparam {param.name!r}", param.line
                )
            if not param.is_local and param.name in overrides:
                env[param.name] = overrides[param.name]
            else:
                env[param.name] = eval_const(param.default, env)
        return env

    # -- per-module IR construction -------------------------------------------

    def _build_module_ir(
        self, module: ast.Module, env: Dict[str, int], key: str
    ) -> ModuleIR:
        ir = ModuleIR(name=module.name, key=key, params=dict(env))
        self._declare_signals(module, env, ir)
        self._lower_instances(module, env, ir)
        self._lower_assigns(module, env, ir)
        self._lower_always(module, env, ir)
        self._assign_reg_slots(module, ir)
        self._check_drivers(module, ir)
        schedule_module(ir)
        ir.output_deps = compute_output_deps(
            ir, lambda key: self._specs[key]
        )
        return ir

    def _signal_width(
        self,
        msb: Optional[ast.Expr],
        lsb: Optional[ast.Expr],
        env: Dict[str, int],
        line: int,
    ) -> int:
        if msb is None:
            return 1
        msb_val = eval_const(msb, env)
        lsb_val = eval_const(lsb, env) if lsb is not None else 0
        if lsb_val != 0:
            raise WidthError("only [msb:0] ranges are supported", line)
        if msb_val < 0:
            raise WidthError("negative msb", line)
        return msb_val + 1

    def _declare_signals(
        self, module: ast.Module, env: Dict[str, int], ir: ModuleIR
    ) -> None:
        for port in module.ports:
            if port.name in ir.signals:
                raise ElaborationError(f"duplicate port {port.name!r}", port.line)
            width = self._signal_width(port.msb, port.lsb, env, port.line)
            ir.signals[port.name] = SignalIR(
                name=port.name, width=width, kind=port.direction, line=port.line
            )
            if port.direction == "input":
                ir.inputs.append(port.name)
            else:
                ir.outputs.append(port.name)
        for net in module.nets:
            if net.is_memory:
                if net.name in ir.memories or net.name in ir.signals:
                    raise ElaborationError(f"duplicate name {net.name!r}", net.line)
                width = self._signal_width(net.msb, net.lsb, env, net.line)
                lo = eval_const(net.depth_msb, env)  # written [0:D-1]
                hi = eval_const(net.depth_lsb, env) if net.depth_lsb is not None else lo
                depth = abs(hi - lo) + 1
                ir.memories[net.name] = MemoryIR(
                    name=net.name, width=width, depth=depth,
                    mem_index=len(ir.memories), line=net.line,
                )
                continue
            if net.name in ir.signals:
                # "output reg x" style redeclaration: tolerate an exact
                # redeclaration of a port as reg/wire.
                existing = ir.signals[net.name]
                width = self._signal_width(net.msb, net.lsb, env, net.line)
                if width != existing.width:
                    raise WidthError(
                        f"redeclaration of {net.name!r} with different width",
                        net.line,
                    )
                continue
            if net.name in ir.memories:
                raise ElaborationError(f"duplicate name {net.name!r}", net.line)
            width = self._signal_width(net.msb, net.lsb, env, net.line)
            ir.signals[net.name] = SignalIR(
                name=net.name, width=width, kind="wire", line=net.line
            )

    def _lower_instances(
        self, module: ast.Module, env: Dict[str, int], ir: ModuleIR
    ) -> None:
        seen_names: Set[str] = set()
        for inst in module.instances:
            if inst.name in seen_names:
                raise ElaborationError(
                    f"duplicate instance name {inst.name!r}", inst.line
                )
            seen_names.add(inst.name)
            child_overrides = {
                name: eval_const(expr, env)
                for name, expr in inst.param_overrides.items()
            }
            child = self._specialize(inst.module, child_overrides)
            inst_ir = InstanceIR(name=inst.name, child_key=child.key, line=inst.line)
            for port_name, conn in inst.connections.items():
                child_sig = child.signals.get(port_name)
                if child_sig is None or child_sig.kind not in ("input", "output"):
                    raise ElaborationError(
                        f"module {inst.module!r} has no port {port_name!r}",
                        inst.line,
                    )
                if child_sig.kind == "input":
                    inst_ir.input_conns[port_name] = fold_params(conn, env)
                else:
                    if not isinstance(conn, ast.Id):
                        raise ElaborationError(
                            f"output port {port_name!r} of {inst.name!r} must "
                            "connect to a plain signal",
                            inst.line,
                        )
                    target = ir.signals.get(conn.name)
                    if target is None:
                        raise ElaborationError(
                            f"unknown signal {conn.name!r} in connection",
                            inst.line,
                        )
                    if target.width != child_sig.width:
                        raise WidthError(
                            f"width mismatch connecting {inst.name}.{port_name} "
                            f"({child_sig.width}) to {conn.name} ({target.width})",
                            inst.line,
                        )
                    inst_ir.output_conns[port_name] = conn.name
            missing = [
                p for p in child.inputs if p not in inst_ir.input_conns
            ]
            if missing:
                raise ElaborationError(
                    f"instance {inst.name!r} leaves input(s) {missing} unconnected",
                    inst.line,
                )
            reads: Set[str] = set()
            for expr in inst_ir.input_conns.values():
                reads |= expr_reads(expr)
            inst_ir.reads = tuple(sorted(reads))
            comb_reads: Set[str] = set()
            for port in child.comb_inputs:
                expr = inst_ir.input_conns.get(port)
                if expr is not None:
                    comb_reads |= expr_reads(expr)
            inst_ir.comb_reads = tuple(sorted(comb_reads))
            inst_ir.defines = tuple(sorted(inst_ir.output_conns.values()))
            inst_ir.registered_ports = tuple(
                sorted(
                    port
                    for port in inst_ir.output_conns
                    if child.signals[port].state_index is not None
                )
            )
            inst_ir.comb_defines = tuple(
                sorted(
                    target
                    for port, target in inst_ir.output_conns.items()
                    if child.signals[port].state_index is None
                )
            )
            inst_ir.dep_free_ports = tuple(
                sorted(
                    port
                    for port in inst_ir.output_conns
                    if child.signals[port].state_index is None
                    and not child.output_deps.get(port, set())
                )
            )
            ir.instances.append(inst_ir)

    def _lower_assigns(
        self, module: ast.Module, env: Dict[str, int], ir: ModuleIR
    ) -> None:
        for assign in module.assigns:
            target = assign.target
            if target.index is not None or target.msb is not None:
                raise ElaborationError(
                    "continuous assignment targets must be whole signals",
                    assign.line,
                )
            if target.name not in ir.signals:
                raise ElaborationError(
                    f"assignment to undeclared signal {target.name!r}", assign.line
                )
            value = fold_params(assign.value, env)
            ir.comb_assigns.append(
                CombAssignIR(
                    target=target,
                    value=value,
                    line=assign.line,
                    reads=tuple(sorted(expr_reads(value))),
                    defines=target.name,
                )
            )

    def _lower_always(
        self, module: ast.Module, env: Dict[str, int], ir: ModuleIR
    ) -> None:
        for block in module.always_blocks:
            body = fold_stmts(block.body, env)
            if block.kind == "seq":
                clock = block.clock or ""
                clock_sig = ir.signals.get(clock)
                if clock_sig is None or clock_sig.kind != "input":
                    raise ElaborationError(
                        f"clock {clock!r} must be an input port", block.line
                    )
                ir.seq_blocks.append(SeqBlockIR(clock=clock, body=body,
                                                line=block.line))
            else:
                reads, writes = stmt_reads_writes(body)
                # Targets written by the block are not "reads" even if
                # they also appear on a right-hand side (the generated
                # code initializes them to zero first — no latches).
                ir.comb_blocks.append(
                    CombBlockIR(
                        body=body,
                        line=block.line,
                        reads=tuple(sorted(reads - writes)),
                        defines=tuple(sorted(writes)),
                    )
                )
        ir.clock_names = tuple(sorted({b.clock for b in ir.seq_blocks}))

    def _assign_reg_slots(self, module: ast.Module, ir: ModuleIR) -> None:
        seq_writes: Set[str] = set()
        mem_writes: Set[str] = set()
        for block in ir.seq_blocks:
            _, writes = stmt_reads_writes(block.body)
            for name in writes:
                if name in ir.memories:
                    mem_writes.add(name)
                elif name in ir.signals:
                    seq_writes.add(name)
                else:
                    raise ElaborationError(
                        f"sequential assignment to undeclared {name!r}", block.line
                    )
        index = 0
        for name, sig in ir.signals.items():  # declaration order (dict ordered)
            if name in seq_writes:
                if sig.kind == "input":
                    raise ElaborationError(
                        f"cannot assign to input port {name!r}", sig.line
                    )
                sig.state_index = index
                if sig.kind == "output":
                    sig.is_registered_output = True
                index += 1
        ir.num_regs = index

    def _check_drivers(self, module: ast.Module, ir: ModuleIR) -> None:
        drivers: Dict[str, List[int]] = {}

        def add(name: str, line: int) -> None:
            drivers.setdefault(name, []).append(line)

        for assign in ir.comb_assigns:
            add(assign.defines, assign.line)
        for block in ir.comb_blocks:
            for name in block.defines:
                add(name, block.line)
        for inst in ir.instances:
            for name in inst.defines:
                add(name, inst.line)
        for name, sig in ir.signals.items():
            if sig.state_index is not None:
                add(name, sig.line)
        for name, lines in drivers.items():
            sig = ir.signals.get(name)
            if sig is not None and sig.kind == "input":
                raise ElaborationError(
                    f"input port {name!r} is driven inside the module", lines[0]
                )
            if len(lines) > 1:
                raise ElaborationError(
                    f"signal {name!r} has multiple drivers (lines {lines})",
                    lines[0],
                )
        # Undriven-but-read detection; remember which construct read
        # each name so diagnostics point at the use site.
        read_anywhere: Dict[str, int] = {}

        def note_reads(names, line: int) -> None:
            for name in names:
                read_anywhere.setdefault(name, line)

        for assign in ir.comb_assigns:
            note_reads(assign.reads, assign.line)
        for block in ir.comb_blocks:
            note_reads(block.reads, block.line)
        for inst in ir.instances:
            note_reads(inst.reads, inst.line)
        for block in ir.seq_blocks:
            reads, _ = stmt_reads_writes(block.body)
            note_reads(reads, block.line)
        note_reads(ir.outputs, module.line)
        for name, read_line in read_anywhere.items():
            sig = ir.signals.get(name)
            if sig is None:
                if name in ir.memories:
                    continue
                raise ElaborationError(
                    f"module {module.name!r} reads undeclared signal {name!r}",
                    read_line,
                )
            if sig.kind == "input" or name in ir.clock_names:
                continue
            if name not in drivers:
                raise ElaborationError(
                    f"signal {name!r} in module {module.name!r} is read "
                    "but never driven",
                    sig.line,
                )


def elaborate(
    design: ast.Design,
    top: str,
    params: Optional[Dict[str, int]] = None,
) -> Netlist:
    """Elaborate ``design`` with ``top`` as the root module."""
    return Elaborator(design).elaborate(top, params)
