"""Lexer for LHDL, the Verilog subset used throughout this reproduction.

The lexer works on preprocessed text (see ``repro.hdl.preprocessor``).
Comments are skipped but counted, so LiveParser can tell comment-only
edits apart from behavioural ones by comparing token streams rather
than raw text.
"""

from __future__ import annotations

from typing import Iterator, List

from .errors import LexError
from .tokens import (
    EOF,
    IDENT,
    KEYWORD,
    KEYWORDS,
    MACRO,
    MULTI_CHAR_OPS,
    NUMBER,
    OP,
    PUNCT,
    PUNCTUATION,
    SINGLE_CHAR_OPS,
    SIZED_NUMBER,
    SYSCALL,
    Token,
)

_BASE_DIGITS = {
    "h": "0123456789abcdefABCDEF",
    "d": "0123456789",
    "b": "01",
    "o": "01234567",
}
_BASE_RADIX = {"h": 16, "d": 10, "b": 2, "o": 8}


class Lexer:
    """Streaming tokenizer over a single source string."""

    def __init__(self, text: str, start_line: int = 1):
        self._text = text
        self._pos = 0
        self._line = start_line
        self._col = 1

    def _peek(self, ahead: int = 0) -> str:
        i = self._pos + ahead
        return self._text[i] if i < len(self._text) else ""

    def _advance(self, count: int = 1) -> str:
        chunk = self._text[self._pos : self._pos + count]
        for ch in chunk:
            if ch == "\n":
                self._line += 1
                self._col = 1
            else:
                self._col += 1
        self._pos += count
        return chunk

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start_line, start_col = self._line, self._col
                self._advance(2)
                while self._pos < len(self._text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start_line, start_col)
            else:
                return

    def _lex_number(self) -> Token:
        line, col = self._line, self._col
        digits = ""
        while self._peek().isdigit() or self._peek() == "_":
            digits += self._advance()
        digits = digits.replace("_", "")
        if self._peek() == "'":
            self._advance()
            base_ch = self._advance().lower()
            if base_ch not in _BASE_DIGITS:
                raise LexError(f"unknown number base {base_ch!r}", line, col)
            allowed = _BASE_DIGITS[base_ch]
            body = ""
            while True:
                ch = self._peek()
                # NB: guard against "" (EOF) — '"" in allowed' is True.
                if not ch or (ch not in allowed and ch != "_"):
                    break
                body += self._advance()
            body = body.replace("_", "")
            if not body:
                raise LexError("sized literal with no digits", line, col)
            width = int(digits) if digits else 32
            value = int(body, _BASE_RADIX[base_ch])
            if width <= 0:
                raise LexError("sized literal must have positive width", line, col)
            value &= (1 << width) - 1
            return Token(
                SIZED_NUMBER, f"{width}'{base_ch}{body}", line, col,
                num_value=value, num_width=width,
            )
        if not digits:
            raise LexError("malformed number", line, col)
        return Token(NUMBER, digits, line, col, num_value=int(digits))

    def _lex_ident(self) -> Token:
        line, col = self._line, self._col
        name = ""
        while self._peek().isalnum() or self._peek() in ("_", "$"):
            name += self._advance()
        kind = KEYWORD if name in KEYWORDS else IDENT
        return Token(kind, name, line, col)

    def _lex_syscall(self) -> Token:
        line, col = self._line, self._col
        name = self._advance()  # the '$'
        while self._peek().isalnum() or self._peek() == "_":
            name += self._advance()
        if len(name) == 1:
            raise LexError("bare '$' is not a valid token", line, col)
        return Token(SYSCALL, name, line, col)

    def next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        if self._pos >= len(self._text):
            return Token(EOF, "", self._line, self._col)
        ch = self._peek()
        if ch.isdigit():
            return self._lex_number()
        if ch == "'":
            # Unsized based literal like 'b0 (width defaults to 32).
            return self._lex_number()
        if ch.isalpha() or ch == "_":
            return self._lex_ident()
        if ch == "$":
            return self._lex_syscall()
        if ch == "`":
            # Raw (un-preprocessed) text: keep the macro reference as a
            # token so LiveParser can fingerprint module regions before
            # preprocessing.  Preprocessed text never contains these.
            line, col = self._line, self._col
            name = self._advance()
            while self._peek().isalnum() or self._peek() == "_":
                name += self._advance()
            return Token(MACRO, name, line, col)
        line, col = self._line, self._col
        for op in MULTI_CHAR_OPS:
            if self._text.startswith(op, self._pos):
                self._advance(len(op))
                return Token(OP, op, line, col)
        if ch in SINGLE_CHAR_OPS:
            self._advance()
            return Token(OP, ch, line, col)
        if ch in PUNCTUATION:
            self._advance()
            return Token(PUNCT, ch, line, col)
        raise LexError(f"unexpected character {ch!r}", line, col)

    def tokens(self) -> Iterator[Token]:
        while True:
            tok = self.next_token()
            yield tok
            if tok.kind == EOF:
                return


def tokenize(text: str, start_line: int = 1) -> List[Token]:
    """Tokenize ``text`` fully, returning the EOF token as the last item."""
    return list(Lexer(text, start_line=start_line).tokens())


def behavioral_fingerprint(text: str) -> str:
    """Hash of the token stream, insensitive to comments and whitespace.

    LiveParser uses this to decide whether an edit changed behaviour
    (paper §III-C: "confirm that actual behavior was changed, not just
    comments or spacing").
    """
    import hashlib

    digest = hashlib.sha256()
    for tok in Lexer(text).tokens():
        if tok.kind == EOF:
            break
        digest.update(tok.kind.encode())
        digest.update(b"\x00")
        if tok.num_value is not None:
            digest.update(str(tok.num_value).encode())
            digest.update(b"/")
            digest.update(str(tok.num_width).encode())
        else:
            digest.update(tok.value.encode())
        digest.update(b"\x01")
    return digest.hexdigest()
