"""The incremental analyzer: fingerprint-cached analysis runs.

Mirrors :class:`~repro.live.compiler_live.LiveCompiler`'s cache
discipline: results are cached per specialization under a key built
from the module's *behavioural fingerprint* plus a combinational
summary of each child.  A body-only edit therefore re-analyzes exactly
one module on the next hot reload; an untouched design re-analyzes
nothing and an :class:`AnalysisReport` says so explicitly
(``analyzed_keys`` / ``reused_keys`` — the acceptance counters).

The child component of the key is the child's *comb signature*
(interface fingerprint + per-output input dependencies), because the
parent-side loop/race analyses consume exactly that much of the child:
more than the compile cache's interface fingerprint, much less than
the child's body.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..ir.netlist import ModuleIR, Netlist
from .checks import Check, CheckContext, default_checks
from .diagnostics import Diagnostic, count_by_severity, sort_diagnostics

# (spec key, module fingerprint, child comb signatures, check set,
#  value-facts digest) — the last component is what makes proof-backed
# findings cache-correct: cross-module fact flow means a parent edit
# can change this module's findings without touching its fingerprint.
AnalysisKey = Tuple[str, str, Tuple[str, ...], str, str]


@dataclass
class AnalysisReport:
    """What one analysis pass did: findings plus cache accounting."""

    top: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)
    analyzed_keys: List[str] = field(default_factory=list)
    reused_keys: List[str] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def counts(self) -> Dict[str, int]:
        return count_by_severity(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def was_incremental(self) -> bool:
        return bool(self.reused_keys)

    def findings(self, severity: Optional[str] = None) -> List[Diagnostic]:
        if severity is None:
            return list(self.diagnostics)
        return [d for d in self.diagnostics if d.severity == severity]


def comb_signature(ir: ModuleIR) -> str:
    """Hash of what a parent's analyses can observe of a child."""
    digest = hashlib.sha256(ir.interface_fingerprint().encode())
    for port in sorted(ir.output_deps):
        deps = ",".join(sorted(ir.output_deps[port]))
        digest.update(f";{port}<-{deps}".encode())
    return digest.hexdigest()


class Analyzer:
    """Owns the check set and the per-specialization result cache."""

    def __init__(self, checks: Optional[Sequence[Check]] = None):
        self._checks: List[Check] = list(
            checks if checks is not None else default_checks()
        )
        self._cache: Dict[AnalysisKey, Tuple[Diagnostic, ...]] = {}
        # Dataflow value-facts cache (repro.passes.dataflow), shared
        # across analyze runs under the same fingerprint discipline.
        self._facts_cache: Dict = {}
        self._check_set = ",".join(
            sorted(type(c).__name__ for c in self._checks)
        )

    @property
    def checks(self) -> List[Check]:
        return list(self._checks)

    def cache_size(self) -> int:
        return len(self._cache)

    def analyze_netlist(
        self,
        netlist: Netlist,
        fingerprint_of: Optional[Callable[[str], str]] = None,
        value_facts=None,
    ) -> AnalysisReport:
        """Analyze every specialization in ``netlist``.

        ``fingerprint_of`` maps a *module name* to its behavioural
        fingerprint (normally ``LiveParser.fingerprint``); without one,
        results are computed fresh and not cached — the right behaviour
        for one-shot CLI runs over a file.

        ``value_facts`` (key -> ``ModuleValueFacts``) feeds the
        proof-backed checks; when omitted, the analyzer computes them
        itself through its own fingerprint-keyed facts cache.
        """
        started = time.perf_counter()
        report = AnalysisReport(top=netlist.top)
        with obs.span("analyze", top=netlist.top):
            if value_facts is None:
                value_facts = self._compute_facts(netlist, fingerprint_of)
            ctx = CheckContext(netlist, value_facts)
            signatures = {
                key: comb_signature(ir)
                for key, ir in netlist.modules.items()
            }
            for key in sorted(netlist.modules):
                ir = netlist.modules[key]
                diags = self._analyze_module(
                    ir, ctx, signatures, fingerprint_of, report
                )
                report.diagnostics.extend(diags)
        report.diagnostics = sort_diagnostics(report.diagnostics)
        report.seconds = time.perf_counter() - started
        obs.incr("analyze.runs")
        obs.gauge("analyze.cache_size", len(self._cache))
        obs.gauge("analyze.findings", len(report.diagnostics))
        return report

    def _compute_facts(
        self,
        netlist: Netlist,
        fingerprint_of: Optional[Callable[[str], str]],
    ):
        # Function-level import: repro.passes imports repro.analyze
        # (AnalyzePass), so this package must not import it at module
        # load time.
        from ..passes.dataflow import compute_netlist_facts

        fps: Dict[str, str] = {}
        if fingerprint_of is not None:
            fps = {
                netlist.modules[key].name: fingerprint_of(
                    netlist.modules[key].name
                )
                for key in netlist.modules
            }
        return compute_netlist_facts(
            netlist,
            fps=fps,
            cache=self._facts_cache if fingerprint_of is not None else None,
        )

    def _analyze_module(
        self,
        ir: ModuleIR,
        ctx: CheckContext,
        signatures: Dict[str, str],
        fingerprint_of: Optional[Callable[[str], str]],
        report: AnalysisReport,
    ) -> Tuple[Diagnostic, ...]:
        cache_key: Optional[AnalysisKey] = None
        if fingerprint_of is not None:
            child_sigs = tuple(
                signatures[inst.child_key] for inst in ir.instances
            )
            mod_facts = ctx.facts_for(ir.key)
            facts_digest = mod_facts.digest if mod_facts is not None else ""
            cache_key = (
                ir.key, fingerprint_of(ir.name), child_sigs,
                self._check_set, facts_digest,
            )
            cached = self._cache.get(cache_key)
            if cached is not None:
                report.reused_keys.append(ir.key)
                obs.incr("analyze.cache_hits")
                return cached
        diags: List[Diagnostic] = []
        with obs.span("analyze.module", key=ir.key):
            for check in self._checks:
                diags.extend(check.run(ir, ctx))
        result = tuple(diags)
        if cache_key is not None:
            self._cache[cache_key] = result
        report.analyzed_keys.append(ir.key)
        obs.incr("analyze.cache_misses")
        obs.incr("analyze.modules_analyzed")
        return result

    def evict_stale(self, keep_generations: int = 4) -> int:
        """Bound the cache like the compile cache: keep the newest
        ``keep_generations`` entries per spec key."""
        by_spec: Dict[str, List[AnalysisKey]] = {}
        for cache_key in self._cache:
            by_spec.setdefault(cache_key[0], []).append(cache_key)
        evicted = 0
        for keys in by_spec.values():
            if len(keys) > keep_generations:
                for key in keys[: len(keys) - keep_generations]:
                    del self._cache[key]
                    evicted += 1
        if evicted:
            obs.incr("analyze.cache_evicted", evicted)
            obs.gauge("analyze.cache_size", len(self._cache))
        return evicted
