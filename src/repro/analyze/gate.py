"""Hot-reload gating on analyzer findings.

The live loop's promise is that an edit lands in the running
simulation in under two seconds; the gate's job is to make sure a
*broken* edit — one that introduces a combinational loop or a
multiply-driven register — does not land silently.  ``apply_change``
runs the analyzer after compiling the new design and asks the policy
whether the swap may proceed; a refusal raises
:class:`GateBlockedError` and rolls the session back, exactly like a
syntax error would.

By default only **new** error-class findings block: pre-existing
findings were accepted when the design was loaded (or by an earlier
override) and must not wedge every subsequent edit.  ``override=True``
on the offending call lets the swap through and re-baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Sequence

from ..hdl.errors import HDLError
from .diagnostics import SEVERITY_ERROR, Diagnostic


class GateBlockedError(HDLError):
    """A hot reload was refused by the gate policy.

    Subclasses :class:`HDLError` so every existing rollback path
    (``apply_change``'s transactional compile, the server's error
    taxonomy) treats a refused swap like any other failed edit.
    """

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics: List[Diagnostic] = list(diagnostics)
        lines = "; ".join(str(d) for d in self.diagnostics)
        super().__init__(
            f"hot reload blocked by static analysis ({lines}); "
            "re-apply with override to force the swap"
        )


@dataclass(frozen=True)
class GatePolicy:
    """What findings may refuse a swap.

    ``block_severities``
        Findings of these severities are blocking (default: errors).
    ``block_kinds`` / ``allow_kinds``
        Optional kind-level overrides: ``block_kinds`` adds kinds that
        block regardless of severity; ``allow_kinds`` exempts kinds
        entirely (e.g. let ``nb-race`` through while still refusing
        ``comb-loop``).
    ``new_only``
        Block only findings absent from the pre-edit baseline
        (default).  With ``False`` the gate re-litigates every finding
        on every edit.
    ``enabled``
        ``False`` turns the gate into a pure observer.
    """

    enabled: bool = True
    block_severities: FrozenSet[str] = frozenset({SEVERITY_ERROR})
    block_kinds: FrozenSet[str] = frozenset()
    allow_kinds: FrozenSet[str] = frozenset()
    new_only: bool = True

    def is_blocking_kind(self, diag: Diagnostic) -> bool:
        if diag.kind in self.allow_kinds:
            return False
        return (
            diag.severity in self.block_severities
            or diag.kind in self.block_kinds
        )


@dataclass
class GateDecision:
    """Outcome of one gate evaluation."""

    allowed: bool = True
    blocking: List[Diagnostic] = field(default_factory=list)
    new_findings: List[Diagnostic] = field(default_factory=list)
    overridden: bool = False

    def raise_if_blocked(self) -> None:
        if not self.allowed:
            raise GateBlockedError(self.blocking)


def evaluate_gate(
    policy: GatePolicy,
    before: Sequence[Diagnostic],
    after: Sequence[Diagnostic],
    override: bool = False,
) -> GateDecision:
    """Decide whether a swap from ``before`` findings to ``after`` may
    proceed.  ``override`` records the decision but never blocks."""
    baseline = {d.identity() for d in before}
    new = [d for d in after if d.identity() not in baseline]
    decision = GateDecision(new_findings=new, overridden=override)
    if not policy.enabled:
        return decision
    candidates = new if policy.new_only else list(after)
    decision.blocking = [
        d for d in candidates if policy.is_blocking_kind(d)
    ]
    if decision.blocking and not override:
        decision.allowed = False
    return decision
