"""Diagnostics emitted by the static analyses.

A :class:`Diagnostic` is one finding: a short machine-readable kind
(``comb-loop``, ``truncation``, ...), the specialization it was found
in, a human message, the originating source line, a severity class,
and — for path-shaped findings like combinational loops — the chain of
signals involved.

The positional field order (kind, module, message, line) and the
``str()`` format are stable: they predate this package (the old
``repro.hdl.lint`` module) and existing callers rely on both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

# Severity classes, strongest first.  ``error`` findings are the ones a
# gate policy may refuse a hot reload over (a new combinational loop,
# a multiply-driven register); ``warning`` marks likely-bug idioms the
# simulator tolerates; ``info`` is awareness-only (a parameter-folded
# dead branch is often intentional).
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"

SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING, SEVERITY_INFO)

_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    kind: str
    module: str
    message: str
    line: int = 0
    severity: str = SEVERITY_WARNING
    check: str = ""
    # Path-shaped findings (combinational loops) carry the signal chain
    # so a client can highlight the whole cycle, not just one line.
    path: Tuple[str, ...] = ()
    # Proof-backed findings (repro.passes.dataflow) carry the value
    # derivation chain: one line per contributing fact, indented by
    # derivation depth.  Rendered only under ``--explain``.
    notes: Tuple[str, ...] = ()

    def __str__(self) -> str:
        where = f"{self.module}:{self.line}" if self.line else self.module
        return f"[{self.kind}] {where}: {self.message}"

    def explain(self) -> str:
        """Multi-line rendering with the derivation chain appended."""
        text = str(self)
        if self.notes:
            text += "\n" + "\n".join(f"    {note}" for note in self.notes)
        return text

    @property
    def is_error(self) -> bool:
        return self.severity == SEVERITY_ERROR

    def identity(self) -> Tuple[str, str, str]:
        """Stable identity for gating and baseline diffs.

        Deliberately excludes the line number: an edit that shifts a
        module down the file must not make every old finding look new.
        """
        return (self.kind, self.module, self.message)

    def to_json(self) -> Dict:
        """JSON-safe dict in the ``repro.analyze/v1`` finding shape."""
        data: Dict = {
            "kind": self.kind,
            "severity": self.severity,
            "module": self.module,
            "line": self.line,
            "message": self.message,
        }
        if self.check:
            data["check"] = self.check
        if self.path:
            data["path"] = list(self.path)
        if self.notes:
            data["notes"] = list(self.notes)
        return data


def severity_rank(severity: str) -> int:
    """Lower is stronger; unknown severities sort after ``info``."""
    return _SEVERITY_RANK.get(severity, len(SEVERITIES))


def sort_diagnostics(diags: List[Diagnostic]) -> List[Diagnostic]:
    """Deterministic report order: severity, module, line, kind."""
    return sorted(
        diags,
        key=lambda d: (
            severity_rank(d.severity), d.module, d.line, d.kind, d.message
        ),
    )


def count_by_severity(diags) -> Dict[str, int]:
    counts: Dict[str, int] = {name: 0 for name in SEVERITIES}
    for diag in diags:
        counts[diag.severity] = counts.get(diag.severity, 0) + 1
    return counts
