"""``repro.analyze``: incremental semantic static analysis.

Simulation is worst at surfacing exactly the bug classes a static pass
over the elaborated IR can report *before a single cycle runs*:
combinational loops, multiply-driven nets, inferred latches,
blocking/nonblocking scheduling races, dead branches.  This package
runs those analyses at hot-reload time, caches results per
``(module, parameter-set)`` under the same fingerprint keys the
compile cache uses (so an edit re-analyzes only dirty modules), and
lets a :class:`GatePolicy` refuse a swap that would introduce a new
error-class finding.

Layout::

    diagnostics  Diagnostic + severities + ordering
    checks       the analyses (Check subclasses + default_checks)
    engine       Analyzer: fingerprint-cached runs -> AnalysisReport
    gate         GatePolicy / evaluate_gate / GateBlockedError
    report       the repro.analyze/v1 JSON schema + baseline diff
    __main__     python -m repro.analyze (CLI + CI baseline gate)

The original 4-check ``repro.hdl.lint`` module (and later its
deprecated shim) is gone; those checks live in
:mod:`repro.analyze.checks` with everything else.
"""

from .checks import (
    COMB_LOOP,
    CONSTANT_CONDITION,
    DEAD_BRANCH,
    EXTENSION,
    LATCH,
    MULTI_DRIVER,
    NB_RACE,
    OOB_INDEX,
    PROVED_CONDITION,
    TRUNC_LOSS,
    TRUNCATION,
    UNREACHABLE_ARM,
    UNUSED,
    Check,
    CheckContext,
    CombLoopCheck,
    ConstantConditionCheck,
    DeadBranchCheck,
    LatchCheck,
    MultiDriverCheck,
    RaceCheck,
    UnusedSignalCheck,
    ValueRangeCheck,
    WidthCheck,
    default_checks,
)
from .diagnostics import (
    SEVERITIES,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
    count_by_severity,
    sort_diagnostics,
)
from .engine import AnalysisReport, Analyzer, comb_signature
from .gate import GateBlockedError, GateDecision, GatePolicy, evaluate_gate
from .report import (
    SCHEMA_ID,
    build_report,
    design_entry,
    diff_reports,
    finding_identities,
    load_report,
    validate_report,
    write_report,
)

__all__ = [
    "COMB_LOOP",
    "CONSTANT_CONDITION",
    "DEAD_BRANCH",
    "EXTENSION",
    "LATCH",
    "MULTI_DRIVER",
    "NB_RACE",
    "OOB_INDEX",
    "PROVED_CONDITION",
    "SCHEMA_ID",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_INFO",
    "SEVERITY_WARNING",
    "TRUNC_LOSS",
    "TRUNCATION",
    "UNREACHABLE_ARM",
    "UNUSED",
    "AnalysisReport",
    "Analyzer",
    "Check",
    "CheckContext",
    "CombLoopCheck",
    "ConstantConditionCheck",
    "DeadBranchCheck",
    "Diagnostic",
    "GateBlockedError",
    "GateDecision",
    "GatePolicy",
    "LatchCheck",
    "MultiDriverCheck",
    "RaceCheck",
    "UnusedSignalCheck",
    "ValueRangeCheck",
    "WidthCheck",
    "build_report",
    "comb_signature",
    "count_by_severity",
    "default_checks",
    "design_entry",
    "diff_reports",
    "evaluate_gate",
    "finding_identities",
    "load_report",
    "sort_diagnostics",
    "validate_report",
    "write_report",
]
