"""CLI entry point: ``python -m repro.analyze``.

Runs the static analyses over one or more LHDL designs (files or
directories of ``*.v`` files) and prints the findings; optionally
writes a ``repro.analyze/v1`` JSON report and diffs it against a
checked-in baseline — the CI ``analyze-examples`` gate::

    python -m repro.analyze design.v --top top
    python -m repro.analyze examples/designs \\
        --json ANALYZE.json \\
        --baseline benchmarks/baselines/analyze_baseline.json

Exit codes: 0 clean / findings match baseline; 1 usage or toolchain
error; 2 baseline mismatch (new or missing findings); 3 error-class
findings present with ``--fail-on-error``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Tuple

from ..hdl.elaborate import elaborate
from ..hdl.errors import HDLError
from ..hdl.parser import parse
from .engine import Analyzer
from .report import (
    build_report,
    design_entry,
    diff_reports,
    load_report,
    write_report,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="LiveSim static analysis: semantic checks over "
                    "elaborated LHDL designs",
    )
    parser.add_argument(
        "designs", nargs="+",
        help="LHDL source files, or directories scanned for *.v",
    )
    parser.add_argument(
        "--top",
        help="top module (defaults to the last module in each file)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write a repro.analyze/v1 JSON report to PATH",
    )
    parser.add_argument(
        "--baseline", metavar="PATH",
        help="diff findings against a checked-in repro.analyze/v1 "
             "report; new or missing findings exit 2",
    )
    parser.add_argument(
        "--opt", choices=("none", "basic", "full"), default="none",
        help="run analysis through the repro.passes pipeline at this "
             "optimization level; analysis sees the pre-optimization "
             "netlist, so findings are identical at every level (the "
             "CI gate asserts this against one shared baseline)",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="append each proof-backed finding's value derivation "
             "chain (one indented line per contributing fact); the "
             "chain's line numbers are pre-optimization source lines "
             "at every --opt level, same as the findings themselves",
    )
    parser.add_argument(
        "--fail-on-error", action="store_true",
        help="exit 3 when any error-class finding is reported",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-finding output (summary only)",
    )
    return parser


def _collect_designs(paths: List[str]) -> List[str]:
    designs: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            designs.extend(
                os.path.join(path, name)
                for name in sorted(os.listdir(path))
                if name.endswith(".v")
            )
        else:
            designs.append(path)
    return designs


def _analyze_file(
    analyzer: Analyzer, path: str, top: Optional[str], opt: str = "none"
) -> Tuple[dict, int]:
    with open(path) as fh:
        source = fh.read()
    design = parse(source)
    modules = list(design.modules)
    if not modules:
        raise HDLError(f"{path}: design defines no modules")
    chosen = top or modules[-1]
    if chosen not in modules:
        raise HDLError(
            f"{path}: top module {chosen!r} not in design (have {modules})"
        )
    netlist = elaborate(design, chosen)
    if opt != "none":
        # Drive the analyzer through the pass pipeline the compiler
        # uses at this level; AnalyzePass runs pre-optimization, so
        # the findings must match the plain path bit for bit.
        from ..passes import (
            AnalyzePass,
            ElaborateFactsPass,
            PassData,
            PassManager,
        )

        pipeline = PassManager([
            AnalyzePass(analyzer),
            ElaborateFactsPass(),
        ]).build()
        data = PassData(netlist=netlist, opt=opt)
        pipeline.run(data)
        report = data.facts["analyze.report"]
    else:
        report = analyzer.analyze_netlist(netlist)
    rel = os.path.relpath(path).replace(os.sep, "/")
    return design_entry(rel, chosen, report.diagnostics), len(report.errors)


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    paths = _collect_designs(args.designs)
    if not paths:
        print("error: no designs found", file=sys.stderr)
        return 1

    analyzer = Analyzer()
    entries = []
    total = {"error": 0, "warning": 0, "info": 0}
    error_findings = 0
    try:
        for path in paths:
            entry, errors = _analyze_file(analyzer, path, args.top,
                                          args.opt)
            entries.append(entry)
            error_findings += errors
            for severity, count in entry["counts"].items():
                total[severity] = total.get(severity, 0) + count
            if not args.quiet:
                print(f"{entry['design']} (top {entry['top']}): "
                      f"{len(entry['findings'])} finding(s)")
                for finding in entry["findings"]:
                    print(f"  {finding['severity']:<7} "
                          f"[{finding['kind']}] "
                          f"{finding['module']}:{finding['line']}: "
                          f"{finding['message']}")
                    if args.explain:
                        for note in finding.get("notes", ()):
                            print(f"          {note}")
    except (OSError, HDLError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    report = build_report(entries, meta={
        "tool": "python -m repro.analyze",
        "designs_analyzed": len(entries),
        "opt": args.opt,
    })
    print(f"total: {total['error']} error(s), {total['warning']} "
          f"warning(s), {total['info']} info")

    if args.json:
        try:
            write_report(args.json, report)
        except OSError as exc:
            print(f"error: cannot write report: {exc}", file=sys.stderr)
            return 1
        print(f"report written to {args.json}")

    if args.baseline:
        try:
            baseline = load_report(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 1
        new, missing = diff_reports(baseline, report)
        if new:
            print(f"BASELINE MISMATCH: {len(new)} new finding(s):")
            for design, kind, module, message in new:
                print(f"  + {design}: [{kind}] {module}: {message}")
        if missing:
            print(f"BASELINE MISMATCH: {len(missing)} finding(s) "
                  "disappeared:")
            for design, kind, module, message in missing:
                print(f"  - {design}: [{kind}] {module}: {message}")
        if new or missing:
            print("refresh with: python -m repro.analyze <designs> "
                  "--json <baseline-path>")
            return 2
        print("baseline match: findings identical to "
              f"{os.path.basename(args.baseline)}")

    if args.fail_on_error and error_findings:
        print(f"{error_findings} error-class finding(s) present")
        return 3
    return 0


if __name__ == "__main__":
    sys.exit(main())
