"""The static analyses: dataflow checks over one elaborated module.

Every check is a :class:`Check` subclass analyzing a single
:class:`~repro.ir.netlist.ModuleIR` specialization (plus read-only
access to its children's IR through :class:`CheckContext`).  That
granularity is deliberate: it makes results cacheable per
``(module, parameter-set)`` under the same fingerprint discipline the
compile cache uses, so a hot reload re-analyzes only dirty modules.

Semantic checks (beyond the migrated width/quality lints):

``comb-loop``
    A genuine combinational cycle through the module's signals, with
    the full path reported.  The simulator *tolerates* these (it
    iterates evaluation to a fixed point), which is exactly why the
    analyzer must not: a loop that settles in simulation is still
    unsynthesizable and usually a missing register.
``multi-driver``
    One signal (or memory) written from more than one always block —
    last-writer-wins in simulation, bus contention in hardware.  The
    elaborator already rejects conflicts between *kinds* of drivers;
    this catches same-kind conflicts it tolerates.
``latch``
    A combinational block that assigns a signal on some paths only.
    The generated code zero-fills, so simulation stays defined, but
    synthesis infers a latch — the classic silent mismatch.
``nb-race``
    A register partially assigned (bit/part select) in one clocked
    block while another clocked block writes it in the same eval
    phase.  The parser already forbids blocking ``=`` in clocked
    blocks, but partial nonblocking assignment compiles to a
    read-modify-write of the *pending* value, so the merge observes
    same-phase writes from sibling blocks — the observed value
    depends on block evaluation order.
``dead-branch``
    Branches no execution can reach, found via consteval: parameters
    are already folded at elaboration, so an ``if (W == 8)`` in a
    ``W = 16`` specialization shows up as a constant condition here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..hdl import ast_nodes as ast
from ..hdl.consteval import expr_reads, stmt_reads_writes
from ..ir.netlist import ModuleIR, Netlist
from .diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
    Diagnostic,
)

# Diagnostic kinds (the migrated four keep their historical names).
TRUNCATION = "truncation"
EXTENSION = "extension"
UNUSED = "unused-signal"
CONSTANT_CONDITION = "constant-condition"
COMB_LOOP = "comb-loop"
MULTI_DRIVER = "multi-driver"
LATCH = "latch"
NB_RACE = "nb-race"
DEAD_BRANCH = "dead-branch"
# Proof-backed kinds (repro.passes.dataflow value facts).
OOB_INDEX = "oob-index"
PROVED_CONDITION = "proved-condition"
TRUNC_LOSS = "trunc-loss"
UNREACHABLE_ARM = "unreachable-arm"


class CheckContext:
    """What a check may see besides the module under analysis.

    Only child IR lookups plus the (optional) per-module value facts —
    nothing mutable, nothing session-scoped — so a check's result is a
    pure function of the module, its children's combinational
    summaries, and the facts digest (all folded into the analyzer's
    cache key).
    """

    def __init__(self, netlist: Netlist, value_facts=None):
        self._netlist = netlist
        self._value_facts = value_facts or {}

    def child(self, key: str) -> ModuleIR:
        return self._netlist.modules[key]

    def facts_for(self, key: str):
        """The module's :class:`repro.passes.dataflow.ModuleValueFacts`
        (duck-typed here — this package never imports repro.passes at
        module level), or None when analysis ran without facts."""
        return self._value_facts.get(key)


class Check:
    """Base class: one analysis pass over one module specialization."""

    name: str = ""
    severity: str = SEVERITY_WARNING

    def run(self, ir: ModuleIR, ctx: CheckContext) -> List[Diagnostic]:
        raise NotImplementedError

    def diag(
        self,
        kind: str,
        ir: ModuleIR,
        message: str,
        line: int,
        severity: Optional[str] = None,
        path: Tuple[str, ...] = (),
        notes: Tuple[str, ...] = (),
    ) -> Diagnostic:
        return Diagnostic(
            kind=kind,
            module=ir.name,
            message=message,
            line=line,
            severity=severity or self.severity,
            check=self.name,
            path=path,
            notes=notes,
        )


# ---------------------------------------------------------------------------
# Width inference (shared by the truncation/extension checks)
# ---------------------------------------------------------------------------


class WidthOracle:
    """Width inference over folded expressions (mirrors codegen rules)."""

    def __init__(self, ir: ModuleIR):
        self._ir = ir

    def width(self, expr: ast.Expr) -> Optional[int]:
        if isinstance(expr, ast.Num):
            return expr.width  # None for bare decimals: context-sized
        if isinstance(expr, ast.Id):
            sig = self._ir.signals.get(expr.name)
            return sig.width if sig else None
        if isinstance(expr, ast.Unary):
            if expr.op in ("!", "&", "|", "^"):
                return 1
            return self.width(expr.operand)
        if isinstance(expr, ast.Binary):
            if expr.op in ("==", "!=", "===", "!==", "<", "<=", ">", ">=",
                           "&&", "||"):
                return 1
            if expr.op in ("<<", ">>", ">>>", "<<<"):
                return self.width(expr.left)
            left = self.width(expr.left)
            right = self.width(expr.right)
            if left is None or right is None:
                return left if right is None else right
            return max(left, right)
        if isinstance(expr, ast.Ternary):
            left = self.width(expr.if_true)
            right = self.width(expr.if_false)
            if left is None or right is None:
                return left if right is None else right
            return max(left, right)
        if isinstance(expr, ast.Concat):
            widths = [self.width(p) for p in expr.parts]
            if any(w is None for w in widths):
                return None
            return sum(widths)  # type: ignore[arg-type]
        if isinstance(expr, ast.Repl):
            if isinstance(expr.count, ast.Num):
                inner = self.width(expr.value)
                if inner is not None:
                    return expr.count.value * inner
            return None
        if isinstance(expr, ast.Index):
            if expr.base in self._ir.memories:
                return self._ir.memories[expr.base].width
            return 1
        if isinstance(expr, ast.Slice):
            if isinstance(expr.msb, ast.Num) and isinstance(expr.lsb, ast.Num):
                return expr.msb.value - expr.lsb.value + 1
            return None
        if isinstance(expr, ast.IndexedPart):
            if isinstance(expr.width, ast.Num):
                return expr.width.value
            return None
        if isinstance(expr, ast.SysCall):
            if expr.func in ("$signed", "$unsigned") and expr.args:
                return self.width(expr.args[0])
            return None
        return None


def _is_synthetic_if(stmt: ast.If) -> bool:
    """Flattened begin/end blocks lower to ``if (1)`` with no else —
    synthetic structure, not a user-written constant condition."""
    return (
        isinstance(stmt.cond, ast.Num)
        and stmt.cond.value == 1
        and not stmt.else_body
    )


# ---------------------------------------------------------------------------
# Migrated width/quality checks (formerly repro.hdl.lint)
# ---------------------------------------------------------------------------


class WidthCheck(Check):
    """Truncating / zero-extending assignments (``truncation`` /
    ``extension``)."""

    name = "width"
    severity = SEVERITY_WARNING

    def run(self, ir: ModuleIR, ctx: CheckContext) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        oracle = WidthOracle(ir)
        for assign in ir.comb_assigns:
            self._check_assign(
                ir, oracle, assign.target.name, assign.value, assign.line, out
            )
        for block in ir.comb_blocks:
            self._check_stmts(ir, oracle, block.body, out)
        for seq in ir.seq_blocks:
            self._check_stmts(ir, oracle, seq.body, out)
        return out

    def _check_stmts(self, ir, oracle, stmts, out) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.NonBlocking, ast.Blocking)):
                target = stmt.target
                if (target.index is None and target.msb is None
                        and target.name in ir.signals):
                    self._check_assign(
                        ir, oracle, target.name, stmt.value, stmt.line, out
                    )
            elif isinstance(stmt, ast.If):
                self._check_stmts(ir, oracle, stmt.then_body, out)
                self._check_stmts(ir, oracle, stmt.else_body, out)
            elif isinstance(stmt, ast.Case):
                for _, body in stmt.arms:
                    self._check_stmts(ir, oracle, body, out)

    def _check_assign(self, ir, oracle, target_name, value, line, out) -> None:
        target = ir.signals.get(target_name)
        if target is None:
            return
        width = oracle.width(value)
        if width is None:
            return
        if width > target.width:
            out.append(self.diag(
                TRUNCATION, ir,
                f"assignment to {target_name!r} truncates a {width}-bit "
                f"value to {target.width} bits",
                line,
            ))
        elif width < target.width and not isinstance(value, ast.Num):
            out.append(self.diag(
                EXTENSION, ir,
                f"assignment to {target_name!r} zero-extends a {width}-bit "
                f"value to {target.width} bits",
                line,
            ))


class UnusedSignalCheck(Check):
    """Internal signals never read by anything."""

    name = "unused-signal"
    severity = SEVERITY_WARNING

    def run(self, ir: ModuleIR, ctx: CheckContext) -> List[Diagnostic]:
        used: Set[str] = set()
        for assign in ir.comb_assigns:
            used |= set(assign.reads)
        for block in ir.comb_blocks:
            used |= set(block.reads) | set(block.defines)
        for inst in ir.instances:
            used |= set(inst.reads)
        for seq in ir.seq_blocks:
            reads, writes = stmt_reads_writes(seq.body)
            used |= reads | writes
        used |= set(ir.outputs)

        out: List[Diagnostic] = []
        for name, sig in ir.signals.items():
            if sig.kind in ("input", "output"):
                continue
            if name in ir.clock_names:
                continue
            if name not in used:
                out.append(self.diag(
                    UNUSED, ir, f"signal {name!r} is never read", sig.line,
                ))
        return out


class ConstantConditionCheck(Check):
    """Constant if-conditions and mux selects."""

    name = "constant-condition"
    severity = SEVERITY_WARNING

    def run(self, ir: ModuleIR, ctx: CheckContext) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for assign in ir.comb_assigns:
            if isinstance(assign.value, ast.Ternary) and isinstance(
                assign.value.cond, ast.Num
            ):
                out.append(self.diag(
                    CONSTANT_CONDITION, ir,
                    f"mux select for {assign.target.name!r} is the constant "
                    f"{assign.value.cond.value}",
                    assign.line,
                ))
        for block in ir.comb_blocks:
            self._walk(ir, block.body, out)
        for seq in ir.seq_blocks:
            self._walk(ir, seq.body, out)
        return out

    def _walk(self, ir, stmts, out) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                if isinstance(stmt.cond, ast.Num) and not _is_synthetic_if(stmt):
                    out.append(self.diag(
                        CONSTANT_CONDITION, ir,
                        f"if-condition is the constant {stmt.cond.value}",
                        stmt.line,
                    ))
                self._walk(ir, stmt.then_body, out)
                self._walk(ir, stmt.else_body, out)
            elif isinstance(stmt, ast.Case):
                for _, body in stmt.arms:
                    self._walk(ir, body, out)


# ---------------------------------------------------------------------------
# Combinational-loop detection
# ---------------------------------------------------------------------------


class CombLoopCheck(Check):
    """Find combinational cycles and report the signal path.

    Builds the signal-level dependency graph the scheduler works with:
    an edge ``a -> b`` when some combinational unit reads ``a`` to
    produce ``b``.  Registered signals, memories, and early-bound
    instance outputs (state-sourced by construction) break paths, like
    they do for scheduling.  Instance edges use the child's per-output
    ``output_deps`` so a registered or input-independent child output
    never manufactures a false loop.
    """

    name = "comb-loop"
    severity = SEVERITY_ERROR

    def run(self, ir: ModuleIR, ctx: CheckContext) -> List[Diagnostic]:
        broken = {
            name
            for name, sig in ir.signals.items()
            if sig.state_index is not None or sig.kind == "input"
        }
        broken |= set(ir.memories)
        broken |= {target for _, _, target in ir.early_bind}

        # signal -> (defining line, set of comb source signals)
        edges: Dict[str, Tuple[int, Set[str]]] = {}

        def add(target: str, line: int, reads: Set[str]) -> None:
            if target in broken:
                return
            sources = {r for r in reads if r not in broken}
            old_line, old_sources = edges.get(target, (line, set()))
            edges[target] = (old_line or line, old_sources | sources)

        for assign in ir.comb_assigns:
            add(assign.defines, assign.line, set(assign.reads))
        for block in ir.comb_blocks:
            for name in block.defines:
                add(name, block.line, set(block.reads))
        for index, inst in enumerate(ir.instances):
            child = ctx.child(inst.child_key)
            registered = set(inst.registered_ports)
            early = {
                port for i, port, _ in ir.early_bind if i == index
            }
            for port, target in inst.output_conns.items():
                if port in registered or port in early:
                    continue
                reads: Set[str] = set()
                for child_input in child.output_deps.get(port, set()):
                    expr = inst.input_conns.get(child_input)
                    if expr is not None:
                        reads |= expr_reads(expr)
                add(target, inst.line, reads)

        return self._find_cycles(ir, edges)

    def _find_cycles(
        self, ir: ModuleIR, edges: Dict[str, Tuple[int, Set[str]]]
    ) -> List[Diagnostic]:
        # Iterative DFS with an explicit stack; one diagnostic per
        # distinct cycle entry signal (the first signal of the cycle in
        # DFS order), so a single loop is reported once.
        out: List[Diagnostic] = []
        WHITE, GREY, BLACK = 0, 1, 2
        color: Dict[str, int] = {}
        reported: Set[frozenset] = set()

        for root in sorted(edges):
            if color.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[str, List[str]]] = [
                (root, sorted(edges.get(root, (0, set()))[1]))
            ]
            trail: List[str] = [root]
            color[root] = GREY
            while stack:
                node, pending = stack[-1]
                if not pending:
                    color[node] = BLACK
                    stack.pop()
                    trail.pop()
                    continue
                succ = pending.pop(0)
                state = color.get(succ, WHITE)
                if state == GREY:
                    cycle = trail[trail.index(succ):] + [succ]
                    cycle_set = frozenset(cycle)
                    if cycle_set not in reported:
                        reported.add(cycle_set)
                        line = min(
                            (edges[s][0] for s in cycle_set if s in edges),
                            default=0,
                        )
                        out.append(self.diag(
                            COMB_LOOP, ir,
                            "combinational loop through "
                            + " -> ".join(cycle),
                            line,
                            path=tuple(cycle),
                        ))
                elif state == WHITE and succ in edges:
                    color[succ] = GREY
                    trail.append(succ)
                    stack.append(
                        (succ, sorted(edges.get(succ, (0, set()))[1]))
                    )
        return out


# ---------------------------------------------------------------------------
# Multiple-driver conflicts across processes
# ---------------------------------------------------------------------------


class MultiDriverCheck(Check):
    """Signals and memories written from more than one always block.

    The elaborator rejects a signal driven by *different kinds* of
    construct (assign + always, two assigns); what it tolerates — and
    this check reports — is the same register written by two clocked
    blocks, or one memory written from several processes.  In the
    generated code the later block silently wins; in hardware it is a
    driver conflict.
    """

    name = "multi-driver"
    severity = SEVERITY_ERROR

    def run(self, ir: ModuleIR, ctx: CheckContext) -> List[Diagnostic]:
        sig_writers: Dict[str, List[int]] = {}
        mem_writers: Dict[str, List[int]] = {}
        blocks: Sequence[Tuple[int, Set[str]]] = [
            (block.line, stmt_reads_writes(block.body)[1])
            for block in list(ir.seq_blocks) + list(ir.comb_blocks)
        ]
        for line, writes in blocks:
            for name in writes:
                if name in ir.memories:
                    mem_writers.setdefault(name, []).append(line)
                elif name in ir.signals:
                    sig_writers.setdefault(name, []).append(line)

        out: List[Diagnostic] = []
        for name, lines in sorted(sig_writers.items()):
            if len(lines) > 1:
                out.append(self.diag(
                    MULTI_DRIVER, ir,
                    f"signal {name!r} is written by {len(lines)} always "
                    f"blocks (lines {sorted(lines)})",
                    min(lines),
                ))
        for name, lines in sorted(mem_writers.items()):
            if len(lines) > 1:
                out.append(self.diag(
                    MULTI_DRIVER, ir,
                    f"memory {name!r} is written by {len(lines)} always "
                    f"blocks (lines {sorted(lines)})",
                    min(lines),
                ))
        return out


# ---------------------------------------------------------------------------
# Latch inference (incomplete combinational assignment)
# ---------------------------------------------------------------------------


class LatchCheck(Check):
    """Combinational defines not assigned on every path."""

    name = "latch"
    severity = SEVERITY_WARNING

    def run(self, ir: ModuleIR, ctx: CheckContext) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for block in ir.comb_blocks:
            for name in block.defines:
                if not _always_assigned(block.body, name):
                    out.append(self.diag(
                        LATCH, ir,
                        f"combinational block assigns {name!r} on some "
                        "paths only (latch inferred in synthesis; "
                        "simulation zero-fills)",
                        _first_assign_line(block.body, name) or block.line,
                    ))
        return out


def _always_assigned(stmts: List[ast.Stmt], name: str) -> bool:
    """True when every path through ``stmts`` assigns ``name``."""
    for stmt in stmts:
        if isinstance(stmt, (ast.NonBlocking, ast.Blocking)):
            if stmt.target.name == name:
                return True
        elif isinstance(stmt, ast.If):
            if _is_synthetic_if(stmt):
                if _always_assigned(stmt.then_body, name):
                    return True
                continue
            if isinstance(stmt.cond, ast.Num):
                # Constant condition: only the live branch counts.
                branch = (
                    stmt.then_body if stmt.cond.value else stmt.else_body
                )
                if _always_assigned(branch, name):
                    return True
                continue
            if (stmt.else_body
                    and _always_assigned(stmt.then_body, name)
                    and _always_assigned(stmt.else_body, name)):
                return True
        elif isinstance(stmt, ast.Case):
            has_default = any(not labels for labels, _ in stmt.arms)
            if has_default and all(
                _always_assigned(body, name) for _, body in stmt.arms
            ):
                return True
    return False


def _first_assign_line(stmts: List[ast.Stmt], name: str) -> int:
    for stmt in stmts:
        if isinstance(stmt, (ast.NonBlocking, ast.Blocking)):
            if stmt.target.name == name:
                return stmt.line
        elif isinstance(stmt, ast.If):
            line = (_first_assign_line(stmt.then_body, name)
                    or _first_assign_line(stmt.else_body, name))
            if line:
                return line
        elif isinstance(stmt, ast.Case):
            for _, body in stmt.arms:
                line = _first_assign_line(body, name)
                if line:
                    return line
    return 0


# ---------------------------------------------------------------------------
# Blocking/nonblocking scheduling races between clocked blocks
# ---------------------------------------------------------------------------


class RaceCheck(Check):
    """Partial register writes that observe same-phase sibling writes.

    All clocked blocks on the same edge evaluate in one phase.  A
    whole-register ``<=`` only writes the pending value, and plain
    reads see the pre-edge value — proper nonblocking semantics.  But
    a *bit/part-select* nonblocking assignment compiles to a
    read-modify-write of the **pending** value (the merge must keep
    the untouched bits), so when a different block writes the same
    register in the same phase, the merge picks up that write — or
    not — depending on block evaluation order.  Hardware has no such
    order, making this the scheduling race nonblocking assignment is
    supposed to rule out.
    """

    name = "nb-race"
    severity = SEVERITY_ERROR

    def run(self, ir: ModuleIR, ctx: CheckContext) -> List[Diagnostic]:
        if len(ir.seq_blocks) < 2:
            return []
        # Per block: all written registers, and the partially-written
        # ones (with the first partial-assign line for attribution).
        writes_per_block: List[Tuple[int, str, Set[str]]] = []
        partial_per_block: List[Tuple[int, str, Dict[str, int]]] = []
        for idx, seq in enumerate(ir.seq_blocks):
            _, writes = stmt_reads_writes(seq.body)
            reg_writes = {w for w in writes if w in ir.signals}
            partial: Dict[str, int] = {}
            _collect_partial_writes(seq.body, ir, partial)
            writes_per_block.append((idx, seq.clock, reg_writes))
            partial_per_block.append((idx, seq.clock, partial))

        out: List[Diagnostic] = []
        seen: Set[Tuple[str, int]] = set()
        for pidx, pclock, partial in partial_per_block:
            for name, line in sorted(partial.items()):
                for widx, wclock, writes in writes_per_block:
                    if widx == pidx or wclock != pclock:
                        continue
                    if name in writes and (name, pidx) not in seen:
                        seen.add((name, pidx))
                        out.append(self.diag(
                            NB_RACE, ir,
                            f"partial assignment to {name!r} merges with "
                            "the pending value, which another "
                            f"always @(posedge {pclock}) block writes in "
                            "the same eval phase; the result depends on "
                            "block evaluation order",
                            line,
                        ))
        return out


def _collect_partial_writes(
    stmts: List[ast.Stmt], ir: ModuleIR, out: Dict[str, int]
) -> None:
    """Registers assigned through a bit or part select (not memories —
    word writes there are whole-word, and multi-driver already flags
    multi-block memory writers)."""
    for stmt in stmts:
        if isinstance(stmt, (ast.NonBlocking, ast.Blocking)):
            target = stmt.target
            if (target.name in ir.signals
                    and target.name not in ir.memories
                    and (target.index is not None
                         or target.msb is not None)):
                out.setdefault(target.name, stmt.line)
        elif isinstance(stmt, ast.If):
            _collect_partial_writes(stmt.then_body, ir, out)
            _collect_partial_writes(stmt.else_body, ir, out)
        elif isinstance(stmt, ast.Case):
            for _, body in stmt.arms:
                _collect_partial_writes(body, ir, out)


# ---------------------------------------------------------------------------
# Dead / unreachable branches via consteval
# ---------------------------------------------------------------------------


class DeadBranchCheck(Check):
    """Branches no execution reaches, after parameter folding.

    Expressions in the IR are already constant-folded against the
    specialization's parameters, so a constant condition here means
    *this specialization* can never take the branch.  That is often
    intentional for parameterized code — hence ``info`` severity —
    but a dead default in a fully-constant case, or a dead arm, is
    worth a look.
    """

    name = "dead-branch"
    severity = SEVERITY_INFO

    def run(self, ir: ModuleIR, ctx: CheckContext) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for block in ir.comb_blocks:
            self._walk(ir, block.body, out)
        for seq in ir.seq_blocks:
            self._walk(ir, seq.body, out)
        return out

    def _walk(self, ir, stmts, out) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                if isinstance(stmt.cond, ast.Num) and not _is_synthetic_if(stmt):
                    if stmt.cond.value:
                        if stmt.else_body:
                            out.append(self.diag(
                                DEAD_BRANCH, ir,
                                "else-branch is unreachable (condition "
                                f"folds to {stmt.cond.value})",
                                stmt.line,
                            ))
                    else:
                        out.append(self.diag(
                            DEAD_BRANCH, ir,
                            "then-branch is unreachable (condition "
                            "folds to 0)",
                            stmt.line,
                        ))
                self._walk(ir, stmt.then_body, out)
                self._walk(ir, stmt.else_body, out)
            elif isinstance(stmt, ast.Case):
                self._check_case(ir, stmt, out)
                for _, body in stmt.arms:
                    self._walk(ir, body, out)

    def _check_case(self, ir, stmt: ast.Case, out) -> None:
        subject_const = (
            stmt.subject.value
            if isinstance(stmt.subject, ast.Num) else None
        )
        seen_labels: Set[int] = set()
        matched = False
        for labels, _ in stmt.arms:
            if not labels:  # default arm
                if subject_const is not None and matched:
                    out.append(self.diag(
                        DEAD_BRANCH, ir,
                        "default arm is unreachable (case subject folds "
                        f"to {subject_const})",
                        stmt.line,
                    ))
                continue
            const_labels = [
                lbl.value for lbl in labels if isinstance(lbl, ast.Num)
            ]
            if len(const_labels) != len(labels):
                continue  # non-constant label: reachable, be quiet
            if subject_const is not None:
                if subject_const in const_labels and not matched:
                    matched = True
                else:
                    out.append(self.diag(
                        DEAD_BRANCH, ir,
                        f"case arm {const_labels} is unreachable (subject "
                        f"folds to {subject_const})",
                        stmt.line,
                    ))
            else:
                duplicates = [
                    lbl for lbl in const_labels if lbl in seen_labels
                ]
                if duplicates and len(duplicates) == len(const_labels):
                    out.append(self.diag(
                        DEAD_BRANCH, ir,
                        f"case arm {const_labels} is unreachable "
                        "(labels already matched by an earlier arm)",
                        stmt.line,
                    ))
                seen_labels.update(const_labels)


# ---------------------------------------------------------------------------
# Proof-backed checks over the dataflow value facts
# ---------------------------------------------------------------------------


class ValueRangeCheck(Check):
    """Findings *proved* by the known-bits/interval analysis
    (:mod:`repro.passes.dataflow`), from-reset (env) tier:

    ``oob-index``
        A dynamic index or memory address whose interval lies entirely
        at or above the bound — every execution from reset faults.
    ``trunc-loss``
        A truncating assignment whose value provably carries bits above
        the declared width — data is lost on every path that runs it.
    ``proved-condition``
        A non-constant condition expression every evaluation of which
        decides the same way (the syntactic ``constant-condition``
        check only sees literal constants; this one sees through the
        dataflow).
    ``unreachable-arm``
        A case arm no subject value the analysis admits can match.

    Each finding carries the fact derivation chain in ``notes`` —
    rendered by the CLI's ``--explain`` flag.  Runs only when the
    analyzer was given value facts; silent otherwise.
    """

    name = "value-range"
    severity = SEVERITY_WARNING

    def run(self, ir: ModuleIR, ctx: CheckContext) -> List[Diagnostic]:
        facts = ctx.facts_for(ir.key)
        if facts is None:
            return []
        out: List[Diagnostic] = []
        for (name, line), site in sorted(facts.ob_sites.items()):
            if not site.provably_oob:
                continue
            out.append(self.diag(
                OOB_INDEX, ir,
                f"index into {name!r} is provably out of bounds: value "
                f"{site.fact.describe()} >= bound {site.bound}",
                line,
                severity=SEVERITY_ERROR,
                notes=self._derivation(facts, site.reads),
            ))
        for (name, line), site in sorted(facts.tr_sites.items()):
            if not site.provably_lossy:
                continue
            out.append(self.diag(
                TRUNC_LOSS, ir,
                f"assignment to {name!r} provably loses bits: value "
                f"{site.fact.describe()} cannot fit {site.declared} "
                "bit(s)",
                line,
                notes=self._derivation(facts, site.reads),
            ))
        for (line, kind), site in sorted(facts.cond_sites.items()):
            if site.truth is None:
                continue
            what = "if-condition" if kind == "if" else "mux select"
            truth = "true" if site.truth else "false"
            detail = (f" ({site.detail})",) if site.detail else ()
            out.append(self.diag(
                PROVED_CONDITION, ir,
                f"{what} is provably always {truth}"
                + (detail[0] if detail else ""),
                line,
                notes=self._derivation(facts, site.reads),
            ))
        for (line, arm), site in sorted(facts.case_sites.items()):
            if not site.dead:
                continue
            out.append(self.diag(
                UNREACHABLE_ARM, ir,
                f"case arm #{arm} is provably unmatchable"
                + (f" ({site.detail})" if site.detail else ""),
                line,
                severity=SEVERITY_INFO,
                notes=self._derivation(facts, site.reads),
            ))
        return out

    @staticmethod
    def _derivation(facts, reads: Tuple[str, ...]) -> Tuple[str, ...]:
        """The fact derivation chain for the signals a site reads."""
        notes: List[str] = []
        for name in reads:
            notes.extend(facts.explain(name))
        return tuple(notes)


# ---------------------------------------------------------------------------
# Default registry
# ---------------------------------------------------------------------------


def default_checks() -> List[Check]:
    """Fresh instances of every built-in check, semantic ones first."""
    return [
        CombLoopCheck(),
        MultiDriverCheck(),
        RaceCheck(),
        LatchCheck(),
        DeadBranchCheck(),
        ValueRangeCheck(),
        WidthCheck(),
        UnusedSignalCheck(),
        ConstantConditionCheck(),
    ]
