"""The ``repro.analyze/v1`` JSON report: build, write, load, diff.

One report covers one or more designs::

    {
      "schema": "repro.analyze/v1",
      "designs": [
        {"design": "examples/designs/pitfalls.v", "top": "pitfalls",
         "counts": {"error": 1, "warning": 2, "info": 1},
         "findings": [{"kind": "...", "severity": "...", "module": "...",
                       "line": 12, "message": "...", "path": ["a", "b"]}]}
      ],
      "meta": {...}
    }

The CI baseline gate (:func:`diff_reports`) compares finding
*identities* — ``(design, kind, module, message)``, deliberately not
line numbers — so reformatting a design does not churn the baseline,
while a new false positive or a silently-lost detection both fail the
build (same spirit as the bench regression gate).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .diagnostics import Diagnostic, count_by_severity, sort_diagnostics

SCHEMA_ID = "repro.analyze/v1"

FindingIdentity = Tuple[str, str, str, str]  # design, kind, module, message


def design_entry(
    design: str, top: str, diagnostics: Sequence[Diagnostic]
) -> Dict:
    ordered = sort_diagnostics(list(diagnostics))
    return {
        "design": design,
        "top": top,
        "counts": count_by_severity(ordered),
        "findings": [d.to_json() for d in ordered],
    }


def build_report(
    designs: List[Dict], meta: Optional[Dict] = None
) -> Dict:
    return {
        "schema": SCHEMA_ID,
        "designs": designs,
        "meta": dict(meta or {}),
    }


def write_report(path: str, report: Dict) -> None:
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> Dict:
    with open(path) as fh:
        report = json.load(fh)
    validate_report(report)
    return report


def validate_report(report: Dict) -> None:
    if not isinstance(report, dict) or report.get("schema") != SCHEMA_ID:
        raise ValueError(
            f"not a {SCHEMA_ID} report: schema="
            f"{report.get('schema') if isinstance(report, dict) else None!r}"
        )
    designs = report.get("designs")
    if not isinstance(designs, list):
        raise ValueError("report 'designs' must be a list")
    for entry in designs:
        if not isinstance(entry, dict) or "design" not in entry:
            raise ValueError("each design entry needs a 'design' path")
        if not isinstance(entry.get("findings", []), list):
            raise ValueError("design 'findings' must be a list")


def finding_identities(report: Dict) -> Set[FindingIdentity]:
    identities: Set[FindingIdentity] = set()
    for entry in report.get("designs", []):
        design = str(entry.get("design", ""))
        for finding in entry.get("findings", []):
            identities.add((
                design,
                str(finding.get("kind", "")),
                str(finding.get("module", "")),
                str(finding.get("message", "")),
            ))
    return identities


def diff_reports(
    baseline: Dict, current: Dict
) -> Tuple[List[FindingIdentity], List[FindingIdentity]]:
    """Returns ``(new, missing)`` finding identities vs the baseline."""
    base = finding_identities(baseline)
    cur = finding_identities(current)
    return sorted(cur - base), sorted(base - cur)
