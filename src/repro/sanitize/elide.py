"""Proof-driven sanitizer check elision.

``repro.passes.dataflow`` proves per-site facts (known-bits masks and
unsigned intervals).  This module turns the swap-stable tier of those
facts into an :class:`ElisionPlan` that codegen consumes:

* ``ob`` sites (dynamic bit/part-select and memory-write address
  bounds) whose index is proven in range for *any* register state are
  dropped entirely — the check can never fire.
* ``tr`` sites (too-wide assignments) whose value is proven to fit the
  declared width degrade to the plain mask — no lost bits exist.
* ``rr`` sites (register reads) are never removed: a hot swap or
  checkpoint restore can poison any register at any time, so no static
  proof covers them.  Instead every site gains an inline poison-bit
  fast path — the ``_san.rr`` call is only made when the register's
  poison bit is actually set, which preserves findings bit-for-bit
  while taking the hook call off the hot path.
* ``mr``, ``ob``, ``tr``, and ``nw`` sites that cannot be removed get
  the same treatment under ``rr_fast``: the emitted code tests the
  reporting condition inline and only calls the hook when it would
  actually report (or, for ``nw`` on a statically single-writer
  register, writes the tick-visible dict entry inline — the
  cross-block conflict cannot exist).  Hit counters and findings are
  identical by construction.

Only the *stable* tier may justify removal: the from-reset (``env``)
tier feeds the analyzer, but adopted or migrated state is free to
leave its ranges.  The one env-tier consumer here is
:func:`reg_const_init` — registers proven constant from reset — which
hot reload uses to initialize swap-introduced registers to their
proven value instead of poisoning them (the "fully-known init" case).

The site-census helpers at the bottom let the dynamic optimization
passes stack with the sanitizer: a unit (or a pure child subtree) with
zero instrumentation sites can be dead-eliminated or skipped without
silencing any finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

from ..hdl import ast_nodes as ast
from ..ir.netlist import ModuleIR, Netlist

SiteKey = Tuple[str, int]  # (signal/memory name, source line)


@dataclass(frozen=True)
class ElisionPlan:
    """What codegen may skip for one module specialization."""

    ob_safe: FrozenSet[SiteKey] = frozenset()
    tr_safe: FrozenSet[SiteKey] = frozenset()
    # Emit the inline report-condition fast paths (rr poison bit, mr
    # bound+poison, ob bound, tr fit, nw single-writer).  Plan-level
    # rather than per-site: they are sound everywhere or nowhere.
    rr_fast: bool = True
    digest: str = ""

    @property
    def is_empty(self) -> bool:
        return not (self.ob_safe or self.tr_safe or self.rr_fast)


EMPTY_PLAN = ElisionPlan(rr_fast=False)


def build_elision_plan(facts) -> ElisionPlan:
    """Derive a plan from one module's :class:`ModuleValueFacts`.

    Only stable-tier sites qualify; a site missing from the stable
    recording (e.g. inside a branch the walk proved dead) simply stays
    instrumented.
    """
    ob_safe = frozenset(
        key for key, site in facts.stable_ob_sites.items() if site.safe
    )
    tr_safe = frozenset(
        key for key, site in facts.stable_tr_sites.items() if site.safe
    )
    return ElisionPlan(ob_safe=ob_safe, tr_safe=tr_safe, rr_fast=True,
                       digest=facts.digest)


def reg_const_init(facts, ir: ModuleIR) -> Dict[str, int]:
    """Registers proven to hold one constant value in every cycle from
    reset (env tier).  Hot reload initializes a swap-introduced
    register from this map instead of poisoning it: the value cannot
    differ from what a from-reset run would hold, so reading it is not
    reading uninitialized state."""
    out: Dict[str, int] = {}
    for name, sig in ir.signals.items():
        if sig.state_index is None:
            continue
        fact = facts.env.get(name)
        if fact is not None and fact.is_const:
            out[name] = fact.const_value
    return out


# ----------------------------------------------------------------------------
# Instrumentation-site census (conservative: over-counting is sound)
# ----------------------------------------------------------------------------


@dataclass
class _Census:
    ir: ModuleIR
    count: int = 0
    _width_cache: Dict[int, Optional[int]] = field(default_factory=dict)

    def _is_reg(self, name: str) -> bool:
        sig = self.ir.signals.get(name)
        return sig is not None and sig.state_index is not None

    def expr(self, expr) -> None:
        if isinstance(expr, ast.Num):
            return
        if isinstance(expr, ast.Id):
            if self._is_reg(expr.name):
                self.count += 1  # rr
            return
        if isinstance(expr, ast.Index):
            if expr.base in self.ir.memories:
                self.count += 1  # mr (bound + word poison)
            else:
                if self._is_reg(expr.base):
                    self.count += 1  # rr on the base read
                if not isinstance(expr.index, ast.Num):
                    self.count += 1  # ob
            self.expr(expr.index)
            return
        if isinstance(expr, (ast.Slice, ast.IndexedPart)):
            if self._is_reg(expr.base):
                self.count += 1  # rr
            if isinstance(expr, ast.IndexedPart):
                if not isinstance(expr.start, ast.Num):
                    self.count += 1  # ob
                self.expr(expr.start)
            return
        if isinstance(expr, ast.Unary):
            self.expr(expr.operand)
            return
        if isinstance(expr, ast.Binary):
            self.expr(expr.left)
            self.expr(expr.right)
            return
        if isinstance(expr, ast.Ternary):
            self.expr(expr.cond)
            self.expr(expr.if_true)
            self.expr(expr.if_false)
            return
        if isinstance(expr, ast.Concat):
            for part in expr.parts:
                self.expr(part)
            return
        if isinstance(expr, ast.Repl):
            self.expr(expr.value)
            return
        if isinstance(expr, ast.SysCall):
            for arg in expr.args:
                self.expr(arg)
            return
        self.count += 1  # unknown node: assume a site

    def _too_wide(self, value, declared: int) -> bool:
        from ..passes.dataflow import FactEval

        width = FactEval(self.ir, {}, None).width_of(value)
        return width is None or width > declared

    def assign(self, target, value, seq: bool) -> None:
        """Sites one assignment emits.  Signal bit-write indices and
        RMW current-value reads carry no hooks (see StmtGen), so they
        do not count; memory writes wrap their address in ``ob``."""
        self.expr(value)
        if target.index is not None:
            self.expr(target.index)
        if target.name in self.ir.memories:
            self.count += 1  # ob on the write address
            return
        sig = self.ir.signals.get(target.name)
        if sig is None:
            self.count += 1
            return
        if seq:
            self.count += 1  # nw write note
        if target.index is None and target.msb is None \
                and self._too_wide(value, sig.width):
            self.count += 1  # tr

    def stmts(self, stmts, seq: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.Blocking, ast.NonBlocking)):
                self.assign(stmt.target, stmt.value, seq)
            elif isinstance(stmt, ast.If):
                self.expr(stmt.cond)
                self.stmts(stmt.then_body, seq)
                self.stmts(stmt.else_body, seq)
            elif isinstance(stmt, ast.Case):
                self.expr(stmt.subject)
                for labels, body in stmt.arms:
                    for label in labels:
                        self.expr(label)
                    self.stmts(body, seq)
            else:
                self.count += 1


def unit_site_count(ir: ModuleIR, kind: str, index: int) -> int:
    """Instrumentation sites in one schedule unit (comb assign or comb
    block).  Conservative by construction: over-counting only keeps a
    dead unit alive, never the reverse."""
    census = _Census(ir)
    if kind == "assign":
        assign = ir.comb_assigns[index]
        census.assign(assign.target, assign.value, seq=False)
    else:
        census.stmts(ir.comb_blocks[index].body, seq=False)
    return census.count


def module_site_count(ir: ModuleIR) -> int:
    """Every instrumentation site one module emits (comb + seq +
    instance connections)."""
    census = _Census(ir)
    for assign in ir.comb_assigns:
        census.assign(assign.target, assign.value, seq=False)
    for comb in ir.comb_blocks:
        census.stmts(comb.body, seq=False)
    for seq in ir.seq_blocks:
        census.stmts(seq.body, seq=True)
    for inst in ir.instances:
        for conn in inst.input_conns.values():
            census.expr(conn)
    return census.count


def san_free_keys(netlist: Netlist) -> FrozenSet[str]:
    """Module keys whose whole subtree emits zero instrumentation
    sites — safe to dead-eliminate or skip under sanitize."""
    memo: Dict[str, bool] = {}

    def visit(key: str) -> bool:
        cached = memo.get(key)
        if cached is not None:
            return cached
        ir = netlist.modules[key]
        free = module_site_count(ir) == 0 and all(
            visit(inst.child_key) for inst in ir.instances
        )
        memo[key] = free
        return free

    for key in netlist.modules:
        visit(key)
    return frozenset(key for key, free in memo.items() if free)
