"""Runtime sanitizer for generated simulation code (repro.sanitize).

The static analyses in :mod:`repro.analyze` inspect the elaborated
netlist; this package covers the *dynamic* side: codegen
(:mod:`repro.codegen.pygen`) can emit instrumented code that calls into
a shared :class:`SanitizerRuntime` on every register read, memory
access, truncating assignment, and nonblocking write.  Findings come
out as :class:`repro.analyze.Diagnostic` objects, so they flow through
the same gate baselines, ``lint`` surfaces, and server events as the
static checks.

Checks
------

``san-uninit-read``
    A poison-bit shadow per register and per memory word.  Cold start
    is defined power-on zero (the simulator is 2-state); poison is set
    only by state-*introducing* transitions — a hot reload that adds a
    register, a checkpoint restore into a design with state the
    snapshot never had, a memory grown past its snapshotted depth.
``san-oob-index``
    Memory addresses and dynamic bit/part-select indices checked
    against declared bounds *before* the wrap-around masking that the
    clean code applies silently.
``san-trunc-overflow``
    Assignments whose RHS value has bits above the LHS width report
    the lost bits (clean code masks them silently).
``san-nb-write-conflict``
    Runtime confirmation of the analyzer's static ``nb-race`` finding:
    two *different* same-phase always blocks writing overlapping bits
    of one register in the same cycle.

Modes: ``off`` (clean codegen, zero overhead), ``report`` (record
findings, keep simulating), ``trap`` (raise :class:`SanitizerError` at
the first offending cycle).  ``report`` <-> ``trap`` is a runtime
toggle; ``off`` <-> instrumented requires a (cached) recompile plus a
hot swap, which :meth:`repro.live.session.LiveSession.set_sanitize`
performs.
"""

from .elide import (
    EMPTY_PLAN,
    ElisionPlan,
    build_elision_plan,
    module_site_count,
    reg_const_init,
    san_free_keys,
    unit_site_count,
)
from .runtime import (
    CHECK_KINDS,
    SAN_NB_CONFLICT,
    SAN_OOB,
    SAN_TRUNC,
    SAN_UNINIT,
    SANITIZE_CHECK,
    SANITIZE_MODES,
    SanitizerError,
    SanitizerRuntime,
)

__all__ = [
    "CHECK_KINDS",
    "EMPTY_PLAN",
    "ElisionPlan",
    "SAN_NB_CONFLICT",
    "SAN_OOB",
    "SAN_TRUNC",
    "SAN_UNINIT",
    "SANITIZE_CHECK",
    "SANITIZE_MODES",
    "SanitizerError",
    "SanitizerRuntime",
    "build_elision_plan",
    "module_site_count",
    "reg_const_init",
    "san_free_keys",
    "unit_site_count",
]
