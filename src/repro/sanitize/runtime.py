"""The runtime half of the sanitizer: the hooks generated code calls.

Instrumented modules (``compile_module(..., sanitize=True)``) are
exec'd with ``_san`` bound to one shared :class:`SanitizerRuntime` per
session.  The hook names are deliberately terse — they appear once per
instrumented site in the generated source:

======  =====================================================
``rr``  register read (uninit-read via the reg poison bitmap)
``mr``  memory word read (oob-index + uninit-read, returns word)
``ob``  index bound check (oob-index, returns the index)
``tr``  truncating assignment (trunc-overflow, returns the value)
``nw``  nonblocking register write (nb-write-conflict tracking)
======  =====================================================

Every hook is value-transparent: with no finding it returns exactly
what the clean code would have computed, so ``report`` mode never
perturbs simulation semantics (the differential fuzzers assert this).

Findings are deduplicated per (kind, module, signal, line) site so the
findings list is bounded by the number of instrumented sites, while
``hits`` counts every dynamic occurrence.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .. import obs
from ..analyze.diagnostics import SEVERITY_WARNING, Diagnostic
from ..hdl.errors import SimulationError

SAN_UNINIT = "san-uninit-read"
SAN_OOB = "san-oob-index"
SAN_TRUNC = "san-trunc-overflow"
SAN_NB_CONFLICT = "san-nb-write-conflict"

CHECK_KINDS = (SAN_UNINIT, SAN_OOB, SAN_TRUNC, SAN_NB_CONFLICT)

SANITIZE_MODES = ("off", "report", "trap")

# The Diagnostic.check attribution for every sanitizer finding.
SANITIZE_CHECK = "sanitize"

# Instrumentation site info tuples (module, signal, file-absolute line)
# are emitted as a literal ``_SAN_I`` table inside the generated source,
# so artifact-store rehydration needs no side data.
SiteInfo = Tuple[str, str, int]


class SanitizerError(SimulationError):
    """A sanitizer check fired in ``trap`` mode.

    Carries the offending module, signal, and file-absolute source
    line so the trap points at the user's HDL, not the generated code.
    """

    def __init__(self, kind: str, module: str, signal: str, line: int,
                 detail: str):
        self.kind = kind
        self.module = module
        self.signal = signal
        self.line = line
        super().__init__(
            f"[{kind}] {module}.{signal} (line {line}): {detail}"
        )


class SanitizerRuntime:
    """Shared per-session checker state: mode, counters, findings."""

    def __init__(self, mode: str = "report"):
        if mode not in SANITIZE_MODES:
            raise ValueError(
                f"unknown sanitize mode {mode!r}; expected one of "
                f"{SANITIZE_MODES}"
            )
        self.mode = mode
        self.hits: Dict[str, int] = {kind: 0 for kind in CHECK_KINDS}
        self.findings: List[Diagnostic] = []
        self._seen: Set[Tuple[str, str, str, int]] = set()

    # -- bookkeeping -------------------------------------------------------

    def reset(self) -> None:
        """Drop counters and findings (mode is preserved)."""
        self.hits = {kind: 0 for kind in CHECK_KINDS}
        self.findings = []
        self._seen = set()

    def counters(self) -> Dict[str, int]:
        return dict(self.hits)

    def status(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "hits": self.counters(),
            "findings": len(self.findings),
        }

    def _report(self, kind: str, info: SiteInfo, detail: str) -> None:
        self.hits[kind] += 1
        if self.mode == "off":
            return
        module, signal, line = info
        site = (kind, module, signal, line)
        if site not in self._seen:
            self._seen.add(site)
            self.findings.append(
                Diagnostic(
                    kind=kind,
                    module=module,
                    message=f"{signal}: {detail}",
                    line=line,
                    severity=SEVERITY_WARNING,
                    check=SANITIZE_CHECK,
                )
            )
            obs.incr(f"sanitize.{kind}")
        if self.mode == "trap":
            raise SanitizerError(kind, module, signal, line, detail)

    # -- hooks called from generated code ----------------------------------

    def rr(self, poison: int, bit: int, value: int, info: SiteInfo) -> int:
        """Register read: ``poison`` is the instance's reg poison bitmap."""
        if (poison >> bit) & 1:
            self._report(
                SAN_UNINIT, info,
                "read of never-written register "
                "(state introduced by a reload/restore)",
            )
        return value

    def mr(self, mem: list, poison: int, index: int, info: SiteInfo) -> int:
        """Memory word read: bound check, word poison check, then the
        same wrapped access the clean code performs."""
        depth = len(mem)
        if index >= depth:
            self._report(
                SAN_OOB, info,
                f"memory index {index} out of range [0, {depth})",
            )
        addr = index % depth
        if (poison >> addr) & 1:
            self._report(
                SAN_UNINIT, info,
                f"read of never-written memory word [{addr}]",
            )
        return mem[addr]

    def ob(self, value: int, bound: int, info: SiteInfo) -> int:
        """Index bound check (bit/part selects, memory write addresses)."""
        if value >= bound:
            self._report(
                SAN_OOB, info,
                f"index {value} out of range [0, {bound})",
            )
        return value

    def tr(self, value: int, mask: int, info: SiteInfo) -> int:
        """Truncating assignment: report the bits the mask drops."""
        lost = value & ~mask
        if lost:
            self._report(
                SAN_TRUNC, info,
                "assignment value exceeds target width "
                f"(lost bits 0x{lost:x})",
            )
        return value

    def nw(self, writes: dict, bit: int, block: int, mask: int,
           info: SiteInfo) -> None:
        """Nonblocking register write tracking.

        ``writes`` maps reg state-index -> (block id, accumulated write
        mask) for the current cycle; ``tick`` uses the keys to clear
        poison, and a second *different-block* writer touching already
        written bits is the dynamic nb-race.
        """
        prior = writes.get(bit)
        if prior is None:
            writes[bit] = (block, mask)
            return
        prior_block, prior_mask = prior
        if prior_block != block and (prior_mask & mask):
            self._report(
                SAN_NB_CONFLICT, info,
                "nonblocking write collides with a same-cycle writer "
                f"from another always block (bits 0x{prior_mask & mask:x}; "
                "see the static 'nb-race' check)",
            )
        writes[bit] = (block, prior_mask | mask)
