"""JSON trace/metrics report with a stable schema (``repro.obs/v1``).

The one artifact both humans (``python -m repro --trace-json``) and CI
(the bench-smoke regression gate) consume::

    {
      "schema": "repro.obs/v1",
      "meta": {...},                      # free-form caller context
      "spans": [                          # forest of completed spans
        {"name": str, "start_ns": int, "duration_ns": int,
         "attrs": {...}, "children": [...]},
        ...
      ],
      "metrics": {"counters": {...}, "gauges": {...}}
    }

``validate_report`` is the schema contract: tests round-trip through it
and CI artifacts are validated before the regression comparison.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .metrics import MetricsRegistry
from .span import Tracer

SCHEMA_ID = "repro.obs/v1"


def build_report(
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    meta: Optional[Dict] = None,
) -> Dict:
    """Assemble the report dict from a tracer and a metrics registry."""
    spans = [span.to_dict() for span in (tracer.roots if tracer else [])]
    metric_dump = (
        metrics.as_dict()
        if metrics
        else {"counters": {}, "gauges": {}, "histograms": {}}
    )
    return {
        "schema": SCHEMA_ID,
        "meta": dict(meta or {}),
        "spans": spans,
        "metrics": metric_dump,
    }


def write_report(path: str, report: Dict) -> None:
    validate_report(report)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_report(path: str) -> Dict:
    with open(path) as fh:
        report = json.load(fh)
    validate_report(report)
    return report


def validate_report(report: Dict) -> None:
    """Raise ``ValueError`` unless ``report`` matches the v1 schema."""
    if not isinstance(report, dict):
        raise ValueError("report must be a dict")
    if report.get("schema") != SCHEMA_ID:
        raise ValueError(
            f"unknown schema {report.get('schema')!r} (want {SCHEMA_ID!r})"
        )
    for key in ("meta", "spans", "metrics"):
        if key not in report:
            raise ValueError(f"report missing key {key!r}")
    if not isinstance(report["meta"], dict):
        raise ValueError("meta must be a dict")
    if not isinstance(report["spans"], list):
        raise ValueError("spans must be a list")
    for span in report["spans"]:
        _validate_span(span, "spans")
    metrics = report["metrics"]
    if not isinstance(metrics, dict):
        raise ValueError("metrics must be a dict")
    for section in ("counters", "gauges"):
        values = metrics.get(section)
        if not isinstance(values, dict):
            raise ValueError(f"metrics.{section} must be a dict")
        for name, value in values.items():
            if not isinstance(name, str):
                raise ValueError(f"metrics.{section} key {name!r} not a str")
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"metrics.{section}[{name!r}] must be a number"
                )
    # Histograms entered the schema after v1 shipped; reports written
    # before then simply lack the section, so it stays optional.
    histograms = metrics.get("histograms", {})
    if not isinstance(histograms, dict):
        raise ValueError("metrics.histograms must be a dict")
    for name, stats in histograms.items():
        if not isinstance(name, str):
            raise ValueError(f"metrics.histograms key {name!r} not a str")
        if not isinstance(stats, dict):
            raise ValueError(f"metrics.histograms[{name!r}] must be a dict")
        for stat, value in stats.items():
            if not isinstance(stat, str):
                raise ValueError(
                    f"metrics.histograms[{name!r}] key {stat!r} not a str"
                )
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"metrics.histograms[{name!r}][{stat!r}] must be a number"
                )


def _validate_span(span: Dict, where: str) -> None:
    if not isinstance(span, dict):
        raise ValueError(f"{where}: span must be a dict")
    name = span.get("name")
    if not isinstance(name, str) or not name:
        raise ValueError(f"{where}: span name must be a non-empty str")
    here = f"{where}.{name}"
    for key in ("start_ns", "duration_ns"):
        value = span.get(key)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ValueError(f"{here}: {key} must be a non-negative int")
    if not isinstance(span.get("attrs"), dict):
        raise ValueError(f"{here}: attrs must be a dict")
    children = span.get("children")
    if not isinstance(children, list):
        raise ValueError(f"{here}: children must be a list")
    for child in children:
        _validate_span(child, here)


# -- aggregation helpers -----------------------------------------------------


def aggregate_phases(report: Dict) -> Dict[str, Dict[str, float]]:
    """Fold the span forest into per-name totals.

    Returns ``{name: {"count": int, "total_s": float}}``; nested
    occurrences of the same name all count (a name is a phase label,
    not a path).
    """
    totals: Dict[str, Dict[str, float]] = {}

    def visit(span: Dict) -> None:
        entry = totals.setdefault(span["name"], {"count": 0, "total_s": 0.0})
        entry["count"] += 1
        entry["total_s"] += span["duration_ns"] / 1e9
        for child in span["children"]:
            visit(child)

    for span in report["spans"]:
        visit(span)
    return totals


def span_names(report: Dict) -> List[str]:
    """Every distinct span name in the report (sorted)."""
    return sorted(aggregate_phases(report))
