"""Observability for the live loop: tracing spans + metrics + reports.

Module-level facade used by the instrumented hot paths::

    from .. import obs

    with obs.span("compile", pipe=name):
        ...
    obs.incr("compile.cache_misses")

Tracing is **off by default**: ``obs.span`` routes to a
:class:`~repro.obs.span.NullTracer` whose ``span()`` returns one shared
no-op context manager — no span objects are allocated and the cost per
site is a couple of attribute lookups.  ``obs.enable()`` swaps in a
recording :class:`~repro.obs.span.Tracer`; ``obs.report()`` snapshots
the span forest plus the (always-on, dict-backed) metrics registry
into the stable ``repro.obs/v1`` JSON schema.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from .metrics import Histogram, MetricsRegistry
from .report import (
    SCHEMA_ID,
    aggregate_phases,
    build_report,
    load_report,
    span_names,
    validate_report,
    write_report,
)
from .span import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "SCHEMA_ID",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "aggregate_phases",
    "build_report",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_metrics",
    "get_tracer",
    "histogram",
    "Histogram",
    "incr",
    "load_report",
    "record",
    "report",
    "reset",
    "set_tracer",
    "span",
    "span_names",
    "validate_report",
    "write_report",
]

_tracer: Union[Tracer, NullTracer] = NULL_TRACER
_metrics = MetricsRegistry()


# -- tracer lifecycle --------------------------------------------------------


def enable() -> Tracer:
    """Install (and return) a recording tracer."""
    global _tracer
    if not isinstance(_tracer, Tracer):
        _tracer = Tracer()
    return _tracer


def disable() -> None:
    """Return to the zero-allocation null tracer."""
    global _tracer
    _tracer = NULL_TRACER


def enabled() -> bool:
    return _tracer.enabled


def get_tracer() -> Union[Tracer, NullTracer]:
    return _tracer


def set_tracer(tracer: Union[Tracer, NullTracer]) -> None:
    global _tracer
    _tracer = tracer


def get_metrics() -> MetricsRegistry:
    return _metrics


def reset() -> None:
    """Clear recorded spans and metrics (tracer stays enabled/disabled)."""
    _tracer.reset()
    _metrics.reset()


# -- hot-path helpers --------------------------------------------------------


def span(name: str, **attrs):
    """Open a named timing region under the current tracer."""
    return _tracer.span(name, **attrs)


def record(name: str, duration_ns: int, **attrs) -> Optional[Span]:
    """Attach an externally-measured duration as a completed span."""
    return _tracer.record(name, duration_ns, **attrs)


def incr(name: str, amount: Union[int, float] = 1) -> None:
    _metrics.incr(name, amount)


def gauge(name: str, value: Union[int, float]) -> None:
    _metrics.gauge(name, value)


def histogram(name: str, value: Union[int, float]) -> None:
    """Record one observation of a distribution (latency, size, ...)."""
    _metrics.histogram(name, value)


# -- reporting ---------------------------------------------------------------


def report(meta: Optional[Dict] = None) -> Dict:
    """Snapshot the current spans + metrics as a ``repro.obs/v1`` dict."""
    tracer = _tracer if isinstance(_tracer, Tracer) else None
    return build_report(tracer=tracer, metrics=_metrics, meta=meta)
