"""Tracing spans: nested, named timing regions (zero-dependency).

Two tracer implementations share one duck-typed interface:

* :class:`Tracer` — records a tree of :class:`Span` objects using
  ``time.perf_counter_ns``.
* :class:`NullTracer` — the off-by-default fast path.  ``span()``
  returns one shared no-op context manager, so a disabled program
  allocates **no** span objects and pays only a method call per
  instrumentation site (verified by ``tests/test_obs.py``).

Spans nest via a tracer-held stack: entering a span while another is
open attaches it as a child, so instrumented callees (the compiler
inside ``apply_change``, checkpoint capture inside ``run``) land under
their caller's span without any explicit plumbing.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional


class Span:
    """One timed region.  Duration is ``perf_counter_ns`` based."""

    __slots__ = ("name", "attrs", "start_ns", "end_ns", "children", "_tracer")

    def __init__(self, name: str, attrs: Optional[Dict] = None,
                 tracer: "Optional[Tracer]" = None):
        self.name = name
        self.attrs: Dict = attrs or {}
        self.start_ns = 0
        self.end_ns = 0
        self.children: List[Span] = []
        self._tracer = tracer

    # -- context manager -----------------------------------------------------

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._push(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end_ns = time.perf_counter_ns()
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    # -- accessors -----------------------------------------------------------

    @property
    def duration_ns(self) -> int:
        return max(self.end_ns - self.start_ns, 0)

    @property
    def duration_seconds(self) -> float:
        return self.duration_ns / 1e9

    def find(self, name: str) -> "List[Span]":
        """All descendant spans (including self) with ``name``."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def to_dict(self) -> Dict:
        """Stable JSON form (see :mod:`repro.obs.report`)."""
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, {self.duration_ns} ns, "
                f"{len(self.children)} children)")


class Tracer:
    """Records spans into a forest (one root per top-level region)."""

    enabled = True

    def __init__(self):
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **attrs) -> Span:
        """Open a named region: ``with tracer.span("compile"): ...``"""
        return Span(name, attrs or None, tracer=self)

    def record(self, name: str, duration_ns: int, **attrs) -> Span:
        """Attach an already-measured region (e.g. timed in a worker
        process) as a completed span under the current parent."""
        span = Span(name, attrs or None, tracer=None)
        span.start_ns = time.perf_counter_ns() - duration_ns
        span.end_ns = span.start_ns + duration_ns
        self._attach(span)
        return span

    # -- stack management ----------------------------------------------------

    def _push(self, span: Span) -> None:
        self._attach(span)
        self._stack.append(span)

    def _attach(self, span: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)

    def _pop(self, span: Span) -> None:
        # Tolerate exception-unwound or mismatched exits: pop through.
        while self._stack:
            if self._stack.pop() is span:
                break

    # -- accessors -----------------------------------------------------------

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def find(self, name: str) -> List[Span]:
        found: List[Span] = []
        for root in self.roots:
            found.extend(root.find(name))
        return found

    def reset(self) -> None:
        self.roots = []
        self._stack = []


class _NullSpan:
    """Shared no-op context manager — the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """Does nothing, allocates nothing per call."""

    enabled = False
    roots: List[Span] = []  # always empty; shared is fine (never mutated)

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def record(self, name: str, duration_ns: int, **attrs) -> None:
        return None

    def current(self) -> None:
        return None

    def find(self, name: str) -> List[Span]:
        return []

    def reset(self) -> None:
        return None


NULL_TRACER = NullTracer()
