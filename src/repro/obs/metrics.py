"""Counters and gauges for the live loop.

Counters accumulate (cache hits, checkpoints taken, cycles replayed);
gauges hold the latest value of a level (cache size, store bytes).
The registry is always on — an increment is one dict operation, cheap
enough for every hot path that wants one — and is snapshot into the
JSON report next to the span tree.
"""

from __future__ import annotations

from typing import Dict, Union

Number = Union[int, float]


class MetricsRegistry:
    """Flat, dot-named counters and gauges."""

    __slots__ = ("counters", "gauges")

    def __init__(self):
        self.counters: Dict[str, Number] = {}
        self.gauges: Dict[str, Number] = {}

    # -- counters ------------------------------------------------------------

    def incr(self, name: str, amount: Number = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def counter(self, name: str) -> Number:
        return self.counters.get(name, 0)

    # -- gauges --------------------------------------------------------------

    def gauge(self, name: str, value: Number) -> None:
        self.gauges[name] = value

    def gauge_value(self, name: str, default: Number = 0) -> Number:
        return self.gauges.get(name, default)

    # -- lifecycle -----------------------------------------------------------

    def as_dict(self) -> Dict[str, Dict[str, Number]]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters add, gauges overwrite)."""
        for name, value in other.counters.items():
            self.incr(name, value)
        self.gauges.update(other.gauges)

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
