"""Counters, gauges and histograms for the live loop.

Counters accumulate (cache hits, checkpoints taken, cycles replayed);
gauges hold the latest value of a level (cache size, store bytes);
histograms summarize a distribution of observations (request latency,
compile seconds) into count/sum/min/max plus window percentiles.
The registry is always on — an increment is one dict operation, cheap
enough for every hot path that wants one — and is snapshot into the
JSON report next to the span tree.
"""

from __future__ import annotations

from typing import Dict, List, Union

Number = Union[int, float]

# Percentiles are computed over a bounded window of the most recent
# observations so a long-lived server cannot grow a histogram without
# bound; count/sum/min/max remain exact over the full lifetime.
HISTOGRAM_WINDOW = 2048


class Histogram:
    """Running stats plus a bounded window of recent observations."""

    __slots__ = ("count", "total", "min", "max", "window")

    def __init__(self):
        self.count = 0
        self.total: Number = 0
        self.min: Number = 0
        self.max: Number = 0
        self.window: List[Number] = []

    def observe(self, value: Number) -> None:
        if self.count == 0:
            self.min = value
            self.max = value
        else:
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.count += 1
        self.total += value
        self.window.append(value)
        if len(self.window) > HISTOGRAM_WINDOW:
            del self.window[: len(self.window) - HISTOGRAM_WINDOW]

    def percentile(self, q: float) -> Number:
        """Nearest-rank percentile over the retained window (q in 0..100)."""
        if not self.window:
            return 0
        ordered = sorted(self.window)
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
        return ordered[rank]

    def as_dict(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def merge(self, other: "Histogram") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self.min = other.min
            self.max = other.max
        else:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        self.count += other.count
        self.total += other.total
        self.window.extend(other.window)
        if len(self.window) > HISTOGRAM_WINDOW:
            del self.window[: len(self.window) - HISTOGRAM_WINDOW]


class MetricsRegistry:
    """Flat, dot-named counters, gauges and histograms."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self):
        self.counters: Dict[str, Number] = {}
        self.gauges: Dict[str, Number] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- counters ------------------------------------------------------------

    def incr(self, name: str, amount: Number = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def counter(self, name: str) -> Number:
        return self.counters.get(name, 0)

    # -- gauges --------------------------------------------------------------

    def gauge(self, name: str, value: Number) -> None:
        self.gauges[name] = value

    def gauge_value(self, name: str, default: Number = 0) -> Number:
        return self.gauges.get(name, default)

    # -- histograms ----------------------------------------------------------

    def histogram(self, name: str, value: Number) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def histogram_stats(self, name: str) -> Dict[str, Number]:
        hist = self.histograms.get(name)
        return hist.as_dict() if hist is not None else Histogram().as_dict()

    # -- lifecycle -----------------------------------------------------------

    def as_dict(self) -> Dict[str, Dict]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.as_dict() for name, hist in self.histograms.items()
            },
        }

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (counters add, gauges overwrite,
        histograms merge their running stats and windows)."""
        for name, value in other.counters.items():
            self.incr(name, value)
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram()
            mine.merge(hist)

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
