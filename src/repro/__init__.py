"""LiveSim reproduction: a fast hot-reload simulator for HDLs.

A from-scratch Python implementation of the system described in
*LiveSim: A Fast Hot Reload Simulator for HDLs* (ISPASS 2020):

* :mod:`repro.hdl` — LHDL, a Verilog-subset frontend (lexer,
  preprocessor, parser, elaborator).
* :mod:`repro.codegen` — the LiveSim compiler (one shared code object
  per module specialization) and the static cost model.
* :mod:`repro.sim` — the simulation kernel (stages, pipes,
  testbenches).
* :mod:`repro.live` — the live flow: LiveParser, LiveCompiler, hot
  reload, checkpointing, consistency verification, sessions.
* :mod:`repro.baseline` — a Verilator-like flattening/replicating
  compiler used as the evaluation baseline.
* :mod:`repro.hostmodel` — host cache/branch-predictor model behind the
  Table VII numbers.
* :mod:`repro.riscv` — the RV64I PGAS multicore workload.

Quick start::

    from repro import LiveSession
    from repro.sim.testbench import hold_inputs

    session = LiveSession(MY_VERILOG_SOURCE)
    pipe = session.inst_pipe("p0", session.stage_handle_for("top"))
    tb = session.load_testbench(hold_inputs(rst=0))
    session.run(tb, "p0", 100_000)
    report = session.apply_change(EDITED_SOURCE)   # < 2 s hot reload
    print(report.total_seconds, pipe.outputs())
"""

from typing import Dict, Optional, Tuple

from .baseline import BaselineCompiler, BaselineResult
from .codegen import CompiledModule, compile_netlist, design_cost
from .hdl import (
    CompileBudgetExceeded,
    ElaborationError,
    HDLError,
    ParseError,
    SimulationError,
    elaborate,
    parse,
)
from .ir.netlist import Netlist
from .live import (
    Checkpoint,
    CheckpointStore,
    CompileReport,
    ConsistencyReport,
    ERDReport,
    GCPolicy,
    HotReloader,
    LiveCompiler,
    LiveParser,
    LiveSession,
    RegisterTransform,
    RegisterTransformHistory,
    TransformOp,
)
from .sim import Pipe, StageInst, Testbench

__version__ = "1.0.0"

__all__ = [
    "LiveSession",
    "LiveParser",
    "LiveCompiler",
    "HotReloader",
    "Checkpoint",
    "CheckpointStore",
    "GCPolicy",
    "RegisterTransform",
    "RegisterTransformHistory",
    "TransformOp",
    "ERDReport",
    "CompileReport",
    "ConsistencyReport",
    "Pipe",
    "StageInst",
    "Testbench",
    "BaselineCompiler",
    "BaselineResult",
    "CompiledModule",
    "compile_netlist",
    "design_cost",
    "compile_design",
    "parse",
    "elaborate",
    "HDLError",
    "ParseError",
    "ElaborationError",
    "SimulationError",
    "CompileBudgetExceeded",
    "__version__",
]


def compile_design(
    source: str,
    top: str,
    params: Optional[Dict[str, int]] = None,
    mux_style: str = "branch",
    opt: str = "none",
) -> Tuple[Netlist, Dict[str, CompiledModule]]:
    """One-call convenience: parse + elaborate + compile ``source``.

    Returns ``(netlist, library)``; build a runnable UUT with
    ``Pipe(netlist.top, library)``.  ``opt`` above ``"none"`` routes
    compilation through the :mod:`repro.passes` pipeline (constant
    propagation, dead-logic elimination; ``"full"`` adds sensitivity
    guards) — bit-identical to the plain build by construction.
    """
    netlist = elaborate(parse(source), top, params)
    if opt != "none":
        from .passes import run_opt_pipeline

        return netlist, run_opt_pipeline(netlist, opt=opt,
                                         mux_style=mux_style)
    return netlist, compile_netlist(netlist, mux_style)
