"""repro.analyze as a pass.

Wraps the incremental :class:`~repro.analyze.engine.Analyzer` (which
keeps its own fingerprint-keyed cache) so static analysis can ride the
same pipeline as optimization and codegen.  Analysis runs on the
elaborated netlist *before* any optimization applies, so findings are
identical at every opt level — the CI analyze-examples job asserts
exactly that by diffing per-level runs against one baseline.
"""

from __future__ import annotations

from typing import Optional

from ..analyze.engine import Analyzer
from .base import Pass, PassData


class AnalyzePass(Pass):
    name = "analyze"
    requires = ("elab.facts",)
    produces = ("analyze.report",)

    def __init__(self, analyzer: Optional[Analyzer] = None):
        self._analyzer = analyzer if analyzer is not None else Analyzer()

    @property
    def analyzer(self) -> Analyzer:
        return self._analyzer

    def run(self, data: PassData) -> None:
        fingerprint_of = None
        if data.fps:
            fingerprint_of = data.fingerprint
        data.facts["analyze.report"] = self._analyzer.analyze_netlist(
            data.netlist, fingerprint_of
        )
