"""The sanitize-plan and codegen passes (the back of the pipeline).

``CodegenPass`` holds what used to be ``LiveCompiler.compile_top``'s
visit loop: bottom-up over the instance tree, with the in-memory
compile cache in front of the artifact store in front of
``compile_module``.  It assembles each specialization's
:class:`~repro.codegen.optplan.OptPlan` from the optimization facts
and folds the opt level into the cache key, so optimized and plain
artifacts coexist (``repro.store/v3``).
"""

from __future__ import annotations

from typing import Dict

from .. import obs
from ..codegen.optplan import OptPlan
from ..codegen.pygen import CompiledModule, compile_module
from .base import Pass, PassData
from .optimize import _EMPTY_DEAD, _EMPTY_SENS


class SanitizePlanPass(Pass):
    """Decide the instrumentation plan: which runtime generated code
    binds to, and whether instrumentation is on at all.  Kept as its
    own pass so the pipeline's declared dataflow names the dependency
    codegen has always had implicitly."""

    name = "sanitize_plan"
    produces = ("sanitize.plan",)

    def run(self, data: PassData) -> None:
        data.facts["sanitize.plan"] = {
            "enabled": bool(data.sanitize),
            "runtime": data.sanitize_runtime if data.sanitize else None,
        }


class CodegenPass(Pass):
    name = "codegen"
    requires = (
        "elab.facts", "opt.consts", "opt.dead", "opt.sensitivity",
        "sanitize.plan",
    )
    produces = ("codegen.library",)

    def run(self, data: PassData) -> None:
        netlist = data.netlist
        report = data.report
        san_plan = data.facts["sanitize.plan"]
        sanitize = san_plan["enabled"]
        runtime = san_plan["runtime"]
        opt = data.opt
        elab = data.facts["elab.facts"]
        consts_facts = data.facts["opt.consts"]
        dead_facts = data.facts["opt.dead"]
        sens_facts = data.facts["opt.sensitivity"]
        cache = data.compile_cache
        store = data.store
        library: Dict[str, CompiledModule] = {}

        def plan_for(key: str) -> OptPlan:
            consts, widths = consts_facts.get(key, ({}, {}))
            dead = dead_facts.get(key, _EMPTY_DEAD)
            sens = sens_facts.get(key, _EMPTY_SENS)
            return OptPlan(
                level=opt,
                consts=consts,
                const_widths=widths,
                dead_assigns=tuple(sorted(dead.assigns)),
                dead_blocks=tuple(sorted(dead.blocks)),
                guard_blocks=sens.guard_blocks,
                guard_inputs=sens.guard_inputs,
                skip_children=sens.skip_children,
            )

        def child_fp(inst, compiled: CompiledModule) -> str:
            # At opt=full a parent's code depends on child *purity*
            # (pure subtrees skip eval_seq/tick), which the interface
            # fp cannot see — tag it into the key's child component.
            fp = compiled.interface_fp
            if opt == "full" and not sanitize and elab[inst.child_key].pure:
                fp += "+pure"
            return fp

        def visit(key: str) -> CompiledModule:
            if key in library:
                return library[key]
            ir = netlist.modules[key]
            child_fps = tuple(
                child_fp(inst, visit(inst.child_key))
                for inst in ir.instances
            )
            cache_key = (
                key, data.fingerprint(ir.name), child_fps,
                data.mux_style, sanitize, opt,
            )
            if cache is not None:
                cached = cache.get(cache_key)
                if cached is not None:
                    library[key] = cached
                    if report is not None:
                        report.reused_keys.append(key)
                    obs.incr("compile.cache_hits")
                    return cached
            if store is not None:
                if sanitize:
                    # Rehydrated instrumented code must rebind this
                    # session's sanitizer runtime.
                    stored = store.load(cache_key, sanitize_runtime=runtime)
                else:
                    stored = store.load(cache_key)
                if stored is not None:
                    # Disk hit: the generated code is reused with zero
                    # codegen, exactly like a memory hit — it just also
                    # worked across a restart or another session.
                    if cache is not None:
                        cache[cache_key] = stored
                    library[key] = stored
                    if report is not None:
                        report.reused_keys.append(key)
                    return stored
            compiled = compile_module(
                ir,
                netlist,
                data.mux_style,
                sanitize=sanitize,
                runtime=runtime,
                opt_plan=plan_for(key) if opt != "none" else None,
                opt_level=opt,
            )
            if cache is not None:
                cache[cache_key] = compiled
            library[key] = compiled
            if report is not None:
                report.recompiled_keys.append(key)
            obs.incr("compile.cache_misses")
            if store is not None:
                store.save(cache_key, compiled)
            return compiled

        visit(netlist.top)
        data.facts["codegen.library"] = library
