"""The sanitize-plan and codegen passes (the back of the pipeline).

``SanitizePlanPass`` decides the instrumentation plan: which runtime
generated code binds to, which check sites the dataflow facts prove
safe to elide (:mod:`repro.sanitize.elide`), which registers carry a
proven constant init for hot-reload migration, and which subtrees are
instrumentation-free (so the dynamic optimization passes can stack
with the sanitizer).

``CodegenPass`` holds what used to be ``LiveCompiler.compile_top``'s
visit loop: bottom-up over the instance tree, with the in-memory
compile cache in front of the artifact store in front of
``compile_module``.  It assembles each specialization's
:class:`~repro.codegen.optplan.OptPlan` from the optimization facts
and folds the opt level plus the value-facts digest into the cache
key, so plain, optimized, sanitized, and elided artifacts all coexist
(``repro.store/v4``).
"""

from __future__ import annotations

from typing import Dict, Tuple

from .. import obs
from ..codegen.optplan import OptPlan
from ..codegen.pygen import CompiledModule, compile_module
from ..sanitize.elide import (
    ElisionPlan,
    build_elision_plan,
    reg_const_init,
    san_free_keys,
)
from .base import Pass, PassData
from .optimize import _EMPTY_DEAD, _EMPTY_SENS


class SanitizePlanPass(Pass):
    """Decide the instrumentation plan.  Beyond naming codegen's
    implicit runtime dependency, this is where static proof meets the
    dynamic checker: stable-tier value facts elide ob/tr sites, env-
    tier constant registers feed hot reload's poison-free init, and a
    site census marks san-free subtrees for the optimizer."""

    name = "sanitize_plan"
    requires = ("dataflow.facts",)
    produces = ("sanitize.plan",)

    def __init__(self):
        # (key, fp, facts digest) -> (ElisionPlan, const-init map)
        self._cache: Dict[Tuple[str, str, str], Tuple[ElisionPlan, dict]] = {}

    def run(self, data: PassData) -> None:
        enabled = bool(data.sanitize)
        plan: Dict[str, object] = {
            "enabled": enabled,
            "runtime": data.sanitize_runtime if enabled else None,
            "elide": {},
            "const_init": {},
            "san_free": frozenset(),
        }
        if enabled:
            plan["san_free"] = san_free_keys(data.netlist)
            if data.san_elide:
                facts = data.facts["dataflow.facts"]
                elide: Dict[str, ElisionPlan] = {}
                const_init: Dict[str, dict] = {}
                for key, ir in data.netlist.modules.items():
                    mod_facts = facts.get(key)
                    if mod_facts is None:
                        continue
                    cache_key = (key, data.fingerprint(ir.name),
                                 mod_facts.digest)
                    cached = self._cache.get(cache_key)
                    if cached is not None:
                        data.note_reused(self.name, key)
                    else:
                        cached = (
                            build_elision_plan(mod_facts),
                            reg_const_init(mod_facts, ir),
                        )
                        self._cache[cache_key] = cached
                        data.note_computed(self.name, key)
                    elide[key] = cached[0]
                    if cached[1]:
                        const_init[key] = cached[1]
                plan["elide"] = elide
                plan["const_init"] = const_init
        data.facts["sanitize.plan"] = plan


class CodegenPass(Pass):
    name = "codegen"
    requires = (
        "elab.facts", "dataflow.facts", "opt.consts", "opt.dead",
        "opt.sensitivity", "sanitize.plan",
    )
    produces = ("codegen.library",)

    def run(self, data: PassData) -> None:
        netlist = data.netlist
        report = data.report
        san_plan = data.facts["sanitize.plan"]
        sanitize = san_plan["enabled"]
        runtime = san_plan["runtime"]
        elide_plans: Dict[str, ElisionPlan] = san_plan["elide"]
        const_init: Dict[str, dict] = san_plan["const_init"]
        san_free = san_plan["san_free"]
        opt = data.opt
        elab = data.facts["elab.facts"]
        value_facts = data.facts["dataflow.facts"]
        consts_facts = data.facts["opt.consts"]
        dead_facts = data.facts["opt.dead"]
        sens_facts = data.facts["opt.sensitivity"]
        cache = data.compile_cache
        store = data.store
        library: Dict[str, CompiledModule] = {}

        def plan_for(key: str) -> OptPlan:
            consts, widths = consts_facts.get(key, ({}, {}))
            dead = dead_facts.get(key, _EMPTY_DEAD)
            sens = sens_facts.get(key, _EMPTY_SENS)
            return OptPlan(
                level=opt,
                consts=consts,
                const_widths=widths,
                dead_assigns=tuple(sorted(dead.assigns)),
                dead_blocks=tuple(sorted(dead.blocks)),
                guard_blocks=sens.guard_blocks,
                guard_inputs=sens.guard_inputs,
                skip_children=sens.skip_children,
            )

        def plan_fp(key: str) -> str:
            # The generated code is a function of the value facts
            # whenever any consumer is active (optimizer consts, or
            # sanitizer elision); cross-module fact flow means a parent
            # edit can change a child's facts without touching the
            # child's own fingerprint, so the digest must join the key.
            # Empty when dataflow is gated off (opt=none, no sanitize)
            # to keep the legacy key shape.
            mod_facts = value_facts.get(key)
            if mod_facts is None:
                return ""
            fp = mod_facts.digest
            if key in elide_plans:
                fp += "+e"
            return fp

        def child_fp(inst, compiled: CompiledModule) -> str:
            # At opt=full a parent's code depends on child *purity*
            # (pure subtrees skip eval_seq/tick), which the interface
            # fp cannot see — tag it into the key's child component.
            # Under sanitize the skip additionally requires the child
            # subtree to carry zero instrumentation sites.
            fp = compiled.interface_fp
            if opt == "full" and elab[inst.child_key].pure and (
                not sanitize or inst.child_key in san_free
            ):
                fp += "+pure"
            return fp

        def visit(key: str) -> CompiledModule:
            if key in library:
                return library[key]
            ir = netlist.modules[key]
            child_fps = tuple(
                child_fp(inst, visit(inst.child_key))
                for inst in ir.instances
            )
            cache_key = (
                key, data.fingerprint(ir.name), child_fps,
                data.mux_style, sanitize, opt, plan_fp(key),
            )
            if cache is not None:
                cached = cache.get(cache_key)
                if cached is not None:
                    library[key] = cached
                    if report is not None:
                        report.reused_keys.append(key)
                    obs.incr("compile.cache_hits")
                    return cached
            if store is not None:
                if sanitize:
                    # Rehydrated instrumented code must rebind this
                    # session's sanitizer runtime.
                    stored = store.load(cache_key, sanitize_runtime=runtime)
                else:
                    stored = store.load(cache_key)
                if stored is not None:
                    # Disk hit: the generated code is reused with zero
                    # codegen, exactly like a memory hit — it just also
                    # worked across a restart or another session.
                    if cache is not None:
                        cache[cache_key] = stored
                    library[key] = stored
                    if report is not None:
                        report.reused_keys.append(key)
                    return stored
            compiled = compile_module(
                ir,
                netlist,
                data.mux_style,
                sanitize=sanitize,
                runtime=runtime,
                opt_plan=plan_for(key) if opt != "none" else None,
                opt_level=opt,
                elision=elide_plans.get(key) if sanitize else None,
                reg_const_init=const_init.get(key),
            )
            if cache is not None:
                cache[cache_key] = compiled
            library[key] = compiled
            if report is not None:
                report.recompiled_keys.append(key)
            obs.incr("compile.cache_misses")
            if store is not None:
                store.save(cache_key, compiled)
            return compiled

        visit(netlist.top)
        data.facts["codegen.library"] = library
