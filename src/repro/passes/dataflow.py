"""Known-bits & value-range dataflow analysis (``ValueFactsPass``).

Forward abstract interpretation over each module's comb schedule and
sequential transitions.  Every signal gets a :class:`ValueFact` — a
known-bits mask/value pair plus an unsigned interval — computed with
the exact width and masking rules codegen applies at runtime (constant
operands route through :mod:`repro.codegen.optplan`'s folders so the
two can never disagree).  The seq back-edge runs to a fixpoint with
interval widening after :data:`WIDEN_ROUNDS`.

Instance connections propagate facts across the hierarchy in two
phases: a bottom-up pass summarizes every module with unconstrained
inputs, then a top-down pass joins each child's input facts over all
of its instantiation sites — a constant-driven child input specializes
the child (the ROADMAP's cross-module constprop rung).

Two fact tiers per module:

* ``env`` — the *from-reset* invariant (registers start from the
  power-on zero state).  The analyzer's proof-backed checks and the
  sanitizer's check elision consume this tier: sanitizer hooks are
  value-transparent, so eliding a site never changes simulated values,
  and elision is documented as from-reset semantics.
* ``stable`` — the *swap-stable* tier (registers and child outputs
  unconstrained), the only tier the optimizer may use for
  value-affecting folding: a hot swap adopts live state, so optimized
  code must be bit-exact under any register contents.

The final converged walk also records per-site facts for sanitizer
sites (ob/tr) and branch conditions, keyed ``(kind, name, line)`` —
the same granularity the runtime dedupes findings at — so the
elision planner and the proof-backed checks reason about exactly the
sites codegen instruments.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..codegen.exprgen import ExprGen, mask_of
from ..codegen.optplan import _fold_binary, _fold_unary, num_value, num_width
from ..hdl import ast_nodes as ast
from ..hdl.consteval import expr_reads
from ..ir.netlist import ModuleIR, Netlist
from .base import Pass, PassData

WIDEN_ROUNDS = 4   # interval-growth rounds before widening kicks in
MAX_ROUNDS = 12    # hard fixpoint cap (post-widening convergence is fast)
EXPLAIN_DEPTH = 4  # derivation-chain depth surfaced by ``--explain``


# ----------------------------------------------------------------------------
# The abstract domain
# ----------------------------------------------------------------------------


@dataclass(frozen=True)
class ValueFact:
    """Known bits plus an unsigned interval, at a fixed bit width.

    Invariants (maintained by :func:`_make`): ``known_bits`` is a
    subset of ``known_mask``; ``lo <= hi`` and both fit in ``width``
    bits; every concrete value ``v`` satisfies
    ``v & known_mask == known_bits`` and ``lo <= v <= hi``.
    """

    width: int
    known_mask: int
    known_bits: int
    lo: int
    hi: int

    @property
    def mask(self) -> int:
        return mask_of(self.width)

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    @property
    def const_value(self) -> int:
        return self.lo

    @property
    def is_top(self) -> bool:
        return not self.known_mask and self.lo == 0 and self.hi == self.mask

    def truth(self) -> Optional[bool]:
        """Known boolean interpretation, or ``None``."""
        if self.hi == 0:
            return False
        if self.lo >= 1 or self.known_bits:
            return True
        return None

    def describe(self) -> str:
        if self.is_const:
            return f"= {self.lo:#x}"
        parts = [f"in [{self.lo}, {self.hi}]"]
        if self.known_mask:
            parts.append(
                f"bits {self.known_bits:#x} known under {self.known_mask:#x}"
            )
        return ", ".join(parts)

    def key(self) -> Tuple[int, int, int, int, int]:
        return (self.width, self.known_mask, self.known_bits,
                self.lo, self.hi)


_TOP_CACHE: Dict[int, ValueFact] = {}


def vf_top(width: int) -> ValueFact:
    # Memoized: tops are requested constantly in the walk, and sharing
    # the (frozen) instance lets branch merges skip joins by identity.
    fact = _TOP_CACHE.get(width)
    if fact is None:
        fact = _TOP_CACHE[width] = ValueFact(width, 0, 0, 0, mask_of(width))
    return fact


def vf_const(value: int, width: int) -> ValueFact:
    value &= mask_of(width)
    return ValueFact(width, mask_of(width), value, value, value)


def _make(width: int, km: int, kb: int, lo: int, hi: int) -> ValueFact:
    """Normalize and cross-strengthen the two abstractions.  A
    contradiction (empty concretization) degrades to top — sound, if
    imprecise, for code the walk thought reachable."""
    mask = mask_of(width)
    km &= mask
    kb &= km
    lo = max(lo, 0)
    hi = min(hi, mask)
    if lo > hi:
        return vf_top(width)
    # Bits at or above hi's magnitude are provably zero.
    km |= mask & ~mask_of(hi.bit_length())
    # Known-one bits floor the value; unknown bits ceiling it.
    lo = max(lo, kb)
    hi = min(hi, kb | (mask & ~km))
    if lo > hi:
        return vf_top(width)
    if lo == hi:
        return ValueFact(width, mask, lo, lo, lo)
    return ValueFact(width, km, kb, lo, hi)


def vf_to_width(fact: ValueFact, width: int) -> ValueFact:
    """Zero-extend or truncate, mirroring codegen's masking."""
    if width == fact.width:
        return fact
    if width > fact.width:
        # High bits are known zero.
        km = fact.known_mask | (mask_of(width) & ~mask_of(fact.width))
        return _make(width, km, fact.known_bits, fact.lo, fact.hi)
    mask = mask_of(width)
    if fact.hi <= mask:
        lo, hi = fact.lo, fact.hi
    else:
        lo, hi = 0, mask
    return _make(width, fact.known_mask, fact.known_bits, lo, hi)


def vf_join(a: Optional[ValueFact], b: Optional[ValueFact],
            ) -> Optional[ValueFact]:
    if a is None or b is None:
        return None
    if a is b:
        return a
    width = max(a.width, b.width)
    a, b = vf_to_width(a, width), vf_to_width(b, width)
    km = a.known_mask & b.known_mask & ~(a.known_bits ^ b.known_bits)
    return _make(width, km, a.known_bits & km,
                 min(a.lo, b.lo), max(a.hi, b.hi))


def vf_widen(old: ValueFact, new: ValueFact) -> ValueFact:
    """Jump a still-moving interval bound to its extreme so the seq
    fixpoint terminates; the known-bits lattice has finite height and
    needs no help."""
    lo = new.lo if new.lo >= old.lo else 0
    hi = new.hi if new.hi <= old.hi else mask_of(new.width)
    return _make(new.width, new.known_mask, new.known_bits, lo, hi)


def _trailing_known(fact: ValueFact) -> int:
    """Length of the known run starting at bit 0."""
    unknown = ~fact.known_mask & fact.mask
    if not unknown:
        return fact.width
    return (unknown & -unknown).bit_length() - 1


def _as_num(fact: ValueFact, line: int) -> ast.Num:
    return ast.Num(value=fact.const_value, width=fact.width, line=line)


# ----------------------------------------------------------------------------
# Abstract expression evaluation (mirrors ExprGen's width rules)
# ----------------------------------------------------------------------------


class FactEval:
    """Evaluates expressions over an environment of ValueFacts.

    ``eval`` returns ``None`` only for expressions whose width ExprGen
    itself cannot size (the caller treats that as top).  When a
    recorder is attached (the final converged walk), per-site facts
    for ob/tr sites and decided branch conditions are captured.
    """

    def __init__(self, ir: ModuleIR, env: Dict[str, ValueFact],
                 recorder=None):
        self.ir = ir
        self.env = env
        self.rec = recorder

    # -- width mirror (None where ExprGen would raise) -----------------------

    def width_of(self, expr) -> Optional[int]:
        if isinstance(expr, ast.Num):
            return num_width(expr)
        if isinstance(expr, ast.Id):
            sig = self.ir.signals.get(expr.name)
            return sig.width if sig is not None else None
        if isinstance(expr, ast.Unary):
            if expr.op in ("!", "&", "|", "^"):
                return 1
            return self.width_of(expr.operand)
        if isinstance(expr, ast.Binary):
            if expr.op in ("==", "!=", "===", "!==", "<", "<=", ">", ">=",
                           "&&", "||"):
                return 1
            if expr.op in ("<<", ">>", ">>>", "<<<"):
                return self.width_of(expr.left)
            wl, wr = self.width_of(expr.left), self.width_of(expr.right)
            if wl is None or wr is None:
                return None
            return max(wl, wr)
        if isinstance(expr, ast.Ternary):
            wt = self.width_of(expr.if_true)
            wf = self.width_of(expr.if_false)
            if wt is None or wf is None:
                return None
            return max(wt, wf)
        if isinstance(expr, ast.Concat):
            total = 0
            for part in expr.parts:
                wp = self.width_of(part)
                if wp is None:
                    return None
                total += wp
            return total
        if isinstance(expr, ast.Repl):
            if not isinstance(expr.count, ast.Num) or expr.count.value < 1:
                return None
            wv = self.width_of(expr.value)
            return expr.count.value * wv if wv is not None else None
        if isinstance(expr, ast.Index):
            if expr.base in self.ir.memories:
                return self.ir.memories[expr.base].width
            return 1
        if isinstance(expr, ast.Slice):
            if (isinstance(expr.msb, ast.Num) and isinstance(expr.lsb, ast.Num)
                    and expr.msb.value >= expr.lsb.value):
                return expr.msb.value - expr.lsb.value + 1
            return None
        if isinstance(expr, ast.IndexedPart):
            if isinstance(expr.width, ast.Num) and expr.width.value > 0:
                return expr.width.value
            return None
        if isinstance(expr, ast.SysCall):
            if expr.func in ("$signed", "$unsigned"):
                return self.width_of(expr.args[0]) if expr.args else None
            if expr.func == "$clog2":
                return 32
            return None
        return None

    def _top(self, expr) -> Optional[ValueFact]:
        width = self.width_of(expr)
        return vf_top(width) if width is not None else None

    # -- evaluation ----------------------------------------------------------

    def eval(self, expr) -> Optional[ValueFact]:
        if isinstance(expr, ast.Num):
            return vf_const(num_value(expr), num_width(expr))
        if isinstance(expr, ast.Id):
            fact = self.env.get(expr.name)
            return fact if fact is not None else self._top(expr)
        if isinstance(expr, ast.Unary):
            return self._eval_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr)
        if isinstance(expr, ast.Ternary):
            return self._eval_ternary(expr)
        if isinstance(expr, ast.Concat):
            return self._eval_concat(expr)
        if isinstance(expr, ast.Repl):
            return self._eval_repl(expr)
        if isinstance(expr, ast.Index):
            return self._eval_index(expr)
        if isinstance(expr, ast.Slice):
            return self._eval_slice(expr)
        if isinstance(expr, ast.IndexedPart):
            return self._eval_indexed_part(expr)
        if isinstance(expr, ast.SysCall):
            if expr.func in ("$signed", "$unsigned") and expr.args:
                fact = self.eval(expr.args[0])
                width = self.width_of(expr)
                if fact is None or width is None:
                    return self._top(expr)
                return vf_to_width(fact, width)
            return self._top(expr)
        return None

    def _eval_unary(self, expr) -> Optional[ValueFact]:
        fact = self.eval(expr.operand)
        if fact is None:
            return self._top(expr)
        if fact.is_const:
            folded = _fold_unary(expr.op, _as_num(fact, expr.line), expr.line)
            if folded is not None:
                return vf_const(num_value(folded), num_width(folded))
        op, mask = expr.op, fact.mask
        if op == "~":
            return _make(fact.width, fact.known_mask,
                         ~fact.known_bits & fact.known_mask,
                         mask - fact.hi, mask - fact.lo)
        if op == "-":
            if fact.lo >= 1:
                return _make(fact.width, 0, 0,
                             mask + 1 - fact.hi, mask + 1 - fact.lo)
            return vf_top(fact.width)
        if op == "!":
            truth = fact.truth()
            return vf_top(1) if truth is None else vf_const(int(not truth), 1)
        if op == "&":
            if fact.hi < mask or (fact.known_mask & ~fact.known_bits & mask):
                return vf_const(0, 1)
            return vf_top(1)
        if op == "|":
            truth = fact.truth()
            return vf_top(1) if truth is None else vf_const(int(truth), 1)
        return vf_top(1) if op == "^" else self._top(expr)

    def _eval_binary(self, expr) -> Optional[ValueFact]:
        op = expr.op
        # Signed lowerings sign-extend at runtime; stay top there.
        if op == ">>>" and ExprGen.is_signed(expr.left):
            return self._top(expr)
        if (op in ("<", "<=", ">", ">=") and ExprGen.is_signed(expr.left)
                and ExprGen.is_signed(expr.right)):
            return vf_top(1)
        lf, rf = self.eval(expr.left), self.eval(expr.right)
        if lf is not None and rf is not None and lf.is_const and rf.is_const:
            folded = _fold_binary(op, _as_num(lf, expr.line),
                                  _as_num(rf, expr.line), expr.line)
            if folded is not None:
                return vf_const(num_value(folded), num_width(folded))
        wl, wr = self.width_of(expr.left), self.width_of(expr.right)
        if lf is None or rf is None or wl is None or wr is None:
            return self._top(expr)
        lf, rf = vf_to_width(lf, wl), vf_to_width(rf, wr)
        wide = max(wl, wr)
        if op in ("+", "-", "*"):
            a, b = vf_to_width(lf, wide), vf_to_width(rf, wide)
            full = mask_of(wide)
            run = min(_trailing_known(a), _trailing_known(b))
            low = mask_of(run)
            if op == "+":
                kb = (a.known_bits + b.known_bits) & low
                fits = a.hi + b.hi <= full
                lo, hi = (a.lo + b.lo, a.hi + b.hi) if fits else (0, full)
            elif op == "-":
                kb = (a.known_bits - b.known_bits) & low
                fits = a.lo >= b.hi
                lo, hi = (a.lo - b.hi, a.hi - b.lo) if fits else (0, full)
            else:
                kb = (a.known_bits * b.known_bits) & low
                fits = a.hi * b.hi <= full
                lo, hi = (a.lo * b.lo, a.hi * b.hi) if fits else (0, full)
            return _make(wide, low, kb, lo, hi)
        if op == "/":
            if rf.lo >= 1:
                return _make(wide, 0, 0, lf.lo // rf.hi, lf.hi // rf.lo)
            return vf_top(wide)  # division by zero yields the mask
        if op == "%":
            if rf.lo >= 1:
                return _make(wide, 0, 0, 0, min(lf.hi, rf.hi - 1))
            return vf_top(wide)  # mod zero yields the dividend
        if op in ("<<", "<<<"):
            full = mask_of(wl)
            if rf.is_const:
                shift = rf.const_value
                if shift >= wl + 1:
                    return vf_const(0, wl)
                km = ((lf.known_mask << shift) | mask_of(shift)) & full
                kb = (lf.known_bits << shift) & full
                if lf.hi << shift <= full:
                    return _make(wl, km, kb, lf.lo << shift, lf.hi << shift)
                return _make(wl, km, kb, 0, full)
            return _make(wl, mask_of(min(rf.lo, wl)), 0, 0, full)
        if op in (">>", ">>>"):
            if rf.is_const:
                shift = rf.const_value
                keep = max(0, wl - shift)
                km = (lf.known_mask >> shift) | (
                    mask_of(wl) & ~mask_of(keep)
                )
                return _make(wl, km, lf.known_bits >> shift,
                             lf.lo >> shift, lf.hi >> shift)
            return _make(wl, 0, 0, 0, lf.hi)
        if op in ("<", "<=", ">", ">="):
            if op in (">", ">="):
                lf, rf = rf, lf
                op = "<" if op == ">" else "<="
            if lf.hi < rf.lo or (op == "<=" and lf.hi <= rf.lo):
                return vf_const(1, 1)
            if lf.lo > rf.hi or (op == "<" and lf.lo >= rf.hi):
                return vf_const(0, 1)
            return vf_top(1)
        if op in ("==", "!=", "===", "!=="):
            a, b = vf_to_width(lf, wide), vf_to_width(rf, wide)
            both = a.known_mask & b.known_mask
            if (a.hi < b.lo or b.hi < a.lo
                    or (a.known_bits ^ b.known_bits) & both):
                equal = False
            elif a.is_const and b.is_const:
                equal = True  # unequal consts hit the disjoint test above
            else:
                return vf_top(1)
            want = op in ("==", "===")
            return vf_const(int(equal == want), 1)
        if op == "&&":
            lt, rt = lf.truth(), rf.truth()
            if lt is False or rt is False:
                return vf_const(0, 1)
            if lt and rt:
                return vf_const(1, 1)
            return vf_top(1)
        if op == "||":
            lt, rt = lf.truth(), rf.truth()
            if lt or rt:
                return vf_const(1, 1)
            if lt is False and rt is False:
                return vf_const(0, 1)
            return vf_top(1)
        if op in ("&", "|", "^"):
            a, b = vf_to_width(lf, wide), vf_to_width(rf, wide)
            zero_a = a.known_mask & ~a.known_bits
            zero_b = b.known_mask & ~b.known_bits
            span = mask_of(max(a.hi.bit_length(), b.hi.bit_length()))
            if op == "&":
                ones = a.known_bits & b.known_bits
                return _make(wide, zero_a | zero_b | ones, ones,
                             0, min(a.hi, b.hi))
            if op == "|":
                ones = a.known_bits | b.known_bits
                return _make(wide, (zero_a & zero_b) | ones, ones,
                             max(a.lo, b.lo), span)
            km = a.known_mask & b.known_mask
            return _make(wide, km, (a.known_bits ^ b.known_bits) & km,
                         0, span)
        return self._top(expr)

    def _eval_ternary(self, expr) -> Optional[ValueFact]:
        width = self.width_of(expr)
        cond = self.eval(expr.cond)
        truth = cond.truth() if cond is not None else None
        if (self.rec is not None and truth is not None
                and not isinstance(expr.cond, ast.Num)):
            self.rec.cond(expr.line, "ternary", truth, expr.cond, cond)
        if truth is not None:
            arm = expr.if_true if truth else expr.if_false
            fact = self.eval(arm)
            if fact is None or width is None:
                return self._top(expr)
            return vf_to_width(fact, width)
        tf, ff = self.eval(expr.if_true), self.eval(expr.if_false)
        if width is None:
            return None
        if tf is None or ff is None:
            return vf_top(width)
        return vf_join(vf_to_width(tf, width), vf_to_width(ff, width))

    def _eval_concat(self, expr) -> Optional[ValueFact]:
        width = self.width_of(expr)
        if width is None:
            return None
        km = kb = lo = hi = 0
        offset = width
        for part in expr.parts:
            pw = self.width_of(part)
            pf = self.eval(part)
            if pw is None or pf is None:
                return vf_top(width)
            pf = vf_to_width(pf, pw)
            offset -= pw
            km |= pf.known_mask << offset
            kb |= pf.known_bits << offset
            lo |= pf.lo << offset
            hi |= pf.hi << offset
        return _make(width, km, kb, lo, hi)

    def _eval_repl(self, expr) -> Optional[ValueFact]:
        width = self.width_of(expr)
        if width is None:
            return None
        vw = self.width_of(expr.value)
        vf = self.eval(expr.value)
        if vw is None or vf is None:
            return vf_top(width)
        vf = vf_to_width(vf, vw)
        km = kb = lo = hi = 0
        for i in range(expr.count.value):
            shift = i * vw
            km |= vf.known_mask << shift
            kb |= vf.known_bits << shift
            lo |= vf.lo << shift
            hi |= vf.hi << shift
        return _make(width, km, kb, lo, hi)

    def _eval_index(self, expr) -> Optional[ValueFact]:
        index_fact = self.eval(expr.index)
        if expr.base in self.ir.memories:
            # Memory read: mr carries its own bound check and is never
            # elided, but a provably-oob address is still an analyzer
            # finding, so the site is recorded.  Contents untracked.
            spec = self.ir.memories[expr.base]
            if self.rec is not None and not isinstance(expr.index, ast.Num):
                self.rec.ob(expr.base, expr.line, index_fact, spec.depth,
                            expr.index)
            return vf_top(spec.width)
        sig = self.ir.signals.get(expr.base)
        if sig is None:
            return vf_top(1)
        if self.rec is not None and not isinstance(expr.index, ast.Num):
            self.rec.ob(expr.base, expr.line, index_fact, sig.width,
                        expr.index)
        if index_fact is not None and index_fact.is_const:
            bit = index_fact.const_value
            if bit >= sig.width:
                return vf_const(0, 1)  # masked read: selected bit is zero
            base_fact = self.env.get(expr.base)
            if base_fact is not None and (base_fact.known_mask >> bit) & 1:
                return vf_const((base_fact.known_bits >> bit) & 1, 1)
        return vf_top(1)

    def _eval_slice(self, expr) -> Optional[ValueFact]:
        width = self.width_of(expr)
        if width is None:
            return None
        sig = self.ir.signals.get(expr.base)
        base_fact = self.env.get(expr.base)
        if sig is None or base_fact is None:
            return vf_top(width)
        lsb, msb = expr.lsb.value, expr.msb.value
        # The lower bound survives the slice when nothing above the
        # msb can be set: either the slice reaches the top, or the
        # dropped high bits are all known zero.
        above = mask_of(sig.width) & ~mask_of(msb + 1)
        covers_value = msb >= sig.width - 1 or (
            base_fact.known_mask & above == above
            and base_fact.known_bits & above == 0
        )
        lo = base_fact.lo >> lsb if covers_value else 0
        return _make(width, base_fact.known_mask >> lsb,
                     base_fact.known_bits >> lsb, lo, base_fact.hi >> lsb)

    def _eval_indexed_part(self, expr) -> Optional[ValueFact]:
        width = self.width_of(expr)
        if width is None:
            return None
        sig = self.ir.signals.get(expr.base)
        start_fact = self.eval(expr.start)
        if sig is None:
            return vf_top(width)
        bound = sig.width - width + 1 if expr.ascending else sig.width
        if self.rec is not None and not isinstance(expr.start, ast.Num):
            self.rec.ob(expr.base, expr.line, start_fact, bound, expr.start)
        base_fact = self.env.get(expr.base)
        if start_fact is not None and start_fact.is_const \
                and base_fact is not None:
            start = start_fact.const_value
            shift = start if expr.ascending else start - (width - 1)
            if shift < 0:
                return vf_top(width)  # faults at runtime; keep top
            lo = base_fact.lo >> shift if shift + width >= sig.width else 0
            return _make(width, base_fact.known_mask >> shift,
                         base_fact.known_bits >> shift, lo,
                         base_fact.hi >> shift)
        return vf_top(width)


# ----------------------------------------------------------------------------
# Per-site facts (recorded on the final converged walk)
# ----------------------------------------------------------------------------


def _reads_of(expr) -> Tuple[str, ...]:
    return tuple(sorted(expr_reads(expr)))


@dataclass
class ObSite:
    """An index-bound (``ob``) check site.  ``fact is None`` means the
    site's index could not be pinned (never elide, never flag)."""

    fact: Optional[ValueFact]
    bound: int
    reads: Tuple[str, ...]

    @property
    def safe(self) -> bool:
        return self.fact is not None and self.fact.hi < self.bound

    @property
    def provably_oob(self) -> bool:
        return self.fact is not None and self.fact.lo >= self.bound


@dataclass
class TrSite:
    """A truncation (``tr``) check site on a too-wide assignment."""

    fact: Optional[ValueFact]
    declared: int
    value_width: int
    reads: Tuple[str, ...]

    @property
    def safe(self) -> bool:
        return self.fact is not None and self.fact.hi <= mask_of(self.declared)

    @property
    def provably_lossy(self) -> bool:
        if self.fact is None:
            return False
        kept = mask_of(self.declared)
        return self.fact.lo > kept or bool(self.fact.known_bits & ~kept)


@dataclass
class CondSite:
    """A branch condition; ``truth`` is set only when every evaluation
    of the site decided the same way."""

    truth: Optional[bool]
    reads: Tuple[str, ...]
    detail: str


@dataclass
class CaseSite:
    """A case arm; ``dead`` survives only if every evaluation proved
    the arm unmatchable."""

    dead: bool
    reads: Tuple[str, ...]
    detail: str


class _SiteRecorder:
    def __init__(self):
        self.ob_sites: Dict[Tuple[str, int], ObSite] = {}
        self.tr_sites: Dict[Tuple[str, int], TrSite] = {}
        self.cond_sites: Dict[Tuple[int, str], CondSite] = {}
        self.case_sites: Dict[Tuple[int, int], CaseSite] = {}

    def ob(self, name, line, fact, bound, index_expr):
        key = (name, line)
        prev = self.ob_sites.get(key)
        if prev is None:
            self.ob_sites[key] = ObSite(fact, bound, _reads_of(index_expr))
        elif prev.bound != bound:
            # Two sites collide on the runtime's dedup key with
            # different bounds: give up on both.
            self.ob_sites[key] = ObSite(None, min(prev.bound, bound),
                                        prev.reads)
        else:
            self.ob_sites[key] = ObSite(vf_join(prev.fact, fact), bound,
                                        prev.reads)

    def tr(self, name, line, fact, declared, value_width, value_expr):
        key = (name, line)
        prev = self.tr_sites.get(key)
        if prev is None:
            self.tr_sites[key] = TrSite(fact, declared, value_width,
                                        _reads_of(value_expr))
        else:
            self.tr_sites[key] = TrSite(
                vf_join(prev.fact, fact), declared,
                max(prev.value_width, value_width), prev.reads,
            )

    def cond(self, line, kind, truth, cond_expr, fact):
        key = (line, kind)
        prev = self.cond_sites.get(key)
        if prev is None:
            detail = fact.describe() if fact is not None else ""
            self.cond_sites[key] = CondSite(truth, _reads_of(cond_expr),
                                            detail)
        elif prev.truth != truth:
            self.cond_sites[key] = CondSite(None, prev.reads, prev.detail)

    def case_arm(self, line, arm_index, dead, subject_expr, detail):
        key = (line, arm_index)
        prev = self.case_sites.get(key)
        if prev is None:
            self.case_sites[key] = CaseSite(dead, _reads_of(subject_expr),
                                            detail)
        elif prev.dead and not dead:
            self.case_sites[key] = CaseSite(False, prev.reads, prev.detail)


# ----------------------------------------------------------------------------
# Per-module results
# ----------------------------------------------------------------------------


@dataclass
class ModuleValueFacts:
    """Everything the analyzer, sanitizer planner, and optimizer
    consume for one module specialization."""

    key: str
    env: Dict[str, ValueFact]          # from-reset tier
    stable: Dict[str, ValueFact]       # swap-stable tier (regs top)
    input_facts: Dict[str, ValueFact]
    always_written: frozenset
    ob_sites: Dict[Tuple[str, int], ObSite] = field(default_factory=dict)
    tr_sites: Dict[Tuple[str, int], TrSite] = field(default_factory=dict)
    cond_sites: Dict[Tuple[int, str], CondSite] = field(default_factory=dict)
    case_sites: Dict[Tuple[int, int], CaseSite] = field(default_factory=dict)
    # Same sites re-proven under the swap-stable tier (registers top):
    # the only proofs strong enough to elide runtime checks, because
    # hot-swap adoption and checkpoint restore can put registers
    # anywhere inside their declared width.
    stable_ob_sites: Dict[Tuple[str, int], ObSite] = field(
        default_factory=dict)
    stable_tr_sites: Dict[Tuple[str, int], TrSite] = field(
        default_factory=dict)
    origins: Dict[str, Tuple[int, str]] = field(default_factory=dict)
    deps: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    digest: str = ""

    def explain(self, name: str, depth: int = EXPLAIN_DEPTH) -> List[str]:
        """Derivation chain for a signal's fact (``--explain``)."""
        lines: List[str] = []
        seen: Set[str] = set()

        def walk(sig: str, level: int) -> None:
            if level >= depth or sig in seen:
                return
            seen.add(sig)
            fact = self.env.get(sig)
            if fact is None:
                return
            origin_line, kind = self.origins.get(sig, (0, "unconstrained"))
            where = f" (line {origin_line}, {kind})" if origin_line \
                else f" ({kind})"
            lines.append("  " * level + f"{sig} {fact.describe()}{where}")
            if fact.is_top:
                return
            for dep in self.deps.get(sig, ()):
                walk(dep, level + 1)

        walk(name, 0)
        return lines


def _facts_digest(*envs: Dict[str, ValueFact]) -> str:
    digest = hashlib.sha256()
    for env in envs:
        digest.update(b"|")
        for name in sorted(env):
            digest.update(f"{name}:{env[name].key()};".encode())
    return digest.hexdigest()[:24]


# ----------------------------------------------------------------------------
# Per-module abstract interpretation
# ----------------------------------------------------------------------------


class _ModuleAnalysis:
    def __init__(self, ir: ModuleIR, input_facts, stable_input_facts,
                 child_envs, child_stable_envs, input_origins=None):
        self.ir = ir
        self.input_facts = input_facts
        self.stable_input_facts = stable_input_facts
        self.child_envs = child_envs            # [inst idx] -> {port: fact}
        self.child_stable_envs = child_stable_envs
        self.input_origins = input_origins or {}
        self.rec: Optional[_SiteRecorder] = None
        self.origins: Dict[str, Tuple[int, str]] = {}
        self.deps: Dict[str, Tuple[str, ...]] = {}

    def _reg_signals(self):
        return [(name, sig) for name, sig in self.ir.signals.items()
                if sig.state_index is not None]

    def run(self, key: str) -> ModuleValueFacts:
        ir = self.ir
        if ir.needs_fixpoint:
            env = {name: vf_top(sig.width)
                   for name, sig in ir.signals.items()}
            return ModuleValueFacts(
                key=key, env=env, stable=dict(env),
                input_facts=dict(self.input_facts),
                always_written=frozenset(),
                digest=_facts_digest(env, env, self.input_facts),
            )
        regs = {name: vf_const(0, sig.width)
                for name, sig in self._reg_signals()}
        rounds = 0
        moving: Set[str] = set()
        while True:
            env = self._comb_walk(regs, self.input_facts, self.child_envs)
            writes, assigned = self._seq_walk(env)
            moving = set()
            new_regs = {}
            for name, cur in regs.items():
                written = writes.get(name)
                if written is None:
                    nxt = cur
                else:
                    nxt = written if name in assigned \
                        else vf_join(written, cur)
                new = vf_join(cur, nxt)
                if rounds >= WIDEN_ROUNDS:
                    new = vf_widen(cur, new)
                if new.key() != cur.key():
                    moving.add(name)
                new_regs[name] = new
            regs = new_regs
            rounds += 1
            if not moving or rounds >= MAX_ROUNDS:
                break
        for name in moving:  # cap hit: degrade the stragglers, stay sound
            regs[name] = vf_top(regs[name].width)

        # Final converged walk with site recording + provenance.
        self.rec = _SiteRecorder()
        env = self._comb_walk(regs, self.input_facts, self.child_envs,
                              record=True)
        _, assigned = self._seq_walk(env, record=True)
        env_rec = self.rec

        # Swap-stable tier: registers and child outputs unconstrained.
        # Sites recorded under this tier hold for *any* register state
        # (hot-swap adoption, checkpoint restore, pokes), which is what
        # makes them strong enough to elide runtime checks; the env
        # tier above is from-reset only and feeds the analyzer.
        top_regs = {name: vf_top(sig.width)
                    for name, sig in self._reg_signals()}
        self.rec = _SiteRecorder()
        stable = self._comb_walk(top_regs, self.stable_input_facts,
                                 self.child_stable_envs, record=True)
        self._seq_walk(stable, record=True)
        stable_rec = self.rec

        return ModuleValueFacts(
            key=key, env=env, stable=stable,
            input_facts=dict(self.input_facts),
            always_written=frozenset(assigned),
            ob_sites=env_rec.ob_sites,
            tr_sites=env_rec.tr_sites,
            cond_sites=env_rec.cond_sites,
            case_sites=env_rec.case_sites,
            stable_ob_sites=stable_rec.ob_sites,
            stable_tr_sites=stable_rec.tr_sites,
            origins=self.origins,
            deps=self.deps,
            digest=_facts_digest(env, stable, self.input_facts),
        )

    # -- the comb schedule walk ----------------------------------------------

    def _comb_walk(self, regs, input_facts, child_envs, record=False):
        ir = self.ir
        rec = self.rec if record else None
        env: Dict[str, ValueFact] = {}
        for name, sig in ir.signals.items():
            if sig.kind == "input":
                given = input_facts.get(name)
                env[name] = vf_to_width(given, sig.width) if given \
                    else vf_top(sig.width)
                if record:
                    self.origins[name] = (
                        sig.line, self.input_origins.get(name, "module input")
                    )
        env.update(regs)
        ev = FactEval(ir, env, rec)
        for inst_index, port, target in ir.early_bind:
            self._bind_child_output(env, child_envs, inst_index, port,
                                    target, record)
        for kind, index in ir.schedule:
            if kind == "assign":
                assign = ir.comb_assigns[index]
                self._exec_assign(ev, env, None, assign.target, assign.value,
                                  assign.line)
                if record and assign.target.msb is None \
                        and assign.target.index is None:
                    self.origins[assign.target.name] = (assign.line, "assign")
                    self.deps[assign.target.name] = _reads_of(assign.value)
            elif kind == "block":
                comb = ir.comb_blocks[index]
                for name in comb.defines:
                    sig = ir.signals.get(name)
                    if sig is not None:
                        env[name] = vf_const(0, sig.width)
                    if record:
                        self.origins[name] = (comb.line, "always block")
                        self.deps[name] = tuple(sorted(comb.reads))
                self._exec_stmts(ev, comb.body, env, None, set())
            else:  # inst
                inst = ir.instances[index]
                if record:
                    for conn in inst.input_conns.values():
                        ev.eval(conn)  # record sites inside connections
                for port, target in inst.output_conns.items():
                    self._bind_child_output(env, child_envs, index, port,
                                            target, record)
        return env

    def _bind_child_output(self, env, child_envs, inst_index, port, target,
                           record):
        ir = self.ir
        sig = ir.signals.get(target)
        if sig is None:
            return
        fact = child_envs[inst_index].get(port)
        env[target] = vf_to_width(fact, sig.width) if fact is not None \
            else vf_top(sig.width)
        if record:
            inst = ir.instances[inst_index]
            self.origins[target] = (
                inst.line, f"output '{port}' of {inst.child_key}"
            )
            self.deps[target] = tuple(sorted(inst.reads))

    # -- sequential transition -----------------------------------------------

    def _seq_walk(self, env, record=False):
        rec = self.rec if record else None
        merged: Dict[str, ValueFact] = {}
        assigned_all: Set[str] = set()
        for seq in self.ir.seq_blocks:
            ev = FactEval(self.ir, env, rec)
            writes: Dict[str, ValueFact] = {}
            assigned: Set[str] = set()
            self._exec_stmts(ev, seq.body, env, writes, assigned)
            if record:
                from ..hdl.consteval import stmt_reads_writes

                block_reads = tuple(sorted(stmt_reads_writes(seq.body)[0]))
                for name in writes:
                    self.origins[name] = (seq.line, "register")
                    self.deps[name] = block_reads
            for name, fact in writes.items():
                prev = merged.get(name)
                merged[name] = fact if prev is None else vf_join(prev, fact)
            assigned_all |= assigned
        return merged, assigned_all

    # -- statements ----------------------------------------------------------

    def _exec_stmts(self, ev, stmts, env, writes, assigned):
        for stmt in stmts:
            if isinstance(stmt, (ast.Blocking, ast.NonBlocking)):
                if self._exec_assign(ev, env, writes, stmt.target,
                                     stmt.value, stmt.line):
                    assigned.add(stmt.target.name)
            elif isinstance(stmt, ast.If):
                self._exec_if(ev, stmt, env, writes, assigned)
            elif isinstance(stmt, ast.Case):
                self._exec_case(ev, stmt, env, writes, assigned)

    def _exec_assign(self, ev, env, writes, target, value, line) -> bool:
        ir = self.ir
        rec = ev.rec
        if target.name in ir.memories:
            # Memory write: the address carries an ob site keyed on the
            # memory name; contents stay untracked.
            if target.index is not None:
                addr_fact = ev.eval(target.index)
                if rec is not None and not isinstance(target.index, ast.Num):
                    rec.ob(target.name, line, addr_fact,
                           ir.memories[target.name].depth, target.index)
            ev.eval(value)
            return False
        sig = ir.signals.get(target.name)
        if sig is None:
            ev.eval(value)
            return False
        dest = writes if writes is not None else env
        if target.index is not None or target.msb is not None:
            # Partial write: bit index carries an ob site; the merged
            # register/wire value degrades to top (RMW untracked).
            if target.index is not None:
                index_fact = ev.eval(target.index)
                if rec is not None and not isinstance(target.index, ast.Num):
                    rec.ob(target.name, line, index_fact, sig.width,
                           target.index)
            ev.eval(value)
            dest[target.name] = vf_top(sig.width)
            return True  # the RMW result still lands every cycle
        value_width = ev.width_of(value)
        fact = ev.eval(value)
        if rec is not None and value_width is not None \
                and value_width > sig.width:
            rec.tr(target.name, line, fact, sig.width, value_width, value)
        dest[target.name] = vf_to_width(fact, sig.width) \
            if fact is not None else vf_top(sig.width)
        return True

    def _exec_if(self, ev, stmt, env, writes, assigned):
        cond_fact = ev.eval(stmt.cond)
        truth = cond_fact.truth() if cond_fact is not None else None
        if ev.rec is not None and not isinstance(stmt.cond, ast.Num):
            ev.rec.cond(stmt.line, "if", truth, stmt.cond, cond_fact)
        if truth is True:
            self._exec_stmts(ev, stmt.then_body, env, writes, assigned)
            return
        if truth is False:
            self._exec_stmts(ev, stmt.else_body, env, writes, assigned)
            return
        self._exec_branches(ev, [stmt.then_body, stmt.else_body], env,
                            writes, assigned, include_identity=False)

    def _exec_branches(self, ev, bodies, env, writes, assigned,
                       include_identity):
        """Run each body on private copies and merge the results
        pointwise; ``assigned`` gains only names every path assigns."""
        env_results, write_results, assigned_results = [], [], []
        for body in bodies:
            env_copy = dict(env)
            writes_copy = dict(writes) if writes is not None else None
            assigned_copy: Set[str] = set()
            branch_ev = FactEval(self.ir, env_copy, ev.rec)
            self._exec_stmts(branch_ev, body, env_copy, writes_copy,
                             assigned_copy)
            env_results.append(env_copy)
            write_results.append(writes_copy)
            assigned_results.append(assigned_copy)
        if include_identity:
            env_results.append(dict(env))
            write_results.append(dict(writes) if writes is not None else None)
            assigned_results.append(set())
        self._merge_into(env, env_results, env)
        if writes is not None:
            # An unwritten path leaves the pending slot preloaded with
            # the current value, so the fallback is ``env``.
            self._merge_into(writes, write_results, env)
        survivors = assigned_results[0]
        for extra in assigned_results[1:]:
            survivors = survivors & extra
        assigned |= survivors

    def _merge_into(self, dst, results, fallback):
        keys = set()
        for result in results:
            keys.update(result)
        for name in keys:
            # Branch envs start as dict(env) copies, so a key no branch
            # touched holds the SAME fact object everywhere — keep it
            # without joining (the dominant case on wide register files).
            facts = []
            degraded = False
            for result in results:
                fact = result.get(name)
                if fact is None:
                    fact = fallback.get(name)
                if fact is None:
                    degraded = True
                    break
                facts.append(fact)
            if degraded or not facts:
                sig = self.ir.signals.get(name)
                width = sig.width if sig is not None else 1
                dst[name] = vf_top(width)
                continue
            merged = facts[0]
            for fact in facts[1:]:
                if fact is not merged:
                    merged = vf_join(merged, fact)
            dst[name] = merged

    def _exec_case(self, ev, stmt, env, writes, assigned):
        subject_fact = ev.eval(stmt.subject)
        syntactic_const = isinstance(stmt.subject, ast.Num)
        feasible = []
        reachable = True
        default_body = None
        default_index = None
        for index, (labels, body) in enumerate(stmt.arms):
            if not labels:
                default_body, default_index = body, index
                continue
            if not reachable:
                self._record_arm(ev, stmt, index, True, subject_fact,
                                 syntactic_const, "earlier arm always hits")
                continue
            status = self._match_status(ev, subject_fact, labels)
            if status == "never":
                self._record_arm(ev, stmt, index, True, subject_fact,
                                 syntactic_const,
                                 "labels excluded by subject range")
                continue
            self._record_arm(ev, stmt, index, False, subject_fact,
                             syntactic_const, "")
            feasible.append(body)
            if status == "always":
                reachable = False
        if default_body is not None:
            if reachable:
                feasible.append(default_body)
                self._record_arm(ev, stmt, default_index, False,
                                 subject_fact, syntactic_const, "")
            else:
                self._record_arm(ev, stmt, default_index, True, subject_fact,
                                 syntactic_const, "earlier arm always hits")
        if len(feasible) == 1 and not (reachable and default_body is None):
            self._exec_stmts(ev, feasible[0], env, writes, assigned)
            return
        if not feasible:
            return
        self._exec_branches(
            ev, feasible, env, writes, assigned,
            include_identity=(reachable and default_body is None),
        )

    def _record_arm(self, ev, stmt, index, dead, subject_fact,
                    syntactic_const, why):
        if ev.rec is None or syntactic_const:
            return
        detail = ""
        if dead:
            described = subject_fact.describe() if subject_fact else "?"
            detail = f"subject {described}; {why}"
        ev.rec.case_arm(stmt.line, index, dead, stmt.subject, detail)

    def _match_status(self, ev, subject_fact, labels) -> str:
        """'always' / 'never' / 'maybe' for one arm's label list."""
        if subject_fact is None:
            return "maybe"
        any_maybe = False
        for label in labels:
            label_fact = ev.eval(label)
            if label_fact is None:
                any_maybe = True
                continue
            wide = max(subject_fact.width, label_fact.width)
            a = vf_to_width(subject_fact, wide)
            b = vf_to_width(label_fact, wide)
            both = a.known_mask & b.known_mask
            if (a.hi < b.lo or b.hi < a.lo
                    or (a.known_bits ^ b.known_bits) & both):
                continue  # this label can never match
            if a.is_const and b.is_const:
                return "always"
            any_maybe = True
        return "maybe" if any_maybe else "never"


# ----------------------------------------------------------------------------
# Cross-module propagation
# ----------------------------------------------------------------------------


def _topo_module_keys(netlist: Netlist) -> List[str]:
    """Module keys, children before parents."""
    order: List[str] = []
    done: Set[str] = set()

    def visit(key: str) -> None:
        if key in done:
            return
        done.add(key)
        for inst in netlist.modules[key].instances:
            visit(inst.child_key)
        order.append(key)

    for key in netlist.modules:
        visit(key)
    return order


def _join_port(slot: Dict[str, Optional[ValueFact]], port: str,
               fact: Optional[ValueFact]) -> None:
    if port in slot:
        prev = slot[port]
        slot[port] = None if prev is None or fact is None \
            else vf_join(prev, fact)
    else:
        slot[port] = fact


def _inputs_all_top(ir: ModuleIR, input_facts: Dict[str, ValueFact]) -> bool:
    """True when no port fact constrains anything once widened to the
    port's width (a narrow connection makes high bits known-zero, so
    width conversion must happen before judging)."""
    for port, fact in input_facts.items():
        sig = ir.signals.get(port)
        if sig is None:
            continue
        f = vf_to_width(fact, sig.width)
        if f.known_mask != 0 or f.lo != 0 or f.hi != f.mask:
            return False
    return True


def compute_netlist_facts(netlist: Netlist, fps=None, cache=None,
                          on_computed=None, on_reused=None,
                          ) -> Dict[str, ModuleValueFacts]:
    """Two-phase cross-module analysis.

    Phase 1 walks bottom-up with unconstrained inputs, producing
    context-free summaries (parents read child output facts from
    these).  Phase 2 walks top-down, joining each child's input facts
    over every instantiation site — a constant-driven input
    specializes the child.  Results cache per
    ``(key, fingerprint, child digests, input digest)`` so a hot
    reload recomputes only the dirty module (and parents/children only
    when the facts crossing the boundary actually changed).
    """
    fps = fps or {}
    topo = _topo_module_keys(netlist)

    summaries: Dict[str, ModuleValueFacts] = {}
    for key in topo:
        ir = netlist.modules[key]
        child_digests = tuple(
            summaries[inst.child_key].digest for inst in ir.instances
        )
        cache_key = ("p1", key, fps.get(ir.name, ""), child_digests)
        cached = cache.get(cache_key) if cache is not None else None
        if cached is None:
            cached = _ModuleAnalysis(
                ir, {}, {},
                [summaries[inst.child_key].env for inst in ir.instances],
                [summaries[inst.child_key].stable for inst in ir.instances],
            ).run(key)
            if cache is not None:
                cache[cache_key] = cached
        summaries[key] = cached

    results: Dict[str, ModuleValueFacts] = {}
    joined_full: Dict[str, Dict[str, Optional[ValueFact]]] = {}
    joined_stable: Dict[str, Dict[str, Optional[ValueFact]]] = {}
    site_counts: Dict[str, int] = {}
    for key in reversed(topo):
        ir = netlist.modules[key]
        if key == netlist.top:
            input_facts: Dict[str, ValueFact] = {}
            stable_inputs: Dict[str, ValueFact] = {}
        else:
            input_facts = {
                port: fact
                for port, fact in joined_full.get(key, {}).items()
                if fact is not None
            }
            stable_inputs = {
                port: fact
                for port, fact in joined_stable.get(key, {}).items()
                if fact is not None
            }
        child_digests = tuple(
            summaries[inst.child_key].digest for inst in ir.instances
        )
        cache_key = ("p2", key, fps.get(ir.name, ""), child_digests,
                     _facts_digest(input_facts, stable_inputs))
        cached = cache.get(cache_key) if cache is not None else None
        if cached is not None:
            if on_reused is not None:
                on_reused(key)
        elif _inputs_all_top(ir, input_facts) \
                and _inputs_all_top(ir, stable_inputs):
            # Every instantiation site drives this module with
            # unconstrained values, so the context-free phase-1 walk
            # already IS the specialized result — skip the fixpoint.
            cached = summaries[key]
            if cache is not None:
                cache[cache_key] = cached
            if on_computed is not None:
                on_computed(key)
        else:
            sites = site_counts.get(key, 0)
            origin = (
                f"joined over {sites} instantiation site(s)"
                if sites else "module input"
            )
            cached = _ModuleAnalysis(
                ir, input_facts, stable_inputs,
                [summaries[inst.child_key].env for inst in ir.instances],
                [summaries[inst.child_key].stable for inst in ir.instances],
                input_origins={port: origin for port in input_facts},
            ).run(key)
            if cache is not None:
                cache[cache_key] = cached
            if on_computed is not None:
                on_computed(key)
        results[key] = cached

        full_ev = FactEval(ir, cached.env)
        stable_ev = FactEval(ir, cached.stable)
        for inst in ir.instances:
            site_counts[inst.child_key] = site_counts.get(
                inst.child_key, 0
            ) + 1
            full_slot = joined_full.setdefault(inst.child_key, {})
            stable_slot = joined_stable.setdefault(inst.child_key, {})
            for port, conn in inst.input_conns.items():
                _join_port(full_slot, port, full_ev.eval(conn))
                _join_port(stable_slot, port, stable_ev.eval(conn))
    return results


# ----------------------------------------------------------------------------
# The pass
# ----------------------------------------------------------------------------


class ValueFactsPass(Pass):
    """Computes ``dataflow.facts``: key -> :class:`ModuleValueFacts`.

    Skipped entirely (empty fact dict) when nothing downstream
    consumes it — plain ``opt=none`` unsanitized compiles pay zero
    analysis cost.  Per-module results cache on the pass instance so
    hot reloads recompute only dirty modules; cross-module input
    digests keep a parent's edit from invalidating an unaffected
    child and vice versa.
    """

    name = "dataflow"
    requires = ("elab.facts",)
    produces = ("dataflow.facts",)

    def __init__(self):
        self._cache: Dict[tuple, ModuleValueFacts] = {}

    def run(self, data: PassData) -> None:
        if data.opt == "none" and not data.sanitize:
            data.facts["dataflow.facts"] = {}
            return
        data.facts["dataflow.facts"] = compute_netlist_facts(
            data.netlist,
            fps=data.fps,
            cache=self._cache,
            on_computed=lambda key: data.note_computed(self.name, key),
            on_reused=lambda key: data.note_reused(self.name, key),
        )
