"""The optimization passes: constant propagation, dead-logic
elimination, sensitivity pruning.

All three are *facts-only*: they never mutate the shared ModuleIR.
Codegen consumes their conclusions through an
:class:`~repro.codegen.optplan.OptPlan`.

Results cache on the pass instance under the compiler's fingerprint
keys — ``(spec key, module fingerprint)`` — so a hot reload re-runs
each pass only for the dirty module (the same discipline as the
compile and analyze caches).  Cache hits/misses surface as
``passes.<name>.cache_hits/misses`` counters and per-pass key lists on
the compile report.

Fixpoint modules are exempt from every optimization: their comb locals
round-trip through the memo slot between iteration passes, so neither
branch pruning, dead elimination, nor guards can reason about a single
linear evaluation.

Under sanitize the dynamic passes no longer stand down wholesale (the
PR 9 posture): dead elimination drops only units the site census
(:mod:`repro.sanitize.elide`) proves instrumentation-free, and
sensitivity guards stay sound because a skipped body's checks are
pure functions of the unchanged guard key — any finding they would
re-report is already deduplicated per site, and every poison-
introducing transition (swap, restore) lands in cold guard slots.
Child-subtree skips additionally require the subtree to be san-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple

from ..codegen.exprgen import mask_of
from ..codegen.optplan import (
    num_value,
    num_width,
    optimize_stmts,
    substitute_expr,
)
from ..hdl import ast_nodes as ast
from ..hdl.consteval import expr_reads, stmt_reads_writes
from ..ir.netlist import ModuleIR
from ..sanitize.elide import unit_site_count
from .base import Pass, PassData

MAX_GUARD_KEY = 12  # widest input tuple worth building every cycle


# -- shared residual-read helpers (what the emitted code still reads) --------


def _expr_residual_reads(expr, consts, widths) -> Set[str]:
    return expr_reads(substitute_expr(expr, consts, widths))


def _stmts_residual_reads(stmts, consts, widths) -> Set[str]:
    reads, _ = stmt_reads_writes(optimize_stmts(stmts, consts, widths))
    return reads


def _stmt_weight(stmts) -> int:
    """Assignment count, recursively — the 'is a guard worth it' proxy."""
    total = 0
    for stmt in stmts:
        if isinstance(stmt, (ast.NonBlocking, ast.Blocking)):
            total += 1
        elif isinstance(stmt, ast.If):
            total += _stmt_weight(stmt.then_body) + _stmt_weight(stmt.else_body)
        elif isinstance(stmt, ast.Case):
            total += sum(_stmt_weight(body) for _, body in stmt.arms)
    return total


# -- constant propagation ----------------------------------------------------


class ConstPropPass(Pass):
    """Find comb wires whose single driving assign folds to a literal.

    Produces ``opt.consts``: key -> (consts, widths) where ``consts``
    maps signal name to its value already masked to the declared width.
    Active at every opt level above ``none`` (including under sanitize:
    substitution only replaces *wire* reads, which carry no poison, and
    the driving assign keeps its trunc instrumentation).

    Beyond syntactic folding, the pass consumes the swap-stable tier of
    ``dataflow.facts``: a wire whose interval proof pins one value in
    *any* register state (e.g. a comparison decided by widths alone)
    folds even when its expression never reduces to a literal — the
    range-based comparison/dead-branch rung.  Only the stable tier may
    justify this: folding is value-affecting, and hot swaps adopt live
    state outside the from-reset ranges.
    """

    name = "constprop"
    requires = ("elab.facts", "dataflow.facts")
    produces = ("opt.consts",)

    def __init__(self):
        self._cache: Dict[Tuple[str, str, str], Tuple[dict, dict]] = {}

    def run(self, data: PassData) -> None:
        out: Dict[str, Tuple[dict, dict]] = {}
        if data.opt != "none":
            value_facts = data.facts["dataflow.facts"]
            for key, ir in data.netlist.modules.items():
                mod_facts = value_facts.get(key)
                digest = mod_facts.digest if mod_facts is not None else ""
                cache_key = (key, data.fingerprint(ir.name), digest)
                cached = self._cache.get(cache_key)
                if cached is not None:
                    data.note_reused(self.name, key)
                else:
                    stable = mod_facts.stable if mod_facts is not None \
                        else None
                    cached = self._find_consts(ir, stable)
                    self._cache[cache_key] = cached
                    data.note_computed(self.name, key)
                out[key] = cached
        data.facts["opt.consts"] = out

    @staticmethod
    def _find_consts(ir: ModuleIR,
                     stable: Optional[dict] = None) -> Tuple[dict, dict]:
        if ir.needs_fixpoint:
            return {}, {}
        blocked: Set[str] = set()
        seen_assign: Set[str] = set()
        for assign in ir.comb_assigns:
            name = assign.target.name
            if name in seen_assign:
                blocked.add(name)  # multi-driver
            seen_assign.add(name)
            if assign.target.index is not None or assign.target.msb is not None:
                blocked.add(name)  # partial writes never fold
        for comb in ir.comb_blocks:
            blocked.update(comb.defines)
        for inst in ir.instances:
            blocked.update(inst.output_conns.values())
        for _, _, target in ir.early_bind:
            blocked.add(target)

        consts: Dict[str, int] = {}
        widths: Dict[str, int] = {}
        for kind, index in ir.schedule:
            if kind != "assign":
                continue
            assign = ir.comb_assigns[index]
            name = assign.target.name
            if name in blocked:
                continue
            declared = ir.signals[name].width
            folded = substitute_expr(assign.value, consts, widths)
            if isinstance(folded, ast.Num):
                value = num_value(folded)
                if num_width(folded) > declared:
                    value &= mask_of(declared)
                consts[name] = value
                widths[name] = declared
                continue
            fact = stable.get(name) if stable is not None else None
            if fact is not None and fact.is_const:
                consts[name] = fact.const_value & mask_of(declared)
                widths[name] = declared
        return consts, widths


# -- dead-logic elimination --------------------------------------------------


@dataclass(frozen=True)
class DeadFacts:
    assigns: FrozenSet[int]
    blocks: FrozenSet[int]
    # Residual reads per *live* comb block (what the optimized body
    # still references) — the sensitivity pass keys guards on these.
    block_reads: Dict[int, FrozenSet[str]]


_EMPTY_DEAD = DeadFacts(assigns=frozenset(), blocks=frozenset(),
                        block_reads={})


class DeadLogicPass(Pass):
    """Backward liveness over the schedule: comb assigns/blocks whose
    defines reach no output, no sequential block, and no instance
    connection are dropped from the emitted evals.

    Reads are *residual* — computed on the constant-substituted,
    branch-pruned bodies, exactly what codegen will emit — so a signal
    read only inside a pruned branch keeps nothing alive.  Under
    sanitize, a value-dead unit is only dropped when the site census
    proves it emits zero instrumentation (instrumented reads are
    side-effecting findings); anything carrying a site stays live.
    """

    name = "deadlogic"
    requires = ("opt.consts",)
    produces = ("opt.dead",)

    def __init__(self):
        self._cache: Dict[Tuple[str, str, bool], DeadFacts] = {}

    def run(self, data: PassData) -> None:
        out: Dict[str, DeadFacts] = {}
        if data.opt != "none":
            consts_facts = data.facts["opt.consts"]
            sanitize = bool(data.sanitize)
            for key, ir in data.netlist.modules.items():
                cache_key = (key, data.fingerprint(ir.name), sanitize)
                cached = self._cache.get(cache_key)
                if cached is not None:
                    data.note_reused(self.name, key)
                else:
                    consts, widths = consts_facts.get(key, ({}, {}))
                    cached = self._find_dead(ir, consts, widths,
                                             protect_sites=sanitize)
                    self._cache[cache_key] = cached
                    data.note_computed(self.name, key)
                out[key] = cached
        data.facts["opt.dead"] = out

    @staticmethod
    def _find_dead(ir: ModuleIR, consts: dict, widths: dict,
                   protect_sites: bool = False) -> DeadFacts:
        if ir.needs_fixpoint:
            return _EMPTY_DEAD
        needed: Set[str] = set(ir.outputs)
        for seq in ir.seq_blocks:
            needed |= _stmts_residual_reads(seq.body, consts, widths)
        # Instance conns seed the walk up front, not at their schedule
        # position: eval_seq calls every child at the *end* of the
        # function with all input conns (including seq-only ports), so
        # an assign scheduled after the instance is still consumed.
        for inst in ir.instances:
            for conn in inst.input_conns.values():
                needed |= _expr_residual_reads(conn, consts, widths)
        dead_assigns: Set[int] = set()
        dead_blocks: Set[int] = set()
        block_reads: Dict[int, FrozenSet[str]] = {}
        for kind, index in reversed(ir.schedule):
            if kind == "inst":
                continue
            if kind == "block":
                comb = ir.comb_blocks[index]
                live = any(name in needed for name in comb.defines)
                if not live and protect_sites \
                        and unit_site_count(ir, "block", index):
                    live = True  # dropping it would silence findings
                if live:
                    reads = frozenset(
                        _stmts_residual_reads(comb.body, consts, widths)
                    )
                    block_reads[index] = reads
                    needed |= reads
                else:
                    dead_blocks.add(index)
            else:  # assign
                assign = ir.comb_assigns[index]
                live = assign.target.name in needed
                if not live and protect_sites \
                        and unit_site_count(ir, "assign", index):
                    live = True
                if live:
                    needed |= _expr_residual_reads(
                        assign.value, consts, widths
                    )
                else:
                    dead_assigns.add(index)
        return DeadFacts(
            assigns=frozenset(dead_assigns),
            blocks=frozenset(dead_blocks),
            block_reads=block_reads,
        )


# -- sensitivity pruning -----------------------------------------------------


@dataclass(frozen=True)
class SensFacts:
    guard_blocks: Tuple[int, ...]
    guard_inputs: Dict[int, Tuple[str, ...]]
    skip_children: Tuple[int, ...]


_EMPTY_SENS = SensFacts(guard_blocks=(), guard_inputs={}, skip_children=())


class SensitivityPrunePass(Pass):
    """opt=full only: emit per-block input-change guards in eval_seq
    (a comb block whose residual inputs match last cycle's restores its
    cached outputs instead of re-evaluating), and mark pure child
    subtrees whose eval_seq/tick calls can be elided entirely.

    Guards are sound without invalidation because a guarded block's
    outputs are a pure function of its key: block-local defines start
    from a deterministic zero-init, so a stale (key, outputs) pair in
    state simply never matches a live key it would corrupt.  That same
    argument carries under sanitize — a skipped re-eval would only
    re-report per-site-deduplicated findings — with one rider: every
    state-introducing transition (swap, checkpoint restore) must land
    in cold guard slots, which hot reload's ``make_state`` and stage
    restore both guarantee.  Child skips additionally require the
    child subtree to be instrumentation-free (san-free).
    """

    name = "sensitivity"
    requires = ("elab.facts", "opt.dead", "sanitize.plan")
    produces = ("opt.sensitivity",)

    def __init__(self):
        self._cache: Dict[Tuple[str, str, Tuple[bool, ...]], SensFacts] = {}

    def run(self, data: PassData) -> None:
        out: Dict[str, SensFacts] = {}
        if data.opt == "full":
            elab = data.facts["elab.facts"]
            dead_facts = data.facts["opt.dead"]
            san_plan = data.facts["sanitize.plan"]
            sanitize = san_plan["enabled"]
            san_free = san_plan["san_free"]
            for key, ir in data.netlist.modules.items():
                child_skip = tuple(
                    elab[inst.child_key].pure
                    and (not sanitize or inst.child_key in san_free)
                    for inst in ir.instances
                )
                cache_key = (key, data.fingerprint(ir.name), child_skip)
                cached = self._cache.get(cache_key)
                if cached is not None:
                    data.note_reused(self.name, key)
                else:
                    cached = self._plan_module(
                        ir, dead_facts.get(key, _EMPTY_DEAD), child_skip
                    )
                    self._cache[cache_key] = cached
                    data.note_computed(self.name, key)
                out[key] = cached
        data.facts["opt.sensitivity"] = out

    @staticmethod
    def _plan_module(
        ir: ModuleIR, dead: DeadFacts, child_skip: Tuple[bool, ...]
    ) -> SensFacts:
        if ir.needs_fixpoint:
            return _EMPTY_SENS
        skip_children = tuple(
            index for index, skip in enumerate(child_skip) if skip
        )
        guards = []
        guard_inputs: Dict[int, Tuple[str, ...]] = {}
        for index, comb in enumerate(ir.comb_blocks):
            reads = dead.block_reads.get(index)
            if reads is None:  # dead block, or dead pass stood down
                continue
            if not comb.defines:
                continue
            if any(name in ir.memories for name in reads):
                continue  # memory contents are not cheap-keyable
            if _stmt_weight(comb.body) < 2:
                continue  # guard overhead would beat the body
            key_names = tuple(sorted(
                name for name in reads
                if name not in comb.defines and name in ir.signals
            ))
            if len(key_names) > MAX_GUARD_KEY:
                continue
            guards.append(index)
            guard_inputs[index] = key_names
        return SensFacts(
            guard_blocks=tuple(guards),
            guard_inputs=guard_inputs,
            skip_children=skip_children,
        )
