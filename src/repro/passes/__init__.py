"""repro.passes — the composable netlist pass framework.

Compilation stages (elaboration facts, static analysis, optimization,
sanitizer planning, code generation) are :class:`Pass` objects that
declare the facts they require and produce; :class:`PassManager`
topo-orders and validates a pipeline at build time, and
:class:`PassData` is the shared carrier one compile threads through it.

``build_compile_pipeline()`` is the compiler's default pipeline
(:class:`~repro.live.compiler_live.LiveCompiler` owns one instance, so
per-pass caches persist across hot reloads); ``run_opt_pipeline`` is
the one-shot convenience ``repro.compile_design(opt=...)`` uses.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..codegen.optplan import OPT_LEVELS
from ..codegen.pygen import CompiledModule
from ..ir.netlist import Netlist
from .analyze import AnalyzePass
from .base import Pass, PassData, PassManager, PassPipeline, PipelineError
from .codegen import CodegenPass, SanitizePlanPass
from .dataflow import (
    ModuleValueFacts,
    ValueFact,
    ValueFactsPass,
    compute_netlist_facts,
)
from .facts import ElaborateFactsPass
from .optimize import ConstPropPass, DeadLogicPass, SensitivityPrunePass

__all__ = [
    "OPT_LEVELS",
    "AnalyzePass",
    "CodegenPass",
    "ConstPropPass",
    "DeadLogicPass",
    "ElaborateFactsPass",
    "ModuleValueFacts",
    "Pass",
    "PassData",
    "PassManager",
    "PassPipeline",
    "PipelineError",
    "SanitizePlanPass",
    "SensitivityPrunePass",
    "ValueFact",
    "ValueFactsPass",
    "build_compile_pipeline",
    "compute_netlist_facts",
    "run_opt_pipeline",
]


def build_compile_pipeline() -> PassPipeline:
    """The default compile pipeline, validated and topo-ordered.

    Passes are registered deliberately out of dependency order — the
    manager's topological sort is what sequences them.
    """
    manager = PassManager([
        CodegenPass(),
        SensitivityPrunePass(),
        DeadLogicPass(),
        ConstPropPass(),
        SanitizePlanPass(),
        ValueFactsPass(),
        ElaborateFactsPass(),
    ])
    return manager.build()


def run_opt_pipeline(
    netlist: Netlist,
    opt: str = "none",
    mux_style: str = "branch",
    sanitize: bool = False,
    sanitize_runtime=None,
    san_elide: bool = True,
    fps: Optional[Dict[str, str]] = None,
) -> Dict[str, CompiledModule]:
    """One-shot compile of ``netlist`` through the pass pipeline.

    Returns key -> CompiledModule for every specialization under the
    top.  Fresh pass instances each call: no cross-call caching.
    """
    if opt not in OPT_LEVELS:
        raise ValueError(f"unknown opt level {opt!r} (know {OPT_LEVELS})")
    data = PassData(
        netlist=netlist,
        fps=fps or {},
        mux_style=mux_style,
        sanitize=sanitize,
        sanitize_runtime=sanitize_runtime,
        san_elide=san_elide,
        opt=opt,
    )
    build_compile_pipeline().run(data)
    return data.facts["codegen.library"]
