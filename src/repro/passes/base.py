"""The pass framework: PassData carrier, Pass protocol, PassManager.

A :class:`Pass` declares the fact names it ``requires`` and
``produces``; :class:`PassManager.build` topologically orders the
registered passes by those declarations and validates the pipeline —
a missing producer or a dependency cycle raises
:class:`PipelineError` at build time, not mid-compile.

Facts live in ``PassData.facts`` (fact name -> value).  Passes that
want hot-reload-grade incrementality keep per-specialization caches on
the pass *instance* keyed by the compiler's fingerprint keys (the pass
instances live as long as the :class:`~repro.live.compiler_live.\
LiveCompiler` that owns the pipeline), and report what they reused via
:meth:`PassData.note_computed` / :meth:`PassData.note_reused` — the
counters the ERD report and ``stats`` surface.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..ir.netlist import Netlist


class PipelineError(Exception):
    """A pipeline cannot be built: missing requirement or cycle."""


@dataclass
class PassData:
    """The shared carrier every pass reads from and writes to."""

    netlist: Netlist
    fps: Dict[str, str] = field(default_factory=dict)  # module name -> fp
    mux_style: str = "branch"
    sanitize: bool = False
    sanitize_runtime: Any = None
    # Proof-driven check elision (repro.sanitize.elide).  On by
    # default; the bench flips it off to measure the overhead delta.
    san_elide: bool = True
    opt: str = "none"
    compile_cache: Optional[Dict] = None
    store: Any = None
    report: Any = None  # CompileReport, when driven by LiveCompiler
    facts: Dict[str, Any] = field(default_factory=dict)

    def fingerprint(self, module_name: str) -> str:
        return self.fps.get(module_name, "")

    # -- per-pass cache accounting (merged into ERDReport / stats) -----------

    def note_computed(self, pass_name: str, key: str) -> None:
        obs.incr(f"passes.{pass_name}.cache_misses")
        if self.report is not None:
            self.report.pass_computed.setdefault(pass_name, []).append(key)

    def note_reused(self, pass_name: str, key: str) -> None:
        obs.incr(f"passes.{pass_name}.cache_hits")
        if self.report is not None:
            self.report.pass_reused.setdefault(pass_name, []).append(key)


class Pass:
    """Base class: declare requires/produces, implement ``run``."""

    name: str = "pass"
    requires: Tuple[str, ...] = ()
    produces: Tuple[str, ...] = ()

    def run(self, data: PassData) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r} "
            f"requires={list(self.requires)} produces={list(self.produces)}>"
        )


class PassPipeline:
    """A validated, topologically ordered pass sequence."""

    def __init__(self, passes: Sequence[Pass]):
        self.passes: Tuple[Pass, ...] = tuple(passes)

    @property
    def order(self) -> List[str]:
        return [p.name for p in self.passes]

    def run(self, data: PassData) -> PassData:
        for p in self.passes:
            started = time.perf_counter()
            with obs.span(f"passes.{p.name}", opt=data.opt):
                p.run(data)
            elapsed = time.perf_counter() - started
            if data.report is not None:
                seconds = data.report.pass_seconds
                seconds[p.name] = seconds.get(p.name, 0.0) + elapsed
            missing = [f for f in p.produces if f not in data.facts]
            if missing:
                raise PipelineError(
                    f"pass {p.name!r} declared but did not produce "
                    f"facts {missing}"
                )
        return data


class PassManager:
    """Registers passes and builds validated pipelines."""

    def __init__(self, passes: Optional[Sequence[Pass]] = None):
        self._passes: List[Pass] = list(passes or ())

    def add(self, p: Pass) -> "PassManager":
        self._passes.append(p)
        return self

    @property
    def passes(self) -> List[Pass]:
        return list(self._passes)

    def build(self) -> PassPipeline:
        """Topo-order by requires/produces (stable: registration order
        breaks ties).  Raises :class:`PipelineError` when a required
        fact has no producer or the dependency graph has a cycle."""
        producers: Dict[str, Pass] = {}
        for p in self._passes:
            for fact in p.produces:
                if fact in producers:
                    raise PipelineError(
                        f"fact {fact!r} produced by both "
                        f"{producers[fact].name!r} and {p.name!r}"
                    )
                producers[fact] = p
        for p in self._passes:
            for fact in p.requires:
                if fact not in producers:
                    raise PipelineError(
                        f"pass {p.name!r} requires fact {fact!r} "
                        "but no registered pass produces it"
                    )
        ordered: List[Pass] = []
        emitted: set = set()
        pending = list(self._passes)
        while pending:
            progressed = False
            for p in list(pending):
                if all(fact in emitted for fact in p.requires):
                    ordered.append(p)
                    emitted.update(p.produces)
                    pending.remove(p)
                    progressed = True
            if not progressed:
                names = [p.name for p in pending]
                raise PipelineError(
                    f"dependency cycle among passes {names}"
                )
        return PassPipeline(ordered)
