"""Elaboration facts: the cheap whole-netlist summary later passes key on.

Produces ``elab.facts``: per-specialization structural facts derived
bottom-up from the elaborated IR —

* ``comb_signature`` — what a parent-side analysis can observe of the
  module (interface fp + per-output dependencies), shared with
  :mod:`repro.analyze`;
* ``pure`` — True when the whole *subtree* is stateless (no registers,
  memories, sequential blocks, or fixpoint iteration anywhere below):
  its ``eval_seq``/``tick`` calls are no-ops a parent may elide.

This pass recomputes every run (it is a dict walk, far cheaper than a
cache probe per module would be worth); the expensive passes downstream
cache per fingerprint key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analyze.engine import comb_signature
from ..ir.netlist import ModuleIR
from .base import Pass, PassData


@dataclass(frozen=True)
class ElabFacts:
    comb_signature: str
    pure: bool


def module_is_pure(ir: ModuleIR, pure_children: bool) -> bool:
    """Stateless module body: nothing survives a clock edge.

    Fixpoint modules are excluded even when register-free — they carry
    comb-local iteration state in the memo slot across passes, and
    their tick clears it.
    """
    return (
        pure_children
        and ir.num_regs == 0
        and not ir.memories
        and not ir.seq_blocks
        and not ir.needs_fixpoint
    )


class ElaborateFactsPass(Pass):
    name = "elab_facts"
    produces = ("elab.facts",)

    def run(self, data: PassData) -> None:
        netlist = data.netlist
        facts: Dict[str, ElabFacts] = {}

        def visit(key: str) -> ElabFacts:
            if key in facts:
                return facts[key]
            ir = netlist.modules[key]
            pure_children = all(
                visit(inst.child_key).pure for inst in ir.instances
            )
            facts[key] = ElabFacts(
                comb_signature=comb_signature(ir),
                pure=module_is_pure(ir, pure_children),
            )
            return facts[key]

        for key in netlist.modules:
            visit(key)
        data.facts["elab.facts"] = facts
