"""Elaborated netlist IR.

One :class:`ModuleIR` exists per *specialization* — a ``(module name,
resolved parameter set)`` pair.  This is the unit the paper compiles
once and shares across every instance (Fig. 4d): all 256 cores of the
16x16 PGAS point at the same six ModuleIRs and, downstream, the same
six compiled code objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..hdl import ast_nodes as ast


def spec_key(module_name: str, params: Dict[str, int]) -> str:
    """Stable identity of a module specialization."""
    if not params:
        return module_name
    inner = ",".join(f"{k}={params[k]}" for k in sorted(params))
    return f"{module_name}#({inner})"


@dataclass
class SignalIR:
    """A scalar or vector signal (port, wire, or register)."""

    name: str
    width: int
    kind: str  # "input" | "output" | "wire" | "reg"
    line: int = 0
    # For kind == "reg": slot in the instance state array.
    state_index: Optional[int] = None
    # True when an output port is driven directly by a register.
    is_registered_output: bool = False

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1


@dataclass
class MemoryIR:
    """A word-addressed memory (``reg [W-1:0] mem [0:D-1]``)."""

    name: str
    width: int
    depth: int
    mem_index: int = 0  # slot in the instance memory array
    line: int = 0

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1


@dataclass
class CombAssignIR:
    """A continuous assignment, parameters already folded."""

    target: ast.LValue
    value: ast.Expr
    line: int = 0
    # Names read / defined, filled by the scheduler.
    reads: Tuple[str, ...] = ()
    defines: str = ""


@dataclass
class CombBlockIR:
    """An ``always @(*)`` block: procedural combinational logic."""

    body: List[ast.Stmt]
    line: int = 0
    reads: Tuple[str, ...] = ()
    defines: Tuple[str, ...] = ()


@dataclass
class SeqBlockIR:
    """An ``always @(posedge clock)`` block."""

    clock: str
    body: List[ast.Stmt]
    line: int = 0


@dataclass
class InstanceIR:
    """A child instantiation, bound to a child specialization key."""

    name: str
    child_key: str
    # port name -> expression for inputs; port name -> signal name for outputs.
    input_conns: Dict[str, ast.Expr] = field(default_factory=dict)
    output_conns: Dict[str, str] = field(default_factory=dict)
    line: int = 0
    reads: Tuple[str, ...] = ()  # everything the input connections read
    # Subset of ``reads`` feeding child inputs that combinationally
    # affect child outputs — the only reads that constrain scheduling.
    comb_reads: Tuple[str, ...] = ()
    defines: Tuple[str, ...] = ()
    # Child output ports that are *registered* in the child.  Their
    # values are plain state reads, available before the child
    # evaluates, so they impose no scheduling constraint and are
    # pre-bound at the top of the parent's eval.
    registered_ports: Tuple[str, ...] = ()
    # Targets of ``output_conns`` driven combinationally (the only
    # defines that constrain scheduling).
    comb_defines: Tuple[str, ...] = ()
    # Comb-driven output ports whose value depends on NO child input
    # (e.g. ``assign pc = pc_q``): correct under any argument values,
    # so the scheduler may pre-bind them with a zero-args prepass call
    # to break wiring cycles (rings, mutual feedback).
    dep_free_ports: Tuple[str, ...] = ()


@dataclass
class ModuleIR:
    """One elaborated module specialization."""

    name: str
    key: str
    params: Dict[str, int] = field(default_factory=dict)
    signals: Dict[str, SignalIR] = field(default_factory=dict)
    memories: Dict[str, MemoryIR] = field(default_factory=dict)
    inputs: List[str] = field(default_factory=list)  # declared order
    outputs: List[str] = field(default_factory=list)  # declared order
    comb_assigns: List[CombAssignIR] = field(default_factory=list)
    comb_blocks: List[CombBlockIR] = field(default_factory=list)
    seq_blocks: List[SeqBlockIR] = field(default_factory=list)
    instances: List[InstanceIR] = field(default_factory=list)
    # Evaluation order over ("assign", i) / ("block", i) / ("inst", i)
    # units; set by the scheduler.  ``needs_fixpoint`` is True when the
    # unit graph has cycles and a single pass may not settle.
    schedule: List[Tuple[str, int]] = field(default_factory=list)
    # Instances whose dep-free outputs must be bound by a zero-args
    # prepass before the scheduled body: list of (instance index,
    # output port, target signal).  Filled by the scheduler when it
    # needs them to break wiring cycles.
    early_bind: List[Tuple[int, str, str]] = field(default_factory=list)
    needs_fixpoint: bool = False
    num_regs: int = 0
    clock_names: Tuple[str, ...] = ()
    # Per-output combinational input dependencies (repro.ir.dataflow):
    # output port -> set of input ports it combinationally depends on.
    output_deps: Dict[str, "set"] = field(default_factory=dict)

    @property
    def comb_inputs(self) -> "set":
        """Inputs that combinationally affect at least one output.

        These — and only these — are arguments of the compiled
        ``eval_out``; everything else is delivered in phase 2.
        """
        result: set = set()
        for deps in self.output_deps.values():
            result |= deps
        return result

    @property
    def comb_input_ports(self) -> List[str]:
        """comb_inputs in declared input order (the eval_out ABI)."""
        comb = self.comb_inputs
        return [name for name in self.inputs if name in comb]

    @property
    def reg_names(self) -> List[str]:
        ordered = [None] * self.num_regs  # type: ignore[list-item]
        for sig in self.signals.values():
            if sig.state_index is not None:
                ordered[sig.state_index] = sig.name  # type: ignore[call-overload]
        return list(ordered)  # type: ignore[arg-type]

    def interface_fingerprint(self) -> str:
        """Hash of the port interface.

        When this changes between module versions, every parent module
        must be recompiled too (the swap is no longer interface
        compatible) — mirroring the paper's observation that interface
        edits widen the recompilation set.
        """
        import hashlib

        digest = hashlib.sha256()
        for name in self.inputs:
            digest.update(f"i:{name}:{self.signals[name].width};".encode())
        for name in self.outputs:
            sig = self.signals[name]
            # Registered-ness and the state slot are part of the
            # interface: parents read registered outputs straight out
            # of the child's state array.
            digest.update(
                f"o:{name}:{sig.width}:{sig.state_index};".encode()
            )
        # The eval_out calling convention (which inputs are
        # comb-relevant) is part of the interface too.
        digest.update(("c:" + ",".join(self.comb_input_ports)).encode())
        return digest.hexdigest()


@dataclass
class Netlist:
    """A fully elaborated design: every specialization plus the top key."""

    top: str  # key of the top specialization
    modules: Dict[str, ModuleIR] = field(default_factory=dict)

    @property
    def top_module(self) -> ModuleIR:
        return self.modules[self.top]

    def instance_count(self, key: Optional[str] = None) -> Dict[str, int]:
        """Total instance count per specialization under the top.

        This is the number the baseline compiler pays per instance and
        LiveSim pays once (the heart of Fig. 4 / Table VIII).
        """
        counts: Dict[str, int] = {}

        def visit(mod_key: str, multiplier: int) -> None:
            counts[mod_key] = counts.get(mod_key, 0) + multiplier
            for inst in self.modules[mod_key].instances:
                visit(inst.child_key, multiplier)

        visit(key or self.top, 1)
        return counts
