"""Netlist intermediate representation for elaborated LHDL designs."""

from .netlist import (
    CombAssignIR,
    CombBlockIR,
    InstanceIR,
    MemoryIR,
    ModuleIR,
    Netlist,
    SeqBlockIR,
    SignalIR,
    spec_key,
)

__all__ = [
    "CombAssignIR",
    "CombBlockIR",
    "InstanceIR",
    "MemoryIR",
    "ModuleIR",
    "Netlist",
    "SeqBlockIR",
    "SignalIR",
    "spec_key",
]
