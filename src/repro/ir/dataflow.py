"""Input->output combinational dependency analysis (per output port).

For each module we compute ``output_deps``: for every output port, the
set of input ports it combinationally depends on.  Registered outputs
and state-sourced paths contribute nothing.

This is what lets the scheduler order instances correctly *without*
false cycles: a CPU's fetch stage reads the branch redirect only into
its sequential logic, so its outputs depend on no inputs at all and it
can evaluate first, even though the redirect producer evaluates later.
The redirect still reaches the fetch stage's flops because sequential
evaluation happens in a second phase with fully settled values (see
:mod:`repro.codegen.pygen`).

Per-output precision matters: a memory unit's read-data output depends
on the address input but *not* on the write-data input; collapsing all
outputs to one dependency set manufactures cycles in any design where
a unit both feeds and consumes a neighbour (CPU <-> memory, router <->
router).
"""

from __future__ import annotations

from typing import Callable, Dict, Set

from ..hdl.consteval import expr_reads
from .netlist import ModuleIR


def compute_output_deps(
    ir: ModuleIR, child_lookup: Callable[[str], ModuleIR]
) -> Dict[str, Set[str]]:
    """Per-output input dependencies for ``ir``.

    Children must already carry their own ``output_deps`` (elaboration
    is bottom-up).  Iterates to a fixed point so intra-module comb
    cycles (if any) resolve conservatively.
    """
    deps: Dict[str, Set[str]] = {}
    for name in ir.inputs:
        deps[name] = {name}
    for name, sig in ir.signals.items():
        if sig.state_index is not None:
            deps[name] = set()
    for name in ir.memories:
        deps[name] = set()

    def deps_of_reads(reads) -> Set[str]:
        result: Set[str] = set()
        for read in reads:
            result |= deps.get(read, set())
        return result

    max_rounds = len(ir.schedule) + 2
    for _ in range(max_rounds):
        changed = False
        for unit_kind, index in ir.schedule:
            if unit_kind == "assign":
                assign = ir.comb_assigns[index]
                merged = deps_of_reads(assign.reads) | deps.get(
                    assign.defines, set()
                )
                if merged != deps.get(assign.defines, set()):
                    deps[assign.defines] = merged
                    changed = True
            elif unit_kind == "block":
                block = ir.comb_blocks[index]
                new = deps_of_reads(block.reads)
                for name in block.defines:
                    merged = new | deps.get(name, set())
                    if merged != deps.get(name, set()):
                        deps[name] = merged
                        changed = True
            else:
                inst = ir.instances[index]
                child = child_lookup(inst.child_key)
                registered = set(inst.registered_ports)
                for port, target in inst.output_conns.items():
                    if port in registered:
                        deps.setdefault(target, set())
                        continue
                    relevant: Set[str] = set()
                    for child_input in child.output_deps.get(port, set()):
                        expr = inst.input_conns.get(child_input)
                        if expr is not None:
                            relevant |= deps_of_reads(expr_reads(expr))
                    merged = relevant | deps.get(target, set())
                    if merged != deps.get(target, set()):
                        deps[target] = merged
                        changed = True
        if not changed:
            break

    return {name: deps.get(name, set()) for name in ir.outputs}
