"""Combinational scheduling of a ModuleIR.

Orders the module's evaluation units — continuous assigns, comb always
blocks, and child instances — so that a single evaluation pass computes
every combinational value exactly once.

Three mechanisms keep real designs acyclic at this granularity:

* instances are ordered only by reads feeding the child's
  *comb-relevant* inputs (sequential-only inputs arrive in phase 2);
* only *combinationally driven* child outputs constrain consumers
  (registered outputs are state, pre-bound up front);
* when the remaining graph still has cycles (a ring of stops each
  reading its neighbour's register-sourced output), instances inside
  the cycles get their *dependency-free* outputs early-bound via a
  zero-argument prepass call, and the affected edges dissolve.

Only if cycles survive all three (a genuine combinational loop) is the
module marked ``needs_fixpoint`` and the runtime iterates evaluation.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from .netlist import ModuleIR

UnitId = Tuple[str, int]  # ("assign" | "block" | "inst", index)


def _try_toposort(
    units: List[UnitId],
    reads: Dict[UnitId, Set[str]],
    producer: Dict[str, UnitId],
) -> Tuple[List[UnitId], Set[UnitId]]:
    """Kahn's algorithm; returns (ordered prefix, units stuck in cycles)."""
    dependencies: Dict[UnitId, Set[UnitId]] = {u: set() for u in units}
    dependents: Dict[UnitId, Set[UnitId]] = {u: set() for u in units}
    for unit in units:
        for name in reads[unit]:
            dep = producer.get(name)
            if dep is not None and dep != unit:
                dependencies[unit].add(dep)
                dependents[dep].add(unit)
        # A self-read of an own define is a cycle of length one.
        for name in reads[unit]:
            if producer.get(name) == unit:
                dependencies[unit].add(unit)

    in_degree = {u: len(dependencies[u]) for u in units}
    ready = [u for u in units if in_degree[u] == 0]
    order: List[UnitId] = []
    position = {u: i for i, u in enumerate(units)}
    while ready:
        unit = ready.pop(0)
        order.append(unit)
        for follower in sorted(dependents[unit], key=position.__getitem__):
            if follower == unit:
                continue
            in_degree[follower] -= 1
            if in_degree[follower] == 0:
                ready.append(follower)
    stuck = {u for u in units if u not in set(order)}
    return order, stuck


def schedule_module(ir: ModuleIR) -> None:
    """Compute ``ir.schedule``, ``ir.early_bind`` and
    ``ir.needs_fixpoint`` in place."""
    units: List[UnitId] = []
    reads: Dict[UnitId, Set[str]] = {}
    producer: Dict[str, UnitId] = {}
    registered = {
        name
        for name, sig in ir.signals.items()
        if sig.state_index is not None or sig.kind == "input"
    }

    def effective_reads(raw: Set[str]) -> Set[str]:
        return {
            name
            for name in raw
            if name not in registered and name not in ir.memories
        }

    for i, assign in enumerate(ir.comb_assigns):
        unit: UnitId = ("assign", i)
        units.append(unit)
        reads[unit] = effective_reads(set(assign.reads))
        producer[assign.defines] = unit
    for i, block in enumerate(ir.comb_blocks):
        unit = ("block", i)
        units.append(unit)
        reads[unit] = effective_reads(set(block.reads))
        for name in block.defines:
            producer[name] = unit
    for i, inst in enumerate(ir.instances):
        unit = ("inst", i)
        units.append(unit)
        reads[unit] = effective_reads(set(inst.comb_reads))
        for name in inst.comb_defines:
            producer[name] = unit

    order, stuck = _try_toposort(units, reads, producer)
    ir.early_bind = []
    if stuck:
        # Break cycles by early-binding dependency-free outputs of the
        # instances involved, then retry.
        for unit in sorted(stuck, key=units.index):
            kind, index = unit
            if kind != "inst":
                continue
            inst = ir.instances[index]
            for port in inst.dep_free_ports:
                target = inst.output_conns[port]
                if producer.get(target) == unit:
                    del producer[target]
                    ir.early_bind.append((index, port, target))
        if ir.early_bind:
            early_targets = {t for _, _, t in ir.early_bind}
            for unit in units:
                reads[unit] = reads[unit] - early_targets
            order, stuck = _try_toposort(units, reads, producer)

    if not stuck:
        ir.schedule = order
        ir.needs_fixpoint = False
    else:
        # Genuine combinational loop: keep declaration order, let the
        # runtime iterate to a fixed point.
        ir.schedule = list(units)
        ir.needs_fixpoint = True
