"""Verilator-like baseline simulator (per-instance code replication)."""

from .compiler import BaselineCompiler, BaselineResult

__all__ = ["BaselineCompiler", "BaselineResult"]
