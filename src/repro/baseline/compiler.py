"""The baseline compiler: Verilator-style per-instance code replication.

Two modes, matching Fig. 4's taxonomy:

* ``"replicate"`` (Fig. 4c) — every *instance* compiles to its own
  code object, even when instances share a module.  Compile time and
  code footprint grow with the instance count.
* ``"inline"`` (Fig. 4b) — the whole design flattens into a single
  eval/tick pair (see :mod:`repro.codegen.flatgen`), maximizing
  cross-module optimization and code footprint alike.

Both use the ``select`` mux lowering (evaluate-both-arms, branch-free)
that the paper attributes to Verilator's generated code.

A wall-clock ``budget_seconds`` mirrors the paper's 24-hour Verilator
timeout: the 16x16 PGAS never finished compiling, reported "NA".
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import obs
from ..codegen.flatgen import compile_flat
from ..codegen.pygen import CompiledModule, compile_module
from ..hdl.errors import CompileBudgetExceeded
from ..ir.netlist import Netlist
from ..sim.pipeline import Pipe

REPLICATE = "replicate"
INLINE = "inline"


@dataclass
class BaselineResult:
    """Outcome of a baseline compile."""

    mode: str
    top_key: Optional[str]
    library: Dict[str, CompiledModule] = field(default_factory=dict)
    compile_seconds: float = 0.0
    timed_out: bool = False
    budget_seconds: Optional[float] = None
    instances_compiled: int = 0

    @property
    def succeeded(self) -> bool:
        return not self.timed_out and self.top_key is not None

    def make_pipe(self, name: str = "baseline") -> Pipe:
        if not self.succeeded:
            raise CompileBudgetExceeded(
                "baseline compile did not finish within its budget",
                elapsed=self.compile_seconds,
                budget=self.budget_seconds or 0.0,
            )
        return Pipe(self.top_key, self.library, name=name)  # type: ignore[arg-type]

    def total_code_bytes(self) -> int:
        """Generated-source size as a footprint proxy."""
        return sum(len(m.source) for m in self.library.values())


class BaselineCompiler:
    """Compiles a netlist the way Verilator would."""

    def __init__(
        self,
        mode: str = REPLICATE,
        mux_style: str = "select",
        budget_seconds: Optional[float] = None,
    ):
        if mode not in (REPLICATE, INLINE):
            raise ValueError(f"unknown baseline mode {mode!r}")
        self.mode = mode
        self.mux_style = mux_style
        self.budget_seconds = budget_seconds

    def compile(self, netlist: Netlist) -> BaselineResult:
        """Compile; on budget exhaustion returns ``timed_out=True``
        (the paper's "NA") instead of raising."""
        started = time.perf_counter()
        result = BaselineResult(
            mode=self.mode, top_key=None, budget_seconds=self.budget_seconds
        )
        with obs.span("baseline.compile", mode=self.mode):
            self._compile_into(netlist, result, started)
        result.compile_seconds = time.perf_counter() - started
        obs.incr("baseline.instances_compiled", result.instances_compiled)
        if result.timed_out:
            obs.incr("baseline.timeouts")
        return result

    def _compile_into(
        self, netlist: Netlist, result: BaselineResult, started: float
    ) -> None:
        try:
            if self.mode == INLINE:
                flat = compile_flat(
                    netlist,
                    mux_style=self.mux_style,
                    budget_seconds=self.budget_seconds,
                )
                result.library = {flat.key: flat}
                result.top_key = flat.key
                result.instances_compiled = sum(
                    netlist.instance_count().values()
                )
            else:
                result.top_key = self._compile_replicated(netlist, result, started)
        except CompileBudgetExceeded:
            result.timed_out = True
            result.top_key = None
            result.library = {}

    # -- replicate mode -----------------------------------------------------------

    def _compile_replicated(
        self, netlist: Netlist, result: BaselineResult, started: float
    ) -> str:
        """One compiled code object per *instance* (Fig. 4c).

        Builds a synthetic netlist in which every instance path has its
        own specialization key, then compiles each exactly once — i.e.
        once per instance of the original design.
        """
        synthetic = Netlist(top="", modules={})

        def clone(key: str, path: str) -> str:
            self._check_budget(started)
            ir = netlist.modules[key]
            new_key = f"{key}@{path}" if path else f"{key}@top"
            cloned = copy.copy(ir)
            cloned.key = new_key
            cloned.instances = []
            for inst in ir.instances:
                child_path = f"{path}.{inst.name}" if path else inst.name
                child_key = clone(inst.child_key, child_path)
                cloned_inst = copy.copy(inst)
                cloned_inst.child_key = child_key
                cloned.instances.append(cloned_inst)
            synthetic.modules[new_key] = cloned
            return new_key

        top_key = clone(netlist.top, "")
        synthetic.top = top_key

        library: Dict[str, CompiledModule] = {}
        for key in self._postorder(synthetic, top_key):
            self._check_budget(started)
            library[key] = compile_module(
                synthetic.modules[key], synthetic, self.mux_style
            )
            result.instances_compiled += 1
        result.library = library
        return top_key

    @staticmethod
    def _postorder(netlist: Netlist, top_key: str) -> List[str]:
        order: List[str] = []
        seen = set()

        def visit(key: str) -> None:
            if key in seen:
                return
            seen.add(key)
            for inst in netlist.modules[key].instances:
                visit(inst.child_key)
            order.append(key)

        visit(top_key)
        return order

    def _check_budget(self, started: float) -> None:
        if self.budget_seconds is None:
            return
        elapsed = time.perf_counter() - started
        if elapsed > self.budget_seconds:
            raise CompileBudgetExceeded(
                "baseline compile exceeded budget "
                f"({elapsed:.1f}s > {self.budget_seconds:.1f}s)",
                elapsed=elapsed,
                budget=self.budget_seconds,
            )
