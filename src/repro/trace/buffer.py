"""Per-pipe ring-buffer trace capture and value-change fan-out.

A :class:`TraceBuffer` is attached to a pipe (``Pipe.attach_trace``)
and from then on :meth:`capture` runs inside every ``tick`` — after
combinational settle, before the clock edge commits — so a sample at
cycle N holds the same settled pre-edge values a
:class:`~repro.sim.waveform.WaveformRecorder` would record.

Costs are bounded by construction: capture is O(probes) per cycle with
no allocation beyond the appended tuples, each probe's history lives in
a ring of ``capacity`` samples (drop-oldest, counted on the
``trace.cycles_dropped`` obs counter), and subscription queues are
bounded deques that drop their *oldest* event under backpressure — the
simulation loop never blocks on a slow consumer.

Checkpoint rewind (``ldch`` / a reload that restores an earlier
checkpoint) calls :meth:`truncate_from`: samples at-or-after the
restore cycle are discarded (they describe an abandoned timeline) and
every subscriber receives a ``{"rewind": cycle}`` marker so it can do
the same.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..hdl.errors import SimulationError
from ..sim.pipeline import Pipe
from .probes import TraceProbe

DEFAULT_CAPACITY = 4096
DEFAULT_SUB_QUEUE = 256

_UNSET = object()


class _Ring:
    """(cycle, value) samples; drop-oldest beyond ``capacity``."""

    __slots__ = ("_items", "_capacity")

    def __init__(self, capacity: Optional[int]):
        self._capacity = capacity
        self._items: deque = deque(maxlen=capacity)

    def append(self, cycle: int, value: int) -> bool:
        """Append one sample; True when an old sample was evicted."""
        evicted = (
            self._capacity is not None
            and len(self._items) == self._capacity
        )
        self._items.append((cycle, value))
        return evicted

    def truncate_from(self, cycle: int) -> int:
        """Drop samples with cycle >= ``cycle``; returns count dropped."""
        dropped = 0
        items = self._items
        while items and items[-1][0] >= cycle:
            items.pop()
            dropped += 1
        return dropped

    def clear(self) -> None:
        self._items.clear()

    def __len__(self) -> int:
        return len(self._items)

    def items(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(self._items)

    @property
    def first_cycle(self) -> Optional[int]:
        return self._items[0][0] if self._items else None

    @property
    def last_cycle(self) -> Optional[int]:
        return self._items[-1][0] if self._items else None


class TraceSubscription:
    """A bounded event queue for one value-change consumer.

    The producer side (:meth:`TraceBuffer.capture`, on the simulation
    thread) only ever appends under a short lock; when the queue is
    full the oldest event is dropped and counted — never a block.
    Consumers :meth:`drain` in batches from their own thread.
    """

    def __init__(
        self,
        buffer: "TraceBuffer",
        signals: Optional[Sequence[str]] = None,
        max_events: int = DEFAULT_SUB_QUEUE,
    ):
        self._buffer = buffer
        self.signals = frozenset(signals) if signals is not None else None
        self.max_events = max(1, int(max_events))
        self._events: deque = deque()
        self._lock = threading.Lock()
        self.events_dropped = 0
        self.closed = False

    def wants(self, signal: Optional[str]) -> bool:
        """Whether this subscription cares about ``signal`` (None =
        buffer-wide markers such as rewinds, delivered to everyone)."""
        return (
            signal is None
            or self.signals is None
            or signal in self.signals
        )

    def push(self, event: Dict[str, Any]) -> None:
        with self._lock:
            if self.closed:
                return
            if len(self._events) >= self.max_events:
                self._events.popleft()
                self.events_dropped += 1
                self._buffer.events_dropped += 1
                obs.incr("trace.events_dropped")
            self._events.append(event)

    def drain(self) -> Tuple[List[Dict[str, Any]], int]:
        """Take every queued event; returns ``(events, dropped_total)``
        where the drop count is cumulative over the subscription."""
        with self._lock:
            events = list(self._events)
            self._events.clear()
            return events, self.events_dropped

    def close(self) -> None:
        with self._lock:
            self.closed = True
            self._events.clear()


class _Entry:
    __slots__ = ("probe", "ring", "last")

    def __init__(self, probe: TraceProbe, capacity: Optional[int]):
        self.probe = probe
        self.ring = _Ring(capacity)
        self.last: Any = _UNSET


class TraceBuffer:
    """Ring-buffer capture for a set of probes on one pipe."""

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY):
        if capacity is not None and capacity < 1:
            raise SimulationError("trace capacity must be >= 1 (or None)")
        self.capacity = capacity
        self.cycles_dropped = 0
        self.events_dropped = 0
        self._entries: Dict[str, _Entry] = {}
        self._subs: List[TraceSubscription] = []

    # -- probes ---------------------------------------------------------------

    def add_probe(self, probe: TraceProbe) -> TraceProbe:
        if probe.name in self._entries:
            raise SimulationError(f"duplicate probe {probe.name!r}")
        self._entries[probe.name] = _Entry(probe, self.capacity)
        return probe

    def watch(self, pipe: Pipe, signal: str) -> TraceProbe:
        """Add a named probe (idempotent: an existing probe for the
        same signal is returned untouched, so journal replay and
        migration re-arms never double-register)."""
        entry = self._entries.get(signal)
        if entry is not None:
            return entry.probe
        return self.add_probe(TraceProbe.named(pipe, signal))

    def unwatch(self, signal: str) -> bool:
        """Remove a probe and its history; subscriptions narrowed to
        only this signal are closed."""
        entry = self._entries.pop(signal, None)
        if entry is None:
            return False
        for sub in list(self._subs):
            if sub.signals is not None and sub.signals == {signal}:
                sub.close()
        self._prune_subs()
        return True

    def probe(self, name: str) -> TraceProbe:
        entry = self._entries.get(name)
        if entry is None:
            raise SimulationError(f"no probe named {name!r}")
        return entry.probe

    def has_probe(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> List[str]:
        return list(self._entries)

    # -- capture --------------------------------------------------------------

    def capture(self, pipe: Pipe) -> None:
        """Sample every live probe at the pipe's current cycle.

        Called from ``Pipe.tick`` after combinational settle; missing
        probes (signal vanished in a reload) are skipped.
        """
        cycle = pipe.cycle
        evicted = False
        publish = bool(self._subs)
        for entry in self._entries.values():
            probe = entry.probe
            if probe.missing:
                continue
            value = probe.getter(pipe)
            if entry.ring.append(cycle, value):
                evicted = True
            if value != entry.last:
                entry.last = value
                if publish:
                    self._publish(
                        probe.name,
                        {"signal": probe.name, "cycle": cycle,
                         "value": value},
                    )
        if evicted:
            self.cycles_dropped += 1
            obs.incr("trace.cycles_dropped")

    def rebind(self, pipe: Pipe) -> List[str]:
        """Re-resolve every named probe after a design swap.

        Returns the names now missing.  A probe that vanished keeps
        its recorded history and is announced to subscribers once; a
        probe that re-appears resumes capturing (its next sample is
        always published, since the swap may have transformed values).
        """
        missing: List[str] = []
        for entry in self._entries.values():
            was_missing = entry.probe.missing
            bound = entry.probe.bind(pipe)
            entry.last = _UNSET
            if not bound:
                missing.append(entry.probe.name)
                if not was_missing:
                    self._publish(
                        entry.probe.name,
                        {"signal": entry.probe.name, "missing": True},
                    )
        return missing

    def truncate_from(self, cycle: int) -> int:
        """Rewind: drop samples at-or-after ``cycle`` (an abandoned
        timeline) and tell every subscriber to do the same."""
        dropped = 0
        for entry in self._entries.values():
            dropped += entry.ring.truncate_from(cycle)
            entry.last = _UNSET
        if dropped or self._subs:
            self._publish(None, {"rewind": cycle})
        return dropped

    def clear_samples(self) -> None:
        for entry in self._entries.values():
            entry.ring.clear()
            entry.last = _UNSET

    # -- subscriptions --------------------------------------------------------

    def subscribe(
        self,
        signals: Optional[Sequence[str]] = None,
        max_events: int = DEFAULT_SUB_QUEUE,
    ) -> TraceSubscription:
        sub = TraceSubscription(self, signals=signals,
                                max_events=max_events)
        self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: TraceSubscription) -> None:
        sub.close()
        self._prune_subs()

    def subscriptions(self) -> int:
        self._prune_subs()
        return len(self._subs)

    def _prune_subs(self) -> None:
        self._subs = [s for s in self._subs if not s.closed]

    def _publish(self, signal: Optional[str],
                 event: Dict[str, Any]) -> None:
        pruned = False
        for sub in self._subs:
            if sub.closed:
                pruned = True
                continue
            if sub.wants(signal):
                sub.push(event)
        if pruned:
            self._prune_subs()

    # -- reads ----------------------------------------------------------------

    def window(
        self,
        signal: str,
        start: Optional[int] = None,
        end: Optional[int] = None,
    ) -> List[List[int]]:
        """Samples for ``signal`` with start <= cycle < end, as
        JSON-friendly ``[cycle, value]`` pairs."""
        entry = self._entries.get(signal)
        if entry is None:
            raise SimulationError(f"no probe named {signal!r}")
        out: List[List[int]] = []
        for cycle, value in entry.ring.items():
            if start is not None and cycle < start:
                continue
            if end is not None and cycle >= end:
                break
            out.append([cycle, value])
        return out

    def changes_of(self, name: str) -> List[Tuple[int, int]]:
        """(cycle, value) pairs where the value changed — the VCD
        writer's input shape."""
        entry = self._entries.get(name)
        if entry is None:
            raise SimulationError(f"no probe named {name!r}")
        out: List[Tuple[int, int]] = []
        last: Any = _UNSET
        for cycle, value in entry.ring.items():
            if value != last:
                out.append((cycle, value))
                last = value
        return out

    def status(self) -> Dict[str, Any]:
        self._prune_subs()
        probes = []
        for entry in self._entries.values():
            probes.append({
                "signal": entry.probe.name,
                "width": entry.probe.width,
                "missing": entry.probe.missing,
                "samples": len(entry.ring),
                "first_cycle": entry.ring.first_cycle,
                "last_cycle": entry.ring.last_cycle,
            })
        return {
            "capacity": self.capacity,
            "cycles_dropped": self.cycles_dropped,
            "events_dropped": self.events_dropped,
            "subscriptions": len(self._subs),
            "probes": probes,
        }

    # -- export ---------------------------------------------------------------

    def to_vcd(self, path: str, timescale: str = "1 ns",
               module_name: str = "uut") -> None:
        """Export every probe's history through the shared VCD writer."""
        from ..sim.waveform import write_vcd  # circular at import time

        write_vcd(
            path,
            [(e.probe.name, e.probe.width)
             for e in self._entries.values()],
            self.changes_of,
            timescale=timescale,
            module_name=module_name,
        )
