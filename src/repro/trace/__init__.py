"""Live trace subsystem: ring-buffer signal capture for running pipes.

``repro.sim.waveform`` records offline: attach a recorder, drive the
pipe yourself, export VCD.  This package is the *live* counterpart —
a bounded ring buffer hooked into :meth:`Pipe.tick` so a session (or a
server worker) captures watched signals on every simulated cycle, at
O(1) per cycle, without changing how the simulation is driven:

- :class:`TraceProbe` — one watched signal, resolved by hierarchical
  name (register ``path.reg``, output port, or memory word
  ``path.mem[idx]``).  Probes re-bind by name after a hot reload;
  signals that vanished in the new design are *marked* missing, not
  fatal, and resume capturing if a later reload brings them back.
- :class:`TraceBuffer` — the per-pipe capture: one ring per probe,
  drop-oldest beyond ``capacity`` (counted on ``trace.cycles_dropped``),
  value-change fan-out to :class:`TraceSubscription` queues, truncation
  on checkpoint rewind, VCD export through the ``repro.sim.waveform``
  writer.
- :class:`TraceSubscription` — a bounded, lock-protected event queue
  for one consumer; under backpressure the oldest events drop and the
  producer (the sim loop) never blocks.

Time-travel replay builds on the same pieces: restore the nearest
checkpoint at-or-before the window start on a *scratch* pipe, attach a
fresh ``TraceBuffer``, re-run forward.  Simulation is deterministic, so
the replayed window is bit-identical to what was streamed live.
"""

from .buffer import TraceBuffer, TraceSubscription
from .probes import TraceProbe, resolve_signal

__all__ = [
    "TraceBuffer",
    "TraceProbe",
    "TraceSubscription",
    "resolve_signal",
]
