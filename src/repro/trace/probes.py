"""Hierarchical-name signal resolution for live trace probes.

A probe is named the way a designer reads the design, not the way the
simulator stores it:

- ``count`` — a top-level output port (or a top-level register);
- ``u_add.sum_q`` — register ``sum_q`` in instance ``u_add``;
- ``u_mem.cells[3]`` — word 3 of memory ``cells`` in ``u_mem``.

Resolution happens against a live :class:`~repro.sim.pipeline.Pipe`
and is repeated after every hot reload (``TraceProbe.bind``): the same
name may resolve to a different compiled slot in the new design, or to
nothing at all — in which case the probe is marked ``missing`` and
capture simply skips it until a later design brings the signal back.
"""

from __future__ import annotations

import re
from typing import Callable, Optional, Tuple

from ..hdl.errors import SimulationError
from ..sim.pipeline import Pipe

_MEM_WORD_RE = re.compile(r"^(?P<base>.+)\[(?P<index>\d+)\]$")


def _split_path(name: str) -> Tuple[str, str]:
    """``a.b.c`` -> (``a.b``, ``c``); no dot -> (``""``, name)."""
    if "." in name:
        path, _, leaf = name.rpartition(".")
        return path, leaf
    return "", name


def resolve_signal(
    pipe: Pipe, signal: str
) -> Tuple[int, Callable[[Pipe], int]]:
    """Resolve ``signal`` against ``pipe``; return ``(width, getter)``.

    Raises :class:`SimulationError` when the name does not name a
    register, output port, or memory word of the current design.
    Getters re-walk the instance tree by path on every call, so they
    stay valid across hot swaps that replace ``StageInst`` objects.
    """
    memory_word = _MEM_WORD_RE.match(signal)
    if memory_word:
        path, memory = _split_path(memory_word.group("base"))
        index = int(memory_word.group("index"))
        inst = pipe.find(path)
        spec = inst.code.mem_specs.get(memory)
        if spec is None:
            raise SimulationError(
                f"{inst.code.name!r} has no memory {memory!r}"
            )
        if not 0 <= index < spec.depth:
            raise SimulationError(
                f"index {index} outside memory {memory!r} "
                f"(depth {spec.depth})"
            )

        def mem_getter(p: Pipe, _path=path, _mem=memory, _i=index) -> int:
            return p.find(_path).memory(_mem)[_i]

        return spec.width, mem_getter

    path, leaf = _split_path(signal)
    if not path:
        code = pipe.top.code
        if leaf in code.outputs:
            width = (
                code.ir.signals[leaf].width
                if leaf in code.ir.signals else 64
            )

            def out_getter(p: Pipe, _port=leaf) -> int:
                return p.outputs()[_port]

            return width, out_getter

    inst = pipe.find(path)
    if leaf not in inst.code.reg_slots:
        raise SimulationError(
            f"cannot resolve signal {signal!r}: "
            f"{inst.code.name!r} has no register "
            f"{'or output ' if not path else ''}{leaf!r}"
        )
    width = inst.code.reg_widths[leaf]

    def reg_getter(p: Pipe, _path=path, _reg=leaf) -> int:
        return p.find(_path).peek_reg(_reg)

    return width, reg_getter


class TraceProbe:
    """One watched value inside a :class:`TraceBuffer`.

    Two flavors:

    - *named* probes (``signal`` set) resolve against the pipe and can
      re-:meth:`bind` after a hot reload;
    - *expression* probes (``signal`` None, explicit getter) come from
      the :class:`~repro.sim.waveform.WaveformRecorder` compatibility
      layer and are never re-bound.
    """

    __slots__ = ("name", "signal", "width", "getter", "missing")

    def __init__(
        self,
        name: str,
        width: int,
        getter: Optional[Callable[[Pipe], int]],
        signal: Optional[str] = None,
    ):
        self.name = name
        self.signal = signal
        self.width = width
        self.getter = getter
        self.missing = getter is None

    @classmethod
    def named(cls, pipe: Pipe, signal: str) -> "TraceProbe":
        """Resolve ``signal`` now; raises if it does not exist."""
        width, getter = resolve_signal(pipe, signal)
        return cls(signal, width, getter, signal=signal)

    def bind(self, pipe: Pipe) -> bool:
        """Re-resolve a named probe after a design swap.

        Returns True when the signal exists in the new design.  A
        vanished signal marks the probe ``missing`` (its history is
        kept; capture skips it).  Expression probes are left alone.
        """
        if self.signal is None:
            return not self.missing
        try:
            self.width, self.getter = resolve_signal(pipe, self.signal)
        except SimulationError:
            self.getter = None
            self.missing = True
            return False
        self.missing = False
        return True

    def read(self, pipe: Pipe) -> Optional[int]:
        if self.getter is None:
            return None
        return self.getter(pipe)
