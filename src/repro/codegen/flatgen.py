"""Flattening code generation (the Verilator compilation model, Fig. 4b).

The entire hierarchy is compiled into ONE eval/tick pair: every
instance's logic is inlined with hierarchical name mangling, and every
instance gets its own copy of its module's code.  This enables
cross-module optimization (modeled by the ``select`` mux style and the
absence of call glue) but makes both compile time and host code
footprint proportional to the *instance count* — the scaling cliff the
paper measures in Tables VII/VIII.

Scheduling is at the granularity of individual flattened units
(continuous assigns, port bindings, comb blocks), globally topo-sorted
by def-before-use — what a real flattening compiler does.  Registers
and memories are state and never constrain ordering, so any design
whose loops pass through a flop schedules in one pass; only genuine
combinational loops fall back to fixpoint iteration.

The result is packaged as a :class:`CompiledModule` with no children,
so the same :class:`~repro.sim.pipeline.Pipe` runtime drives it.
Register/memory names in ``reg_slots``/``mem_specs`` are hierarchical
paths like ``u_core.u_ifu.pc``.
"""

from __future__ import annotations

import hashlib
import linecache
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..hdl import ast_nodes as ast
from ..hdl.consteval import expr_reads, stmt_reads_writes
from ..hdl.errors import CodegenError, CompileBudgetExceeded
from ..ir.netlist import ModuleIR, Netlist
from .emitter import FunctionEmitter, block
from .exprgen import ExprGen, Resolver, StmtGen, mask_of
from .pygen import CACHE_SLOTS, CompiledModule, MemSpec


@dataclass
class _Unit:
    """One flattened combinational unit, emitted after global sorting."""

    defines: Tuple[str, ...]  # global comb-local ids this unit assigns
    reads: Tuple[str, ...]  # global comb-local ids it needs first
    emit: Callable[[], None]
    order: int  # declaration order (tie-breaker)


class _FlatScope:
    """Signal resolution for one inlined instance."""

    def __init__(self, compiler: "_FlatCompiler", ir: ModuleIR, path: str):
        self.compiler = compiler
        self.ir = ir
        self.path = path

    def global_id(self, name: str) -> str:
        return f"{self.path}.{name}" if self.path else name

    def local(self, name: str) -> str:
        mangled = self.global_id(name).replace(".", "_")
        return f"v_{mangled}"

    def comb_read_ids(self, names) -> Set[str]:
        """Map signal names to global comb ids; state reads are free."""
        ids: Set[str] = set()
        for name in names:
            sig = self.ir.signals.get(name)
            if sig is None:
                continue  # memory: state
            if sig.state_index is not None:
                continue  # register: state
            ids.add(self.global_id(name))
        return ids

    def resolver(self) -> Resolver:
        compiler = self.compiler

        def signal_ref(name: str) -> str:
            sig = self.ir.signals.get(name)
            if sig is None:
                raise CodegenError(f"unknown signal {name!r} in {self.ir.name}")
            if sig.state_index is not None:
                slot = compiler._reg_slots[self.global_id(name)]
                return f"s[{slot}]"
            return self.local(name)  # inputs are bound locals too

        def signal_width(name: str) -> Optional[int]:
            sig = self.ir.signals.get(name)
            return sig.width if sig is not None else None

        def memory_ref(name: str) -> Optional[str]:
            if name in self.ir.memories:
                spec = compiler._mem_specs[self.global_id(name)]
                return f"s[{spec.slot}]"
            return None

        def mem_spec(name: str) -> MemSpec:
            return compiler._mem_specs[self.global_id(name)]

        return Resolver(
            signal_ref=signal_ref,
            signal_width=signal_width,
            memory_ref=memory_ref,
            memory_width=lambda n: mem_spec(n).width,
            memory_depth=lambda n: mem_spec(n).depth,
        )


class _FlatCompiler:
    def __init__(self, netlist: Netlist, mux_style: str,
                 budget_seconds: Optional[float]):
        self._netlist = netlist
        self._mux_style = mux_style
        self._budget = budget_seconds
        self._started = time.perf_counter()
        self._emit = FunctionEmitter()
        self._units: List[_Unit] = []
        self._seq_emitters: List[Callable[[], None]] = []
        self._num_regs = 0
        self._reg_slots: Dict[str, int] = {}
        self._reg_widths: Dict[str, int] = {}
        self._mem_specs: Dict[str, MemSpec] = {}
        self._mem_count = 0
        self._needs_fixpoint = False
        self._written_mems: Set[str] = set()
        self._stuck_defines: List[str] = []

    def _check_budget(self) -> None:
        if self._budget is None:
            return
        elapsed = time.perf_counter() - self._started
        if elapsed > self._budget:
            raise CompileBudgetExceeded(
                f"flattening compile exceeded budget ({elapsed:.1f}s > "
                f"{self._budget:.1f}s)",
                elapsed=elapsed,
                budget=self._budget,
            )

    # -- allocation ------------------------------------------------------------

    def _allocate(self, key: str, path: str) -> None:
        ir = self._netlist.modules[key]
        for name, sig in ir.signals.items():
            if sig.state_index is not None:
                full = f"{path}.{name}" if path else name
                self._reg_slots[full] = self._num_regs
                self._reg_widths[full] = sig.width
                self._num_regs += 1
        for name, mem in sorted(
            ir.memories.items(), key=lambda kv: kv[1].mem_index
        ):
            full = f"{path}.{name}" if path else name
            self._mem_specs[full] = MemSpec(
                name=full, width=mem.width, depth=mem.depth,
                slot=-1, pending_slot=-1,
            )
            self._mem_count += 1
        for inst in ir.instances:
            child_path = f"{path}.{inst.name}" if path else inst.name
            self._allocate(inst.child_key, child_path)

    def _finalize_slots(self) -> None:
        # Layout matches CompiledModule.make_state: two memo slots sit
        # between the pending registers and the memories.
        base = 2 * self._num_regs + CACHE_SLOTS
        for i, spec in enumerate(self._mem_specs.values()):
            spec.slot = base + i
            spec.pending_slot = base + self._mem_count + i

    # -- unit collection ----------------------------------------------------------

    def _collect(self, key: str, path: str,
                 input_exprs: Dict[str, Tuple[str, Set[str]]]) -> None:
        """Walk one instance: record comb units and seq emitters.

        ``input_exprs`` maps port -> (code, comb-read ids) evaluated in
        the parent's scope.
        """
        self._check_budget()
        ir = self._netlist.modules[key]
        scope = _FlatScope(self, ir, path)
        exprgen = ExprGen(scope.resolver(), self._emit, self._mux_style)

        # Input port bindings.
        for port in ir.inputs:
            code, reads = input_exprs[port]
            local = scope.local(port)
            width = ir.signals[port].width

            def emit_bind(local=local, code=code, width=width) -> None:
                self._emit.line(f"{local} = ({code}) & {mask_of(width)}")

            self._units.append(
                _Unit(
                    defines=(scope.global_id(port),),
                    reads=tuple(reads),
                    emit=emit_bind,
                    order=len(self._units),
                )
            )

        for assign in ir.comb_assigns:
            code = exprgen.gen(assign.value)
            width = ir.signals[assign.target.name].width
            if exprgen.width_of(assign.value) > width:
                code = f"(({code}) & {mask_of(width)})"
            target_local = scope.local(assign.target.name)

            def emit_assign(target_local=target_local, code=code) -> None:
                self._emit.line(f"{target_local} = {code}")

            self._units.append(
                _Unit(
                    defines=(scope.global_id(assign.target.name),),
                    reads=tuple(scope.comb_read_ids(assign.reads)),
                    emit=emit_assign,
                    order=len(self._units),
                )
            )

        for comb in ir.comb_blocks:
            def emit_block(scope=scope, exprgen=exprgen, comb=comb) -> None:
                self._emit_comb_block(scope, exprgen, comb)

            self._units.append(
                _Unit(
                    defines=tuple(
                        scope.global_id(n) for n in comb.defines
                    ),
                    reads=tuple(scope.comb_read_ids(comb.reads)),
                    emit=emit_block,
                    order=len(self._units),
                )
            )

        for seq in ir.seq_blocks:
            _, writes = stmt_reads_writes(seq.body)
            for name in writes:
                if name in ir.memories:
                    self._written_mems.add(scope.global_id(name))

            def emit_seq(scope=scope, seq=seq) -> None:
                seq_exprgen = ExprGen(
                    scope.resolver(), self._emit, self._mux_style
                )
                self._emit_seq_block(scope, seq_exprgen, seq)

            self._seq_emitters.append(emit_seq)

        for inst in ir.instances:
            child_path = f"{path}.{inst.name}" if path else inst.name
            child = self._netlist.modules[inst.child_key]
            child_inputs: Dict[str, Tuple[str, Set[str]]] = {}
            for port, expr in inst.input_conns.items():
                child_inputs[port] = (
                    exprgen.gen(expr),
                    scope.comb_read_ids(expr_reads(expr)),
                )
            self._collect(inst.child_key, child_path, child_inputs)
            # Output bindings: parent local <- child port local.
            child_scope = _FlatScope(self, child, child_path)
            for port, target in inst.output_conns.items():
                child_sig = child.signals[port]
                if child_sig.state_index is not None:
                    source_code = f"s[{self._reg_slots[f'{child_path}.{port}']}]"
                    reads: Tuple[str, ...] = ()
                else:
                    source_code = child_scope.local(port)
                    reads = (child_scope.global_id(port),)
                target_local = scope.local(target)

                def emit_out(target_local=target_local,
                             source_code=source_code) -> None:
                    self._emit.line(f"{target_local} = {source_code}")

                self._units.append(
                    _Unit(
                        defines=(scope.global_id(target),),
                        reads=reads,
                        emit=emit_out,
                        order=len(self._units),
                    )
                )

    # -- emission helpers ------------------------------------------------------------

    def _emit_comb_block(self, scope: _FlatScope, exprgen: ExprGen, comb) -> None:
        for name in comb.defines:
            self._emit.line(f"{scope.local(name)} = 0")
        stmtgen = StmtGen(
            exprgen=exprgen,
            emitter=self._emit,
            write_target=lambda target, code: self._emit.line(
                f"{scope.local(target.name)} = {code}"
            ),
            read_target_current=lambda name: scope.local(name),
            mem_write=self._forbid_comb_mem_write,
            is_memory=lambda name: name in scope.ir.memories,
            target_width=lambda name: scope.ir.signals[name].width,
        )
        stmtgen.gen_stmts(comb.body)

    @staticmethod
    def _forbid_comb_mem_write(name: str, addr: str, value: str, line: int) -> None:
        raise CodegenError(
            f"memory {name!r} may only be written in always @(posedge)", line
        )

    def _emit_seq_block(self, scope: _FlatScope, exprgen: ExprGen, seq) -> None:
        num_regs = self._num_regs

        def write_target(target: ast.LValue, code: str) -> None:
            slot = self._reg_slots.get(scope.global_id(target.name))
            if slot is None:
                raise CodegenError(
                    f"sequential assignment to non-register {target.name!r}",
                    target.line,
                )
            self._emit.line(f"s[{slot + num_regs}] = {code}")

        def read_pending(name: str) -> str:
            slot = self._reg_slots[scope.global_id(name)]
            return f"s[{slot + num_regs}]"

        def mem_write(name: str, addr: str, value: str, line: int) -> None:
            spec = self._mem_specs[scope.global_id(name)]
            if spec.depth & (spec.depth - 1) == 0:
                addr_code = f"({addr}) & {spec.depth - 1}"
            else:
                addr_code = f"({addr}) % {spec.depth}"
            self._emit.line(
                f"s[{spec.pending_slot}].append(({addr_code}, "
                f"({value}) & {mask_of(spec.width)}))"
            )

        stmtgen = StmtGen(
            exprgen=exprgen,
            emitter=self._emit,
            write_target=write_target,
            read_target_current=read_pending,
            mem_write=mem_write,
            is_memory=lambda name: name in scope.ir.memories,
            target_width=lambda name: scope.ir.signals[name].width,
        )
        stmtgen.gen_stmts(seq.body)

    # -- global scheduling --------------------------------------------------------------

    def _sorted_units(self) -> List[_Unit]:
        """Kahn's algorithm over all flattened comb units, declaration
        order as the tie-breaker (deterministic output)."""
        import heapq

        producer: Dict[str, _Unit] = {}
        for unit in self._units:
            for name in unit.defines:
                producer[name] = unit
        by_id = {id(u): u for u in self._units}
        dependents: Dict[int, List[_Unit]] = {id(u): [] for u in self._units}
        in_degree: Dict[int, int] = {}
        for unit in self._units:
            deps = set()
            for name in unit.reads:
                dep = producer.get(name)
                if dep is not None and dep is not unit:
                    deps.add(id(dep))
            in_degree[id(unit)] = len(deps)
            for dep_id in deps:
                dependents[dep_id].append(unit)
        heap = [
            (u.order, id(u)) for u in self._units if in_degree[id(u)] == 0
        ]
        heapq.heapify(heap)
        order: List[_Unit] = []
        while heap:
            _, uid = heapq.heappop(heap)
            unit = by_id[uid]
            order.append(unit)
            for follower in dependents[uid]:
                fid = id(follower)
                in_degree[fid] -= 1
                if in_degree[fid] == 0:
                    heapq.heappush(heap, (follower.order, fid))
        if len(order) != len(self._units):
            # Genuine combinational loop across the flat design: keep
            # declaration order for the cyclic tail and pre-zero its
            # locals so the runtime's fixpoint iteration can run.
            self._needs_fixpoint = True
            placed = {id(u) for u in order}
            stuck = [u for u in self._units if id(u) not in placed]
            for unit in stuck:
                self._stuck_defines.extend(unit.defines)
            order.extend(sorted(stuck, key=lambda u: u.order))
        return order

    # -- top-level generation --------------------------------------------------------------

    def generate(self) -> str:
        top = self._netlist.top_module
        self._allocate(self._netlist.top, "")
        self._finalize_slots()
        top_inputs = {
            name: (f"i_{name}", set()) for name in top.inputs
        }
        self._collect(self._netlist.top, "", top_inputs)
        self._check_budget()
        ordered = self._sorted_units()

        emit = self._emit
        args = ", ".join(f"i_{name}" for name in top.inputs)
        top_scope = _FlatScope(self, top, "")
        with block(emit, f"def eval(s, ch{', ' + args if args else ''}):"):
            for spec in self._mem_specs.values():
                if spec.name in self._written_mems:
                    emit.line(f"del s[{spec.pending_slot}][:]")
            if self._needs_fixpoint:
                emit.line("# genuine comb loop: cyclic tail pre-zeroed")
                for name in self._stuck_defines:
                    emit.line(f"v_{name.replace('.', '_')} = 0")
            for unit in ordered:
                unit.emit()
                self._check_budget()
            if self._num_regs:
                emit.line(
                    f"s[{self._num_regs}:{2 * self._num_regs}] = "
                    f"s[0:{self._num_regs}]"
                )
            for emit_seq in self._seq_emitters:
                emit_seq()
            returns = ", ".join(
                self._top_output_ref(top, top_scope, name)
                for name in top.outputs
            )
            if len(top.outputs) == 1:
                returns += ","
            emit.line(f"return ({returns})")

        emit.blank()
        with block(emit, f"def eval_seq(s, ch{', ' + args if args else ''}):"):
            emit.line("pass  # comb and pending both computed in eval")
        emit.blank()
        with block(emit, "def tick(s, ch):"):
            wrote = False
            if self._num_regs:
                emit.line(
                    f"s[0:{self._num_regs}] = "
                    f"s[{self._num_regs}:{2 * self._num_regs}]"
                )
                wrote = True
            for spec in self._mem_specs.values():
                if spec.name not in self._written_mems:
                    continue
                emit.line(f"_pw = s[{spec.pending_slot}]")
                with block(emit, "if _pw:"):
                    emit.line(f"_m = s[{spec.slot}]")
                    with block(emit, "for _a, _v in _pw:"):
                        emit.line("_m[_a] = _v")
                    emit.line("del _pw[:]")
                wrote = True
            if not wrote:
                emit.line("pass")
        return emit.source()

    def _top_output_ref(self, top: ModuleIR, scope: _FlatScope, name: str) -> str:
        sig = top.signals[name]
        if sig.state_index is not None:
            return f"s[{self._reg_slots[name]}]"
        return scope.local(name)


def compile_flat(
    netlist: Netlist,
    mux_style: str = "select",
    budget_seconds: Optional[float] = None,
) -> CompiledModule:
    """Flatten + compile the whole design into one CompiledModule.

    Raises :class:`CompileBudgetExceeded` if generation/compilation
    exceeds ``budget_seconds`` — the analogue of the paper's 24-hour
    Verilator timeout on the 16x16 PGAS.
    """
    started = time.perf_counter()
    top = netlist.top_module
    compiler = _FlatCompiler(netlist, mux_style, budget_seconds)
    source = compiler.generate()
    compiler._check_budget()
    filename = f"<flat:{top.key}>"
    code = compile(source, filename, "exec")
    compiler._check_budget()
    namespace: Dict[str, object] = {}
    exec(code, namespace)  # noqa: S102 - generated, trusted code
    compiler._check_budget()
    linecache.cache[filename] = (
        len(source), None, source.splitlines(keepends=True), filename
    )
    elapsed = time.perf_counter() - started

    flat_ir = ModuleIR(
        name=top.name,
        key=f"flat:{top.key}",
        params=dict(top.params),
        inputs=list(top.inputs),
        outputs=list(top.outputs),
        num_regs=compiler._num_regs,
    )
    flat_ir.signals = dict(top.signals)
    flat_ir.needs_fixpoint = compiler._needs_fixpoint

    return CompiledModule(
        key=flat_ir.key,
        name=top.name,
        ir=flat_ir,
        eval_out_fn=namespace["eval"],  # type: ignore[arg-type]
        eval_seq_fn=namespace["eval_seq"],  # type: ignore[arg-type]
        tick_fn=namespace["tick"],  # type: ignore[arg-type]
        source=source,
        inputs=tuple(top.inputs),
        comb_input_ports=tuple(top.inputs),  # flat eval takes everything
        outputs=tuple(top.outputs),
        num_regs=compiler._num_regs,
        state_size=2 * compiler._num_regs + CACHE_SLOTS + 2 * compiler._mem_count,
        reg_slots=dict(compiler._reg_slots),
        reg_widths=dict(compiler._reg_widths),
        mem_specs=dict(compiler._mem_specs),
        child_insts=(),
        interface_fp=top.interface_fingerprint(),
        source_hash=hashlib.sha256(source.encode()).hexdigest(),
        compile_seconds=elapsed,
        mux_style=mux_style,
    )
