"""Expression and statement code generation.

Both generators (shared-module :mod:`pygen` and flattened
:mod:`flatgen`) lower expressions through this module; they differ only
in how signal names resolve to Python references, which is abstracted
behind :class:`Resolver`.

Value invariant: every generated sub-expression evaluates to a Python
int already masked to the node's width (non-negative, ``< 2**width``).

Width rules (documented deviation set from full Verilog, chosen to be
predictable):

* arithmetic / bitwise binary: ``max(widths)``
* comparisons, logical ops, reductions: 1
* shifts: width of the left operand
* concatenation: sum of parts; replication: ``count * width``
* ``$signed`` changes interpretation for ``<``, ``<=``, ``>``, ``>=``
  and ``>>>`` only; both comparison operands must be signed.

Divide/modulo by zero yields 0 (Verilog would give X; this simulator
has no X state).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..hdl import ast_nodes as ast
from ..hdl.errors import CodegenError, WidthError
from .emitter import FunctionEmitter, block


def mask_of(width: int) -> int:
    return (1 << width) - 1


class Resolver:
    """Maps signal/memory names to Python references for one scope.

    The three optional hooks are the sanitizer's instrumentation points
    (see :mod:`repro.sanitize`); they default to None, which generates
    the clean, uninstrumented code:

    * ``reg_read_hook(name, ref_code, line)`` — wrap a register read;
      return the replacement expression, or None to keep ``ref_code``.
    * ``mem_read_hook(name, index_code, line)`` — replace an indexed
      memory read entirely (bound + word-poison checked access).
    * ``index_bound_hook(name, index_code, bound, line)`` — wrap a
      dynamic bit/part-select index with a bound check.
    """

    def __init__(
        self,
        signal_ref: Callable[[str], str],
        signal_width: Callable[[str], Optional[int]],
        memory_ref: Callable[[str], Optional[str]],
        memory_width: Callable[[str], int],
        memory_depth: Callable[[str], int],
        reg_read_hook: Optional[Callable[[str, str, int], Optional[str]]] = None,
        mem_read_hook: Optional[Callable[[str, str, int], str]] = None,
        index_bound_hook: Optional[Callable[[str, str, int, int], str]] = None,
    ):
        self.signal_ref = signal_ref
        self.signal_width = signal_width
        self.memory_ref = memory_ref
        self.memory_width = memory_width
        self.memory_depth = memory_depth
        self.reg_read_hook = reg_read_hook
        self.mem_read_hook = mem_read_hook
        self.index_bound_hook = index_bound_hook


class ExprGen:
    """Generates masked Python expressions from LHDL expression trees."""

    def __init__(self, resolver: Resolver, emitter: FunctionEmitter,
                 mux_style: str = "branch"):
        """``mux_style`` selects how ternaries lower:

        * ``"branch"`` — LiveSim's style: conditional expressions that
          branch (paper §V-A: "groups muxes with the same condition
          into if-else blocks"; more branches, fewer data reads).
        * ``"select"`` — Verilator-like: evaluate both arms and select
          arithmetically (no branch, more evaluated ops).
        """
        self._resolver = resolver
        self._emitter = emitter
        if mux_style not in ("branch", "select"):
            raise ValueError(f"unknown mux_style {mux_style!r}")
        self._mux_style = mux_style

    # -- width inference ----------------------------------------------------

    def width_of(self, expr: ast.Expr) -> int:
        if isinstance(expr, ast.Num):
            if expr.width is not None:
                return expr.width
            return max(32, expr.value.bit_length())
        if isinstance(expr, ast.Id):
            width = self._resolver.signal_width(expr.name)
            if width is None:
                if self._maybe_memory_width(expr.name) is not None:
                    raise CodegenError(
                        f"memory {expr.name!r} used without an index",
                        expr.line,
                    )
                raise CodegenError(f"unknown signal {expr.name!r}", expr.line)
            return width
        if isinstance(expr, ast.Unary):
            if expr.op in ("!", "&", "|", "^"):
                return 1
            return self.width_of(expr.operand)
        if isinstance(expr, ast.Binary):
            op = expr.op
            if op in ("==", "!=", "===", "!==", "<", "<=", ">", ">=", "&&", "||"):
                return 1
            if op in ("<<", ">>", ">>>", "<<<"):
                return self.width_of(expr.left)
            return max(self.width_of(expr.left), self.width_of(expr.right))
        if isinstance(expr, ast.Ternary):
            return max(self.width_of(expr.if_true), self.width_of(expr.if_false))
        if isinstance(expr, ast.Concat):
            return sum(self.width_of(p) for p in expr.parts)
        if isinstance(expr, ast.Repl):
            count = self._const(expr.count, "replication count")
            if count < 1:
                raise WidthError(
                    f"replication count must be >= 1, got {count}", expr.line
                )
            return count * self.width_of(expr.value)
        if isinstance(expr, ast.Index):
            mem_width = self._maybe_memory_width(expr.base)
            return mem_width if mem_width is not None else 1
        if isinstance(expr, ast.Slice):
            msb = self._const(expr.msb, "slice msb")
            lsb = self._const(expr.lsb, "slice lsb")
            if msb < lsb:
                raise WidthError(f"slice [{msb}:{lsb}] is reversed", expr.line)
            return msb - lsb + 1
        if isinstance(expr, ast.IndexedPart):
            return self._const(expr.width, "indexed part width")
        if isinstance(expr, ast.SysCall):
            if expr.func in ("$signed", "$unsigned"):
                return self.width_of(expr.args[0])
            if expr.func == "$clog2":
                return 32
        raise CodegenError(f"cannot size {type(expr).__name__}",
                           getattr(expr, "line", 0))

    def _maybe_memory_width(self, name: str) -> Optional[int]:
        if self._resolver.memory_ref(name) is not None:
            return self._resolver.memory_width(name)
        return None

    def _const(self, expr: ast.Expr, what: str) -> int:
        if isinstance(expr, ast.Num):
            return expr.value
        raise CodegenError(f"{what} must be constant",
                           getattr(expr, "line", 0))

    @staticmethod
    def is_signed(expr: ast.Expr) -> bool:
        if isinstance(expr, ast.SysCall) and expr.func == "$signed":
            return True
        if isinstance(expr, ast.Ternary):
            return ExprGen.is_signed(expr.if_true) and ExprGen.is_signed(expr.if_false)
        return False

    # -- generation -----------------------------------------------------------

    def gen(self, expr: ast.Expr) -> str:
        """Return a Python expression string for ``expr`` (masked)."""
        if isinstance(expr, ast.Num):
            return str(expr.value & mask_of(self.width_of(expr)))
        if isinstance(expr, ast.Id):
            mem_ref = self._resolver.memory_ref(expr.name)
            if mem_ref is not None:
                raise CodegenError(
                    f"memory {expr.name!r} used without an index", expr.line
                )
            return self._signal_read(expr.name, expr.line)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Ternary):
            return self._gen_ternary(expr)
        if isinstance(expr, ast.Concat):
            return self._gen_concat(expr)
        if isinstance(expr, ast.Repl):
            return self._gen_repl(expr)
        if isinstance(expr, ast.Index):
            return self._gen_index(expr)
        if isinstance(expr, ast.Slice):
            return self._gen_slice(expr)
        if isinstance(expr, ast.IndexedPart):
            return self._gen_indexed_part(expr)
        if isinstance(expr, ast.SysCall):
            if expr.func in ("$signed", "$unsigned"):
                return self.gen(expr.args[0])
            raise CodegenError(f"non-constant {expr.func} call", expr.line)
        raise CodegenError(f"cannot generate {type(expr).__name__}",
                           getattr(expr, "line", 0))

    def _signal_read(self, name: str, line: int) -> str:
        """Resolve a signal read, routed through the sanitizer's
        register-read hook when one is installed."""
        ref = self._resolver.signal_ref(name)
        hook = self._resolver.reg_read_hook
        if hook is not None:
            wrapped = hook(name, ref, line)
            if wrapped is not None:
                return f"({wrapped})"
        return ref

    def sext(self, code: str, width: int) -> str:
        """Sign-extend a masked ``width``-bit value to a Python int."""
        if width <= 0:
            return code
        sign = 1 << (width - 1)
        return f"((({code}) ^ {sign}) - {sign})"

    def _gen_unary(self, expr: ast.Unary) -> str:
        operand = self.gen(expr.operand)
        op_width = self.width_of(expr.operand)
        if expr.op == "~":
            return f"((~({operand})) & {mask_of(op_width)})"
        if expr.op == "-":
            return f"((-({operand})) & {mask_of(op_width)})"
        if expr.op == "!":
            return f"(0 if ({operand}) else 1)"
        if expr.op == "&":
            return f"(1 if ({operand}) == {mask_of(op_width)} else 0)"
        if expr.op == "|":
            return f"(1 if ({operand}) else 0)"
        if expr.op == "^":
            return f"(bin({operand}).count('1') & 1)"
        raise CodegenError(f"unknown unary {expr.op!r}", expr.line)

    # Associative ops whose chains flatten into one expression.  This
    # matters beyond aesthetics: a 256-term reduction (e.g. the
    # all-halted AND of a 256-core mesh) would otherwise nest past
    # CPython's parenthesis limit.  Masking distributes over + and *
    # modulo 2**w only when every node in the chain has the same width
    # w, so those chains stop at any sub-node of a narrower width (its
    # mask drops carry bits the wider sum must not see, e.g. the inner
    # add of ``c + (a + a)`` with 8-bit ``a`` and 16-bit ``c``).
    # Bitwise chains can't carry past their operands' widths, so they
    # flatten unconditionally.
    _FLATTENABLE = frozenset({"+", "*", "&", "|", "^"})

    def _collect_chain(
        self,
        expr: ast.Expr,
        op: str,
        out: List[ast.Expr],
        width: Optional[int] = None,
    ) -> None:
        if (
            isinstance(expr, ast.Binary)
            and expr.op == op
            and (width is None or self.width_of(expr) == width)
        ):
            self._collect_chain(expr.left, op, out, width)
            self._collect_chain(expr.right, op, out, width)
        else:
            out.append(expr)

    def _gen_binary(self, expr: ast.Binary) -> str:
        op = expr.op
        if op in self._FLATTENABLE:
            operands: List[ast.Expr] = []
            chain_width = self.width_of(expr) if op in ("+", "*") else None
            self._collect_chain(expr, op, operands, chain_width)
            if len(operands) > 2:
                width = max(self.width_of(o) for o in operands)
                joined = f" {op} ".join(f"({self.gen(o)})" for o in operands)
                if op in ("+", "*"):
                    return f"(({joined}) & {mask_of(width)})"
                return f"({joined})"
        left = self.gen(expr.left)
        right = self.gen(expr.right)
        wl = self.width_of(expr.left)
        wr = self.width_of(expr.right)
        result_mask = mask_of(max(wl, wr))
        if op == "+":
            return f"((({left}) + ({right})) & {result_mask})"
        if op == "-":
            return f"((({left}) - ({right})) & {result_mask})"
        if op == "*":
            return f"((({left}) * ({right})) & {result_mask})"
        if op == "/":
            tmp = self._emitter.fresh("div")
            return f"((({left}) // {tmp}) if ({tmp} := ({right})) else {result_mask})"
        if op == "%":
            tmp = self._emitter.fresh("mod")
            return f"((({left}) % {tmp}) if ({tmp} := ({right})) else ({left}))"
        if op in ("<<", "<<<"):
            shift_cap = wl + 1
            tmp = self._emitter.fresh("sh")
            return (
                f"(((({left}) << {tmp}) & {mask_of(wl)})"
                f" if ({tmp} := ({right})) < {shift_cap} else 0)"
            )
        if op == ">>":
            return f"(({left}) >> ({right}))"
        if op == ">>>":
            if ExprGen.is_signed(expr.left):
                return f"(({self.sext(left, wl)} >> ({right})) & {mask_of(wl)})"
            return f"(({left}) >> ({right}))"
        if op in ("==", "==="):
            return f"(1 if ({left}) == ({right}) else 0)"
        if op in ("!=", "!=="):
            return f"(1 if ({left}) != ({right}) else 0)"
        if op in ("<", "<=", ">", ">="):
            signed = ExprGen.is_signed(expr.left) and ExprGen.is_signed(expr.right)
            if signed:
                left = self.sext(left, wl)
                right = self.sext(right, wr)
            return f"(1 if ({left}) {op} ({right}) else 0)"
        if op == "&&":
            return f"(1 if ({left}) and ({right}) else 0)"
        if op == "||":
            return f"(1 if ({left}) or ({right}) else 0)"
        if op == "&":
            return f"(({left}) & ({right}))"
        if op == "|":
            return f"(({left}) | ({right}))"
        if op == "^":
            return f"(({left}) ^ ({right}))"
        raise CodegenError(f"unknown binary {op!r}", expr.line)

    def _gen_ternary(self, expr: ast.Ternary) -> str:
        cond = self.gen(expr.cond)
        if_true = self.gen(expr.if_true)
        if_false = self.gen(expr.if_false)
        if self._mux_style == "branch":
            return f"(({if_true}) if ({cond}) else ({if_false}))"
        # Arithmetic select: evaluate both arms, pick by multiplication
        # (the Verilator-like no-branch lowering).
        width = max(self.width_of(expr.if_true), self.width_of(expr.if_false))
        sel = self._emitter.fresh("sel")
        return (
            f"(((({if_true}) * ({sel} := (1 if ({cond}) else 0)))"
            f" + (({if_false}) * (1 - {sel}))) & {mask_of(width)})"
        )

    def _gen_concat(self, expr: ast.Concat) -> str:
        parts: List[str] = []
        widths = [self.width_of(p) for p in expr.parts]
        total = sum(widths)
        offset = total
        for part, width in zip(expr.parts, widths):
            offset -= width
            code = self.gen(part)
            if offset:
                parts.append(f"(({code}) << {offset})")
            else:
                parts.append(f"({code})")
        return "(" + " | ".join(parts) + ")"

    def _gen_repl(self, expr: ast.Repl) -> str:
        count = self._const(expr.count, "replication count")
        value_width = self.width_of(expr.value)
        factor = sum(1 << (i * value_width) for i in range(count))
        return f"((({self.gen(expr.value)}) * {factor}))"

    def _mem_index_code(self, name: str, index_code: str, line: int) -> str:
        depth = self._resolver.memory_depth(name)
        if depth & (depth - 1) == 0:
            return f"(({index_code}) & {depth - 1})"
        return f"(({index_code}) % {depth})"

    def _bound_checked(self, name: str, index_code: str, bound: int,
                       index_expr: ast.Expr, line: int) -> str:
        """Wrap a dynamic select index with the oob hook (constant
        indices are the static analyzer's domain and stay clean)."""
        hook = self._resolver.index_bound_hook
        if hook is None or isinstance(index_expr, ast.Num) or bound < 1:
            return index_code
        return hook(name, index_code, bound, line)

    def _gen_index(self, expr: ast.Index) -> str:
        mem_ref = self._resolver.memory_ref(expr.base)
        index_code = self.gen(expr.index)
        if mem_ref is not None:
            hook = self._resolver.mem_read_hook
            if hook is not None:
                return hook(expr.base, index_code, expr.line)
            return f"{mem_ref}[{self._mem_index_code(expr.base, index_code, expr.line)}]"
        base = self._signal_read(expr.base, expr.line)
        width = self._resolver.signal_width(expr.base)
        if width is not None:
            index_code = self._bound_checked(
                expr.base, index_code, width, expr.index, expr.line
            )
        return f"((({base}) >> ({index_code})) & 1)"

    def _gen_slice(self, expr: ast.Slice) -> str:
        msb = self._const(expr.msb, "slice msb")
        lsb = self._const(expr.lsb, "slice lsb")
        if msb < lsb:
            raise WidthError(f"slice [{msb}:{lsb}] is reversed", expr.line)
        base = self._signal_read(expr.base, expr.line)
        width = msb - lsb + 1
        if lsb == 0:
            return f"(({base}) & {mask_of(width)})"
        return f"((({base}) >> {lsb}) & {mask_of(width)})"

    def _gen_indexed_part(self, expr: ast.IndexedPart) -> str:
        width = self._const(expr.width, "indexed part width")
        base = self._signal_read(expr.base, expr.line)
        start = self.gen(expr.start)
        base_width = self._resolver.signal_width(expr.base)
        if base_width is not None:
            # Ascending reads [start, start+width-1]; descending reads
            # [start-width+1, start] — either way the extreme touched
            # bit must stay below the declared width.
            bound = base_width - width + 1 if expr.ascending else base_width
            start = self._bound_checked(
                expr.base, start, bound, expr.start, expr.line
            )
        if expr.ascending:
            return f"((({base}) >> ({start})) & {mask_of(width)})"
        return f"((({base}) >> (({start}) - {width - 1})) & {mask_of(width)})"


class StmtGen:
    """Generates statement bodies (sequential and comb always blocks)."""

    def __init__(
        self,
        exprgen: ExprGen,
        emitter: FunctionEmitter,
        write_target: Callable[[ast.LValue, str], None],
        read_target_current: Callable[[str], str],
        mem_write: Callable[[str, str, str, int], None],
        is_memory: Callable[[str], bool],
        target_width: Callable[[str], int],
        trunc_hook: Optional[Callable[[str, int, int, str], str]] = None,
        write_note: Optional[Callable[[str, Optional[int], int], None]] = None,
    ):
        """Callbacks:

        * ``write_target(lvalue, value_code)`` — full or partial signal
          assignment.
        * ``read_target_current(name)`` — current value of a target
          (for read-modify-write partial updates).
        * ``mem_write(name, addr_code, value_code, line)`` — memory
          word write.
        * ``target_width(name)`` — declared width of a target signal.
        * ``trunc_hook(value_code, declared, line, name)`` — optional
          sanitizer replacement for the silent truncation mask; returns
          the complete (still masked) value expression.
        * ``write_note(name, mask_or_None, line)`` — optional sanitizer
          notification emitted before each register write (None mask
          means the full declared width).
        """
        self._exprgen = exprgen
        self._emitter = emitter
        self._write_target = write_target
        self._read_target_current = read_target_current
        self._mem_write = mem_write
        self._is_memory = is_memory
        self._target_width = target_width
        self._trunc_hook = trunc_hook
        self._write_note = write_note

    def gen_stmts(self, stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, (ast.NonBlocking, ast.Blocking)):
            self._gen_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.Case):
            self._gen_case(stmt)
        else:
            raise CodegenError(f"unknown statement {type(stmt).__name__}", stmt.line)

    def _gen_assign(self, stmt: "ast.NonBlocking | ast.Blocking") -> None:
        target = stmt.target
        value_code = self._exprgen.gen(stmt.value)
        value_width = self._exprgen.width_of(stmt.value)
        if self._is_memory(target.name):
            if target.index is None:
                raise CodegenError(
                    f"memory {target.name!r} assignment needs an address",
                    stmt.line,
                )
            addr_code = self._exprgen.gen(target.index)
            self._mem_write(target.name, addr_code, value_code, stmt.line)
            return
        declared = self._target_width(target.name)
        if target.index is not None:
            # Single-bit read-modify-write.  The final mask also drops
            # writes to out-of-range bit positions (Verilog: a select
            # past the declared width has no effect).
            idx = self._emitter.fresh("bi")
            val = self._emitter.fresh("bv")
            self._emitter.line(f"{idx} = {self._exprgen.gen(target.index)}")
            self._emitter.line(f"{val} = ({value_code}) & 1")
            current = self._read_target_current(target.name)
            merged = (
                f"((({current}) & ~(1 << {idx}))"
                f" | ({val} << {idx})) & {mask_of(declared)}"
            )
            if self._write_note is not None:
                note_mask = (
                    (1 << target.index.value) & mask_of(declared)
                    if isinstance(target.index, ast.Num)
                    else None  # dynamic bit: conservatively full width
                )
                self._write_note(target.name, note_mask, stmt.line)
            self._write_target(ast.LValue(name=target.name, line=target.line), merged)
            return
        if target.msb is not None:
            msb = _require_const(target.msb, stmt.line)
            lsb = _require_const(target.lsb, stmt.line) if target.lsb else 0
            width = msb - lsb + 1
            hole = ~(mask_of(width) << lsb) & mask_of(declared)
            current = self._read_target_current(target.name)
            merged = (
                f"(({current}) & {hole})"
                f" | ((({value_code}) & {mask_of(width)}) << {lsb})"
            )
            if self._write_note is not None:
                self._write_note(
                    target.name,
                    (mask_of(width) << lsb) & mask_of(declared),
                    stmt.line,
                )
            self._write_target(ast.LValue(name=target.name, line=target.line), merged)
            return
        if value_width > declared:
            if self._trunc_hook is not None:
                value_code = self._trunc_hook(
                    value_code, declared, stmt.line, target.name
                )
            else:
                value_code = f"(({value_code}) & {mask_of(declared)})"
        if self._write_note is not None:
            self._write_note(target.name, None, stmt.line)
        self._write_target(target, value_code)

    def _gen_if(self, stmt: ast.If) -> None:
        # Flattened anonymous blocks come through as If(cond=Num(1)).
        if isinstance(stmt.cond, ast.Num) and stmt.cond.value == 1 and not stmt.else_body:
            self.gen_stmts(stmt.then_body)
            return
        cond = self._exprgen.gen(stmt.cond)
        with block(self._emitter, f"if {cond}:"):
            if stmt.then_body:
                self.gen_stmts(stmt.then_body)
            else:
                self._emitter.line("pass")
        if stmt.else_body:
            with block(self._emitter, "else:"):
                self.gen_stmts(stmt.else_body)

    def _gen_case(self, stmt: ast.Case) -> None:
        subject = self._emitter.fresh("case")
        self._emitter.line(f"{subject} = {self._exprgen.gen(stmt.subject)}")
        first = True
        default_body: Optional[List[ast.Stmt]] = None
        emitted_any = False
        for labels, body in stmt.arms:
            if not labels:
                default_body = body
                continue
            label_codes = [self._exprgen.gen(lbl) for lbl in labels]
            condition = " or ".join(f"{subject} == ({c})" for c in label_codes)
            keyword = "if" if first else "elif"
            with block(self._emitter, f"{keyword} {condition}:"):
                if body:
                    self.gen_stmts(body)
                else:
                    self._emitter.line("pass")
            first = False
            emitted_any = True
        if default_body is not None:
            if emitted_any:
                with block(self._emitter, "else:"):
                    if default_body:
                        self.gen_stmts(default_body)
                    else:
                        self._emitter.line("pass")
            else:
                self.gen_stmts(default_body)


def _require_const(expr: Optional[ast.Expr], line: int) -> int:
    if isinstance(expr, ast.Num):
        return expr.value
    raise CodegenError("part-select bounds must be constant", line)
